"""Crash containment: reclaim what a dead LWP's threads held.

The paper lets an LWP disappear mid-critical-section (a fatal signal, a
fault-injected crash, a watchdog kill).  A real SunOS kernel must then
repair what the dead context can no longer release; in this reproduction
the repair is a cooperation between the kernel and the user-level threads
library, on the same precedent as the debugger/waitgraph cooperation: the
kernel never *schedules* user threads, but it may read and fix the
library's bookkeeping on behalf of a thread that will never run again.

The walk, per victim thread (the thread riding the dead LWP, plus its
bound thread if any — sleeping *unbound* threads are off-LWP and
survive):

1. mark the thread dead (``crashed``/``exited``/ZOMBIE, crash status);
2. pull it off whatever wait queue or run queue it occupies, so condvar,
   semaphore, and mutex sleep queues never hold a corpse;
3. walk the live synchronization variables in creation order
   (deterministic across replays): held mutexes and written rwlocks
   transition to *owner-dead* — the next acquirer gets ``EOWNERDEAD``
   and must call ``consistent()`` or the lock becomes unrecoverable —
   and waiters are handed the lock directly; dead readers and semaphore
   holder annotations are dropped silently;
4. wake its joiners (``thread_wait``), exactly as a normal exit would;
5. release its stack, retire its ID when unwaitable, and notify the
   owning :class:`~repro.threads.supervisor.Supervisor`, if any.

Every transition is announced to the dynamic detectors via
``sync_notify`` (``owner-dead`` per lock, then one ``thread-crash``), so
:class:`~repro.explore.detectors.OrphanedResourceDetector` can prove no
lock was left behind.
"""

from __future__ import annotations

from repro.sync.events import sync_notify
from repro.sync.variants import sync_variables_in_creation_order
from repro.threads.thread import Thread, ThreadState

#: waitpid-visible status of a process whose last LWP/thread crashed
#: (as if killed by SIGABRT: 128 + 6).
CRASHED_STATUS = 134


def reclaim_dead_lwp(kernel, lwp) -> list:
    """Reclaim everything held by the threads that died with ``lwp``.

    Kernel-context plain call (no yields); returns the victim threads.
    """
    proc = lwp.process
    lib = proc.threadlib
    if lib is None:
        return []
    victims = []
    for t in (lwp.current_thread, lwp.bound_thread):
        if isinstance(t, Thread) and not t.exited and t not in victims:
            victims.append(t)
    for t in victims:
        reclaim_crashed_thread(kernel, lib, t, lwp=lwp)
    lib.unregister_pool_lwp(lwp)
    return victims


def reclaim_crashed_thread(kernel, lib, thread, lwp=None) -> dict:
    """The per-thread reclaim walk.  Returns a summary (diagnostics)."""
    engine = kernel.engine
    proc = lib.process
    m = engine.metrics

    thread.crashed = True
    thread.exited = True
    thread.exit_status = CRASHED_STATUS
    thread.state = ThreadState.ZOMBIE

    # (2) Off every queue: a corpse on a sleep queue would be handed a
    # lock or a wakeup that evaporates (the lost-wakeup bug class), and
    # one on the run queue would be dispatched into a dead generator.
    wq = thread.wait_queue
    if wq is not None:
        try:
            wq.remove(thread)
        except ValueError:
            pass
        thread.wait_queue = None
    lib.runq.remove(thread)
    ride = lwp if lwp is not None else thread.lwp
    if ride is not None:
        lib.detach(ride, thread)

    # (3) Held-resource walk, creation order for replay determinism.
    owner_dead = 0
    handoffs = 0
    for sv in sync_variables_in_creation_order():
        kind = getattr(sv, "KIND", None)
        if kind == "mutex" and not sv.is_shared and sv.owner is thread:
            nxt = sv.reclaim_dead_owner(lib, kernel)
            owner_dead += 1
            if nxt is not None:
                handoffs += 1
            sync_notify(engine, "owner-dead", sv, thread=thread, lwp=ride,
                        process=proc, mode="mutex",
                        handoff=getattr(nxt, "name", None))
        elif kind == "rwlock" and not sv.is_shared:
            if sv.writer is thread or thread in sv.reader_holders:
                was_writer = sv.writer is thread
                if sv.reclaim_dead_owner(lib, kernel, thread):
                    owner_dead += 1
                # Announced for readers too: the detectors' held-locks
                # tracker must see the dead holder's entry released even
                # when the lock itself never marks owner-dead.
                sync_notify(engine, "owner-dead", sv, thread=thread,
                            lwp=ride, process=proc,
                            mode="writer" if was_writer else "reader",
                            handoff=None)
        elif kind == "sema":
            while thread in sv.holders:
                sv.holders.remove(thread)

    # (4) Joiners, mirroring _exit_impl's handoff rules.
    unparks: list[int] = []
    joiners = 0
    while thread.waiters:
        w = thread.waiters.pop(0)
        w.wait_queue = None
        unparks.extend(lib.make_runnable(w, value=thread))
        joiners += 1
    if joiners == 0:
        if thread.waitable and lib.any_waiters:
            w = lib.any_waiters.pop(0)
            w.wait_queue = None
            unparks.extend(lib.make_runnable(w, value=thread))
            thread.wait_claimed = True
        elif not thread.waitable:
            lib.retire_id(thread)
    for lwp_id in unparks:
        target = proc.lwps.get(lwp_id)
        if target is not None:
            kernel.unpark_lwp(target)

    # (5) Stack back to the cache; tell the detectors and the supervisor.
    # TSD destructors are guest code and cannot run here — a documented
    # difference from a clean thread_exit.
    lib.stack_alloc.release(thread.stack)
    sync_notify(engine, "thread-crash", None, thread=thread, lwp=ride,
                process=proc, locks=owner_dead)
    if m is not None:
        m.count("crash.threads_reclaimed")
        if owner_dead:
            m.count("crash.locks_owner_dead", owner_dead)
        if handoffs:
            m.count("crash.lock_handoffs", handoffs)
        if joiners:
            m.count("crash.joiners_woken", joiners)
    sup = thread.supervisor
    if sup is not None:
        sup.on_child_crashed(thread, kernel)
    return {"thread": thread.name, "locks_owner_dead": owner_dead,
            "handoffs": handoffs, "joiners_woken": joiners}
