"""Thread-local storage (the ``#pragma unshared`` mechanism).

The paper's model:

* Thread-local variables are declared to the compiler/linker
  (``#pragma unshared errno``); we model the declaration step with
  :meth:`TlsLayout.declare`.
* "The size of thread-local storage is computed by the run-time linker at
  program start time by summing the thread-local storage requirements of
  the linked libraries. ... Once the size is computed it is not changed."
  :meth:`TlsLayout.freeze` is that start-time computation; declaring after
  the freeze raises, exactly like dynamic linking cannot grow TLS.
* "The contents of thread-local storage are zeroed, initially; static
  initialization is not allowed."
* errno is the canonical occupant; the runtime declares it.

"More dynamic mechanisms (such as POSIX thread-specific data) can be
built using thread-local storage" — :class:`TsdKeys` demonstrates exactly
that, built purely on one TLS slot.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ThreadError

#: Modeled per-slot size, only used for footprint accounting.
SLOT_BYTES = 8


class TlsLayout:
    """Per-process registry of thread-local variables (link-time view)."""

    def __init__(self):
        self._slots: dict[str, int] = {}
        self.frozen = False

    def declare(self, name: str) -> int:
        """Register a thread-local variable; returns its slot index."""
        if self.frozen:
            raise ThreadError(
                f"TLS size is fixed at program start; cannot add {name!r} "
                "(the paper forbids growing TLS by dynamic linking)")
        if name in self._slots:
            return self._slots[name]
        index = len(self._slots)
        self._slots[name] = index
        return index

    def freeze(self) -> int:
        """Start-time size computation; returns the size in bytes."""
        self.frozen = True
        return self.size_bytes

    @property
    def size_bytes(self) -> int:
        return len(self._slots) * SLOT_BYTES

    def index_of(self, name: str) -> int:
        if name not in self._slots:
            raise ThreadError(f"no thread-local variable {name!r}")
        return self._slots[name]

    def names(self) -> list[str]:
        return sorted(self._slots, key=self._slots.get)


class TlsBlock:
    """One thread's copy of the thread-local variables (zero-initialized).

    Allocated at thread startup ("thread-local storage requirements are
    known at thread startup time and can be allocated as part of stack
    storage").
    """

    __slots__ = ("_layout", "_values")

    def __init__(self, layout: TlsLayout):
        self._layout = layout
        self._values: list[Any] = [0] * len(layout._slots)

    def get(self, name: str) -> Any:
        return self._values[self._layout.index_of(name)]

    def set(self, name: str, value: Any) -> None:
        self._values[self._layout.index_of(name)] = value

    @property
    def errno(self) -> int:
        """The C library's canonical thread-local variable."""
        return self.get("errno")

    @errno.setter
    def errno(self, value: int) -> None:
        self.set("errno", value)


class TsdKeys:
    """POSIX-style thread-specific data built on a single TLS slot.

    Demonstrates the paper's claim that dynamic mechanisms layer on top of
    static TLS: the slot holds a per-thread dict, keys are created at any
    time, and destructors run at thread exit.
    """

    SLOT = "__tsd__"

    def __init__(self, layout: TlsLayout):
        layout.declare(self.SLOT)
        self._next_key = 1
        self._destructors: dict[int, Optional[Any]] = {}

    def key_create(self, destructor=None) -> int:
        key = self._next_key
        self._next_key += 1
        self._destructors[key] = destructor
        return key

    def key_delete(self, key: int) -> None:
        self._destructors.pop(key, None)

    def _dict_of(self, tls: TlsBlock) -> dict:
        d = tls.get(self.SLOT)
        if d == 0:
            d = {}
            tls.set(self.SLOT, d)
        return d

    def set_specific(self, tls: TlsBlock, key: int, value: Any) -> None:
        if key not in self._destructors:
            raise ThreadError(f"no such TSD key {key}")
        self._dict_of(tls)[key] = value

    def get_specific(self, tls: TlsBlock, key: int) -> Any:
        return self._dict_of(tls).get(key)

    def run_destructors(self, tls: TlsBlock) -> list:
        """Called by thread_exit; returns the (key, value) pairs handled."""
        d = tls.get(self.SLOT)
        if d == 0:
            return []
        handled = []
        for key, value in sorted(d.items()):
            dtor = self._destructors.get(key)
            if dtor is not None and value is not None:
                dtor(value)
                handled.append((key, value))
        d.clear()
        return handled
