"""Command-line entry point: reproduce the paper's evaluation.

Usage::

    python -m repro              # Figures 5 and 6 (the paper's tables)
    python -m repro --all        # + every ablation experiment
    python -m repro --list       # what is available
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments as ex

EXPERIMENTS = {
    "fig5": ("Figure 5: thread creation time",
             lambda: ex.fig5_table(ex.run_fig5(n=50))),
    "fig6": ("Figure 6: thread synchronization time",
             lambda: ex.fig6_table(ex.run_fig6(n=100))),
    "abl1": ("ABL1: window system, M:N vs 1:1",
             lambda: ex.abl1_table(ex.run_abl1(n_widgets=200,
                                               n_events=300))),
    "abl2": ("ABL2: array computation threads-per-LWP sweep",
             lambda: ex.abl2_table(ex.run_abl2())),
    "abl3": ("ABL3: SIGWAITING deadlock avoidance vs liblwp",
             lambda: ex.abl3_table(ex.run_abl3())),
    "abl4": ("ABL4: fork() vs fork1()",
             lambda: ex.abl4_table(ex.run_abl4())),
    "abl5": ("ABL5: mutex variants under contention",
             lambda: ex.abl5_table(ex.run_abl5())),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the evaluation of 'SunOS Multi-thread "
                    "Architecture' (USENIX Winter 1991).")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment (figures + ablations)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("experiments", nargs="*",
                        choices=[[]] + list(EXPERIMENTS),
                        help="specific experiments to run")
    args = parser.parse_args(argv)

    if args.list:
        for key, (title, _) in EXPERIMENTS.items():
            print(f"{key:6s} {title}")
        return 0

    if args.all:
        selected = list(EXPERIMENTS)
    elif args.experiments:
        selected = args.experiments
    else:
        selected = ["fig5", "fig6"]

    failures = 0
    for key in selected:
        title, runner = EXPERIMENTS[key]
        print(f"running {key}: {title} ...")
        table = runner()
        print()
        print(table.render())
        if key in ("fig5", "fig6"):
            ok = table.shape_holds(tolerance=0.10)
            print(f"shape criterion (10% + ordering): "
                  f"{'PASS' if ok else 'FAIL'}")
            if not ok:
                failures += 1
        print()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
