"""The window-system workload.

The paper's recurring motivation: "a window system can treat each widget
as a separate entity ... a window system programmer must know that
extremely lightweight threads are available, since a window system may
use thousands".  Each widget gets an input-handler thread; nearly all of
them are idle at any instant, so under M:N only a handful of LWPs are
needed, while under 1:1 every widget costs kernel memory and kernel-weight
synchronization.

``build()`` returns ``(main, results)``: run ``main`` in a Simulator and
read ``results`` afterwards.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.hw.isa import GetContext
from repro.models import kernel_only
from repro.runtime import libc, unistd
from repro.sync import CondVar, Mutex
from repro.threads import api as threads


class Widget:
    """One widget: an event queue protected by a mutex + condvar."""

    def __init__(self, index: int):
        self.index = index
        self.mutex = Mutex(name=f"w{index}.m")
        self.cv = CondVar(name=f"w{index}.cv")
        self.events: deque = deque()
        self.processed = 0


def build(n_widgets: int = 100, n_events: int = 500,
          event_cost_usec: float = 50.0,
          bound_threads: bool = False,
          event_spacing_usec: float = 100.0,
          seed: int = 0) -> tuple[Callable, dict]:
    """Build the window-system program.

    Args:
        n_widgets: number of widgets (one input-handler thread each).
        n_events: total events delivered, round-robin with a seeded
            shuffle so every widget sees some traffic.
        event_cost_usec: compute per event.
        bound_threads: True runs the 1:1 model (every handler bound to
            its own LWP); False the M:N default.
        event_spacing_usec: virtual time between event arrivals.

    Returns:
        (main, results): results gains ``elapsed_usec``, ``processed``,
        ``footprint``, ``latency_avg_usec`` after the run.
    """
    results: dict = {}

    def main():
        import random
        rng = random.Random(seed)
        widgets = [Widget(i) for i in range(n_widgets)]
        latencies: list[float] = []

        def handler(widget: Widget):
            while True:
                yield from widget.mutex.enter()
                while not widget.events:
                    yield from widget.cv.wait(widget.mutex)
                stamp = widget.events.popleft()
                yield from widget.mutex.exit()
                if stamp is None:  # shutdown
                    return
                yield from libc.compute(event_cost_usec)
                widget.processed += 1
                now = yield from unistd.gettimeofday()
                latencies.append((now - stamp) / 1000.0)

        create = (kernel_only.thread_create if bound_threads
                  else threads.thread_create)
        tids = []
        for w in widgets:
            tid = yield from create(handler, w, flags=threads.THREAD_WAIT)
            tids.append(tid)

        ctx = yield GetContext()
        start = yield from unistd.gettimeofday()

        # Drive the events.
        order = [i % n_widgets for i in range(n_events)]
        rng.shuffle(order)
        for target in order:
            if event_spacing_usec:
                yield from unistd.sleep_usec(event_spacing_usec)
            w = widgets[target]
            now = yield from unistd.gettimeofday()
            yield from w.mutex.enter()
            w.events.append(now)
            yield from w.cv.signal()
            yield from w.mutex.exit()

        # Steady-state footprint: every widget thread still alive.
        results["footprint"] = kernel_only.footprint(ctx.process)
        results["lib"] = ctx.process.threadlib.snapshot()

        # Shut every widget down and join.
        for w in widgets:
            yield from w.mutex.enter()
            w.events.append(None)
            yield from w.cv.signal()
            yield from w.mutex.exit()
        for tid in tids:
            yield from threads.thread_wait(tid)

        end = yield from unistd.gettimeofday()
        results["elapsed_usec"] = (end - start) / 1000.0
        results["processed"] = sum(w.processed for w in widgets)
        results["latency_avg_usec"] = (sum(latencies) / len(latencies)
                                       if latencies else 0.0)

    return main, results
