"""The network-server workload.

"A network server may indirectly need its own service (and therefore
another thread of control) to handle requests."  Clients in separate
processes write requests into a FIFO; the server's acceptor thread reads
them and hands each to a worker thread, which performs file I/O plus
computation and appends a response to a results file.  Because workers
block in the kernel (file reads), the LWP pool must grow via SIGWAITING
for the server to stay responsive — the deadlock-avoidance machinery
exercised end to end.
"""

from __future__ import annotations

from typing import Callable

from repro.kernel.fs.file import O_CREAT, O_RDONLY, O_RDWR, O_WRONLY
from repro.runtime import libc, unistd
from repro.sync import CondVar, Mutex
from repro.threads import api as threads

REQUEST_SIZE = 16


def build(n_clients: int = 3, requests_per_client: int = 10,
          n_workers: int = 4,
          service_compute_usec: float = 300.0,
          client_think_usec: float = 1_000.0) -> tuple[Callable, dict]:
    """Build the server program (it forks its own client processes)."""
    results: dict = {}
    total_requests = n_clients * requests_per_client

    def client(client_id: int):
        fd = yield from unistd.open("/tmp/server.fifo", O_WRONLY)
        for i in range(requests_per_client):
            yield from unistd.sleep_usec(client_think_usec)
            payload = f"c{client_id:03d}r{i:06d}".encode().ljust(
                REQUEST_SIZE, b".")
            yield from unistd.write(fd, payload)
        yield from unistd.close(fd)

    def main():
        yield from unistd.mkfifo("/tmp/server.fifo")
        datafd = yield from unistd.open("/tmp/server.data",
                                        O_CREAT | O_RDWR)
        yield from unistd.write(datafd, b"x" * 4096)

        # Work queue feeding the worker pool.
        queue: list = []
        qmutex = Mutex(name="srv.qm")
        qcv = CondVar(name="srv.qcv")
        stats = {"served": 0, "latency_ns": 0}

        def worker(_):
            while True:
                yield from qmutex.enter()
                while not queue:
                    yield from qcv.wait(qmutex)
                item = queue.pop(0)
                yield from qmutex.exit()
                if item is None:
                    return
                request, enq_ns = item
                # Service: read the "database", compute, log the result.
                yield from unistd.lseek(datafd, 0)
                yield from unistd.read(datafd, 512)
                yield from libc.compute(service_compute_usec)
                now = yield from unistd.gettimeofday()
                stats["served"] += 1
                stats["latency_ns"] += now - enq_ns

        worker_tids = []
        for _ in range(n_workers):
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            worker_tids.append(tid)

        # Fork the clients.
        pids = []
        for c in range(n_clients):
            pid = yield from unistd.fork1(client, c)
            pids.append(pid)

        # Acceptor loop (this thread): read fixed-size requests.
        fiford = yield from unistd.open("/tmp/server.fifo", O_RDONLY)
        start = yield from unistd.gettimeofday()
        received = 0
        buffered = b""
        while received < total_requests:
            data = yield from unistd.read(fiford, REQUEST_SIZE)
            if not data:
                break
            buffered += data
            while len(buffered) >= REQUEST_SIZE:
                request, buffered = (buffered[:REQUEST_SIZE],
                                     buffered[REQUEST_SIZE:])
                received += 1
                now = yield from unistd.gettimeofday()
                yield from qmutex.enter()
                queue.append((request, now))
                yield from qcv.signal()
                yield from qmutex.exit()

        # Drain and stop the pool.
        yield from qmutex.enter()
        for _ in range(n_workers):
            queue.append(None)
        yield from qcv.broadcast()
        yield from qmutex.exit()
        for tid in worker_tids:
            yield from threads.thread_wait(tid)
        end = yield from unistd.gettimeofday()

        for pid in pids:
            yield from unistd.waitpid(pid)

        from repro.hw.isa import GetContext
        ctx = yield GetContext()
        results["received"] = received
        results["served"] = stats["served"]
        results["elapsed_usec"] = (end - start) / 1000.0
        results["avg_latency_usec"] = (
            stats["latency_ns"] / stats["served"] / 1000.0
            if stats["served"] else 0.0)
        results["throughput_per_sec"] = (
            stats["served"] / (results["elapsed_usec"] / 1e6)
            if results["elapsed_usec"] else 0.0)
        results["pool_lwps"] = len(ctx.process.threadlib.pool_lwps)
        results["lwps_grown"] = (
            ctx.process.threadlib.lwps_grown_by_sigwaiting)

    return main, results
