"""The network-server workload, on real (simulated) sockets.

"A network server may indirectly need its own service (and therefore
another thread of control) to handle requests."  Clients in separate
processes connect to the server's listening socket (one connection per
request attempt), send a fixed-size request, and wait — with deadlines
and seeded-jitter backoff from :mod:`repro.threads.retry` — for the
response.  The server offers two architectures:

* ``mode="pool"`` (default): a bound-LWP worker pool behind a bounded
  admission queue.  The acceptor reads each request and either admits
  it, sheds the *oldest* queued request to make room (``shed="oldest"``)
  or refuses the newcomer with a ``BUSY`` response
  (``shed="reject-newest"``) — the degradation ladder's last rung, and
  always an *explicit* rejection the client can act on.
* ``mode="thread-per-conn"``: the paper's flagship — an unbound thread
  per connection, LWP pool growing via SIGWAITING as handlers block in
  the kernel, with admission as a cap on concurrent handlers.

Every admitted request is accounted for on a ledger
(:func:`repro.sync.events.sync_event` ops ``net-admit`` /
``net-serve`` / ``net-shed``), which the explorer's lost-request
detector audits: admitted exactly once implies served exactly once or
explicitly shed — under overload, faults, and adversarial schedules.

``supervise=True`` puts the pool workers under a
:class:`~repro.threads.supervisor.Supervisor`: a worker that dies with
its LWP (a ``CrashStorm``, a watchdog kill) is respawned on backoff,
and its in-flight request — tracked in a plain dict the crash-reclaim
walk can read — is handed to the replacement as its first work item, so
the ledger stays exactly-once through crash storms.  The admission
mutex is treated as robust everywhere: any acquire that returns
``EOWNERDEAD`` repairs with ``consistent()`` (the queue deque is only
mutated between yields, so it is always structurally sound).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import Errno, SyscallError
from repro.hw.isa import GetContext
from repro.kernel.fs.file import O_CREAT, O_RDWR
from repro.runtime import libc, unistd
from repro.sync import CondVar, Mutex
from repro.sync.events import sync_event
from repro.threads import api as threads
from repro.threads import retry

REQUEST_SIZE = 16
PORT = 7000
BUSY = b"BUSY"


def _payload(cid: int, req: int, attempt: int) -> bytes:
    """One request id: unique per (client, request, attempt) so the
    ledger can hold every attempt to exactly-once accounting."""
    return f"c{cid:02d}r{req:04d}a{attempt:02d}".encode().ljust(
        REQUEST_SIZE, b".")


def _note(op: str, rid: str, **detail):
    """Generator: emit one ledger event (free when nobody listens)."""
    ctx = yield GetContext()
    sync_event(ctx, op, None, id=rid, **detail)


def build(n_clients: int = 3, requests_per_client: int = 10,
          n_workers: int = 4,
          service_compute_usec: float = 300.0,
          client_think_usec: float = 1_000.0,
          mode: str = "pool",
          backlog: int = 8,
          admission_limit: int = 32,
          shed: str = "reject-newest",
          client_attempts: int = 8,
          reply_deadline_usec: float = 200_000.0,
          port: int = PORT,
          supervise: bool = False,
          max_restarts: int = 6,
          heartbeat_timeout_usec=None,
          crash_storm=None) -> tuple[Callable, dict]:
    """Build the server program (it forks its own client processes).

    ``supervise`` runs pool workers under a Supervisor (see module
    docstring).  ``crash_storm``, when given, is a dict of
    :class:`~repro.sim.faults.CrashStorm` kwargs the program attaches to
    its own kernel at startup (unless a fault plan is already attached)
    — the self-contained form the regression corpus uses.
    """
    if mode not in ("pool", "thread-per-conn"):
        raise ValueError(f"unknown mode {mode!r}")
    if shed not in ("reject-newest", "oldest"):
        raise ValueError(f"unknown shed policy {shed!r}")
    if supervise and mode != "pool":
        raise ValueError("supervise=True requires mode='pool'")
    results: dict = {}
    stats = {"admitted": 0, "served": 0, "shed": 0, "latency_ns": 0,
             "client_ok": 0, "client_giveups": 0, "client_retries": 0}

    # ------------------------------------------------------------ client

    def client(client_id: int):
        policy = retry.RetryPolicy(
            attempts=client_attempts, base_usec=300.0, factor=2.0,
            max_delay_usec=10_000.0,
            retry_on={Errno.ECONNREFUSED, Errno.ETIMEDOUT,
                      Errno.ECONNRESET, Errno.EAGAIN, Errno.EINTR})
        from repro.kernel.signals import SIG_IGN, Sig
        yield from unistd.sigaction(int(Sig.SIGPIPE), SIG_IGN)
        ctx = yield GetContext()
        rng = ctx.engine.rng.stream(f"netclient/{client_id}")
        for req in range(requests_per_client):
            yield from unistd.sleep_usec(client_think_usec)
            for attempt in range(client_attempts):
                if attempt:
                    stats["client_retries"] += 1
                    yield from unistd.sleep_usec(
                        policy.delay_usec(attempt, rng))
                fd = yield from unistd.socket()
                resp = None
                try:
                    yield from unistd.connect(fd, port)
                    yield from unistd.send(
                        fd, _payload(client_id, req, attempt))
                    resp = yield from retry.recv_with_deadline(
                        fd, 64, reply_deadline_usec)
                except SyscallError as err:
                    if err.errno not in policy.retry_on and \
                            err.errno != Errno.EPIPE:
                        raise
                finally:
                    yield from unistd.close(fd)
                # Strict match on the echoed request id: a reply for a
                # *different* request (conceivable only when a crashed
                # worker's replacement re-serves onto a reused fd) must
                # not count as this request's success.
                if resp == b"OK:" + _payload(client_id, req, attempt):
                    stats["client_ok"] += 1
                    break
                # BUSY, EOF, reset, refused, or timed out: try again.
            else:
                stats["client_giveups"] += 1

    # ------------------------------------------------- server: the pool

    def enter_robust(m):
        """Generator: ``m.enter()`` that absorbs owner death.  The data
        the admission mutex protects (a deque and counters) is only ever
        mutated between yields, so a lock inherited from a crashed
        holder is always structurally consistent — repair and go."""
        if (yield from m.enter()):
            m.consistent()

    def close_quiet(fd: int):
        """Generator: close that tolerates an already-dead fd (a crashed
        worker's replacement may re-close what the victim closed)."""
        try:
            yield from unistd.close(fd)
        except SyscallError:
            pass

    def reject(conn: int, rid: str, reason: str):
        """Explicitly shed one request: tell the client, close, ledger."""
        stats["shed"] += 1
        try:
            yield from unistd.send(conn, BUSY)
        except SyscallError:
            pass  # client already gone; the shed is still explicit
        yield from close_quiet(conn)
        yield from _note("net-shed", rid, reason=reason)
        ctx = yield GetContext()
        m = ctx.engine.metrics
        if m is not None:
            m.count("server.shed")

    def read_request(conn: int):
        """Read one fixed-size request; None on EOF/reset/timeout."""
        data = b""
        while len(data) < REQUEST_SIZE:
            try:
                chunk = yield from retry.recv_with_deadline(
                    conn, REQUEST_SIZE - len(data), 50_000.0)
            except SyscallError:
                return None
            if not chunk:
                return None
            data += chunk
        return data

    def serve(conn: int, rid: str, enq_ns: int, datafd: int):
        """The service: read the "database", compute, respond."""
        yield from unistd.lseek(datafd, 0)
        yield from unistd.read(datafd, 512)
        yield from libc.compute(service_compute_usec)
        ok = True
        try:
            yield from unistd.send(conn, b"OK:" + rid.encode())
        except SyscallError:
            ok = False  # client gave up first; served all the same
        yield from close_quiet(conn)
        now = yield from unistd.gettimeofday()
        stats["served"] += 1
        stats["latency_ns"] += now - enq_ns
        yield from _note("net-serve", rid, ok=ok)
        ctx = yield GetContext()
        m = ctx.engine.metrics
        if m is not None:
            m.count("server.served")
            m.sample("server.latency_usec", (now - enq_ns) // 1000)

    def main():
        # A server that writes to clients that may hang up must not die
        # on the first disappointment.
        from repro.kernel.signals import SIG_IGN, Sig
        yield from unistd.sigaction(int(Sig.SIGPIPE), SIG_IGN)
        if crash_storm is not None:
            # Self-contained chaos: the program carries its own storm
            # (the regression-corpus form).  An externally attached plan
            # wins — explore passes faults through the run config.
            ctx = yield GetContext()
            if ctx.kernel.faults is None:
                from repro.sim.faults import CrashStorm, FaultPlan
                FaultPlan([CrashStorm(**crash_storm)]).attach(ctx.kernel)
        datafd = yield from unistd.open("/tmp/server.data",
                                        O_CREAT | O_RDWR)
        yield from unistd.write(datafd, b"x" * 4096)

        lfd = yield from unistd.socket()
        yield from unistd.bind(lfd, port)
        yield from unistd.listen(lfd, backlog)

        # Admission queue feeding the worker pool (pool mode).
        queue: deque = deque()
        qmutex = Mutex(name="srv.qm")
        qcv = CondVar(name="srv.qcv")
        # Concurrent-handler cap (thread-per-conn mode).
        active = {"handlers": 0}
        # Crash containment (supervised mode): worker-name → in-flight
        # item.  Written in the same atomic block as the queue pop, so
        # from admission to disposal every request is reachable either
        # from the queue or from this dict — that invariant is what the
        # crash-recovery handover and the end-of-run sweep rely on.
        sup = None
        wspecs: dict = {}
        inflight: dict = {}

        def worker(_):
            while True:
                yield from enter_robust(qmutex)
                while not queue:
                    if (yield from qcv.wait(qmutex)):
                        qmutex.consistent()
                item = queue.popleft()
                yield from qmutex.exit()
                if item is None:
                    return
                conn, rid, enq_ns = item
                yield from serve(conn, rid, enq_ns, datafd)

        def sworker(handover):
            """Supervised worker: first serve the crashed predecessor's
            in-flight item (``handover``), then pull from the queue."""
            ctx = yield GetContext()
            me = ctx.thread
            item = handover
            while True:
                if item is None:
                    yield from enter_robust(qmutex)
                    while not queue:
                        if (yield from qcv.wait(qmutex)):
                            qmutex.consistent()
                    item = queue.popleft()
                    if item is not None:
                        inflight[me.name] = item
                    yield from qmutex.exit()
                    if item is None:
                        return  # poison: graceful drain
                else:
                    inflight[me.name] = item
                if sup is not None:
                    sup.heartbeat(wspecs[me.name])
                conn, rid, enq_ns = item
                yield from serve(conn, rid, enq_ns, datafd)
                inflight.pop(me.name, None)
                item = None

        def handler(conn):
            rid_raw = yield from read_request(conn)
            if rid_raw is None:
                yield from unistd.close(conn)
                return
            rid = rid_raw.decode()
            yield from enter_robust(qmutex)
            over = active["handlers"] >= admission_limit
            if not over:
                active["handlers"] += 1
            yield from qmutex.exit()
            if over:
                yield from reject(conn, rid, "handler-cap")
                return
            now = yield from unistd.gettimeofday()
            stats["admitted"] += 1
            yield from _note("net-admit", rid, mode=mode)
            yield from serve(conn, rid, now, datafd)
            yield from enter_robust(qmutex)
            active["handlers"] -= 1
            yield from qmutex.exit()

        def acceptor(_):
            handler_tids = []
            while True:
                try:
                    conn = yield from unistd.accept(lfd)
                except SyscallError as err:
                    if err.errno == Errno.EINTR:
                        continue  # a sibling LWP forked a client
                    if err.errno in (Errno.ECONNABORTED, Errno.EBADF):
                        break  # main closed the listener: shift over
                    raise
                m = (yield GetContext()).engine.metrics
                if m is not None:
                    m.count("server.accepts")
                if mode == "thread-per-conn":
                    tid = yield from threads.thread_create(
                        handler, conn, flags=threads.THREAD_WAIT)
                    handler_tids.append(tid)
                    continue
                rid_raw = yield from read_request(conn)
                if rid_raw is None:
                    yield from unistd.close(conn)
                    continue
                rid = rid_raw.decode()
                now = yield from unistd.gettimeofday()
                # The admit ledger event goes out *before* the request
                # becomes visible to workers (still under the queue
                # mutex), so no schedule can serve an unadmitted id.
                yield from enter_robust(qmutex)
                if len(queue) >= admission_limit:
                    if shed == "oldest":
                        old = queue.popleft()
                        stats["admitted"] += 1
                        yield from _note("net-admit", rid, mode=mode)
                        queue.append((conn, rid, now))
                        yield from qcv.signal()
                        yield from qmutex.exit()
                        yield from reject(old[0], old[1], "shed-oldest")
                    else:
                        yield from qmutex.exit()
                        yield from reject(conn, rid, "reject-newest")
                    continue
                stats["admitted"] += 1
                yield from _note("net-admit", rid, mode=mode)
                queue.append((conn, rid, now))
                yield from qcv.signal()
                yield from qmutex.exit()
            for tid in handler_tids:
                yield from threads.thread_wait(tid)

        worker_tids = []
        if mode == "pool" and supervise:
            from repro.threads.supervisor import Supervisor

            def handover_arg(spec, dead):
                # Kernel context (crash time): pull the victim's
                # in-flight request; the replacement serves it first.
                return inflight.pop(spec.name, None)

            sup = Supervisor(max_restarts=max_restarts,
                             restart_arg=handover_arg,
                             heartbeat_timeout_usec=heartbeat_timeout_usec,
                             name="srv-sup")
            for i in range(n_workers):
                spec = yield from sup.spawn(
                    sworker, None, name=f"worker-{i}",
                    flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)
                wspecs[spec.name] = spec
        elif mode == "pool":
            for i in range(n_workers):
                tid = yield from threads.thread_create(
                    worker, None,
                    flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)
                worker_tids.append(tid)
            if crash_storm is not None:
                # Name the pool so the storm's target glob can find it
                # (the supervised path names through its ChildSpecs).
                ctx = yield GetContext()
                for i, tid in enumerate(worker_tids):
                    ctx.process.threadlib.threads[tid].name = f"worker-{i}"
        else:
            # Thread-per-connection: handlers are unbound, so give the
            # pool enough LWPs up front (the paper's
            # thread_setconcurrency hint); SIGWAITING still grows it
            # when every one of these blocks in the kernel at once.
            yield from threads.thread_setconcurrency(n_workers + 1)
        acceptor_tid = yield from threads.thread_create(
            acceptor, None,
            flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)

        start = yield from unistd.gettimeofday()
        pids = []
        for c in range(n_clients):
            pid = yield from unistd.fork1(client, c)
            pids.append(pid)
        for pid in pids:
            yield from unistd.waitpid(pid)

        # Clients are done: retire the listener (the acceptor's pending
        # accept aborts), then drain and poison the pool.  Queued,
        # already-admitted requests are served before the poison —
        # FIFO order guarantees no admitted request is ever dropped.
        yield from unistd.close(lfd)
        yield from threads.thread_wait(acceptor_tid)
        if supervise:
            # Graceful drain: stop restarts *first*, then poison exactly
            # the children still alive.  A crash from here on stays dead.
            sup.drain()
            yield from enter_robust(qmutex)
            live = [s for s in sup.children if s.thread is not None]
            for _ in live:
                queue.append(None)
            yield from qcv.broadcast()
            yield from qmutex.exit()
            for spec in live:
                t = spec.thread
                if t is not None:
                    yield from threads.thread_wait(t.thread_id)
            # Requests the supervisor could not recover — a give-up, or
            # a crash whose restart this drain pre-empted — are shed
            # explicitly so the ledger still balances.
            for wname in sorted(inflight):
                conn, rid, _enq = inflight.pop(wname)
                yield from reject(conn, rid, "crash-unrecovered")
        else:
            yield from enter_robust(qmutex)
            for _ in worker_tids:
                queue.append(None)
            yield from qcv.broadcast()
            yield from qmutex.exit()
            for tid in worker_tids:
                yield from threads.thread_wait(tid)
        end = yield from unistd.gettimeofday()
        yield from unistd.close(datafd)

        ctx = yield GetContext()
        results["received"] = stats["admitted"]
        results["served"] = stats["served"]
        results["shed"] = stats["shed"]
        results["client_ok"] = stats["client_ok"]
        results["client_giveups"] = stats["client_giveups"]
        results["client_retries"] = stats["client_retries"]
        results["backlog_drops"] = ctx.kernel.net.backlog_drops
        results["resets"] = ctx.kernel.net.resets
        results["elapsed_usec"] = (end - start) / 1000.0
        results["avg_latency_usec"] = (
            stats["latency_ns"] / stats["served"] / 1000.0
            if stats["served"] else 0.0)
        results["throughput_per_sec"] = (
            stats["served"] / (results["elapsed_usec"] / 1e6)
            if results["elapsed_usec"] else 0.0)
        results["pool_lwps"] = len(ctx.process.threadlib.pool_lwps)
        results["lwps_grown"] = (
            ctx.process.threadlib.lwps_grown_by_sigwaiting)
        if supervise:
            results["worker_restarts"] = sum(
                s.restarts for s in sup.children)
            results["worker_give_ups"] = sum(
                1 for s in sup.children if s.gave_up)

    return main, results
