"""The network-server workload, on real (simulated) sockets.

"A network server may indirectly need its own service (and therefore
another thread of control) to handle requests."  Clients in separate
processes connect to the server's listening socket (one connection per
request attempt), send a fixed-size request, and wait — with deadlines
and seeded-jitter backoff from :mod:`repro.threads.retry` — for the
response.  The server offers three architectures:

* ``mode="pool"`` (default): a bound-LWP worker pool behind a bounded
  admission queue.  The acceptor reads each request and either admits
  it, sheds the *oldest* queued request to make room (``shed="oldest"``)
  or refuses the newcomer with a ``BUSY`` response
  (``shed="reject-newest"``) — the degradation ladder's last rung, and
  always an *explicit* rejection the client can act on.
* ``mode="thread-per-conn"``: the paper's flagship — an unbound thread
  per connection, LWP pool growing via SIGWAITING as handlers block in
  the kernel, with admission as a cap on concurrent handlers.
* ``mode="event-loop"``: the architecture the paper argues *against* —
  a single LWP multiplexing every descriptor through ``select()`` on a
  nonblocking listener, serving each request inline (see
  :func:`_event_loop`).  No locks and no handoff, but one slow request
  head-of-line-blocks every other ready descriptor.

:func:`build` forks real client processes (the self-contained workload
form); :func:`build_server` is the server half alone, for the open-loop
load generator in :mod:`repro.load` to drive at 10^5–10^6 clients.

Every admitted request is accounted for on a ledger
(:func:`repro.sync.events.sync_event` ops ``net-admit`` /
``net-serve`` / ``net-shed``), which the explorer's lost-request
detector audits: admitted exactly once implies served exactly once or
explicitly shed — under overload, faults, and adversarial schedules.

``supervise=True`` puts the pool workers under a
:class:`~repro.threads.supervisor.Supervisor`: a worker that dies with
its LWP (a ``CrashStorm``, a watchdog kill) is respawned on backoff,
and its in-flight request — tracked in a plain dict the crash-reclaim
walk can read — is handed to the replacement as its first work item, so
the ledger stays exactly-once through crash storms.  The admission
mutex is treated as robust everywhere: any acquire that returns
``EOWNERDEAD`` repairs with ``consistent()`` (the queue deque is only
mutated between yields, so it is always structurally sound).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import Errno, SyscallError
from repro.hw.isa import GetContext
from repro.kernel.fs.file import O_CREAT, O_NONBLOCK, O_RDWR
from repro.runtime import libc, unistd
from repro.sync import CondVar, Mutex
from repro.sync.events import sync_event
from repro.threads import api as threads
from repro.threads import retry

REQUEST_SIZE = 16
PORT = 7000
BUSY = b"BUSY"


def _payload(cid: int, req: int, attempt: int) -> bytes:
    """One request id: unique per (client, request, attempt) so the
    ledger can hold every attempt to exactly-once accounting."""
    return f"c{cid:02d}r{req:04d}a{attempt:02d}".encode().ljust(
        REQUEST_SIZE, b".")


def _note(op: str, rid: str, **detail):
    """Generator: emit one ledger event (free when nobody listens)."""
    ctx = yield GetContext()
    sync_event(ctx, op, None, id=rid, **detail)


# ---------------------------------------------------------------------
# Shared server plumbing (used by build() and build_server() alike —
# every architecture reads, serves, sheds, and closes the same way).
# ---------------------------------------------------------------------

def _enter_robust(m):
    """Generator: ``m.enter()`` that absorbs owner death.  The data
    the admission mutex protects (a deque and counters) is only ever
    mutated between yields, so a lock inherited from a crashed
    holder is always structurally consistent — repair and go."""
    if (yield from m.enter()):
        m.consistent()


def _close_quiet(fd: int):
    """Generator: close that tolerates an already-dead fd (a crashed
    worker's replacement may re-close what the victim closed)."""
    try:
        yield from unistd.close(fd)
    except SyscallError:
        pass


def _reject(conn: int, rid: str, reason: str, stats: dict):
    """Explicitly shed one request: tell the client, close, ledger."""
    stats["shed"] += 1
    try:
        yield from unistd.send(conn, BUSY)
    except SyscallError:
        pass  # client already gone; the shed is still explicit
    yield from _close_quiet(conn)
    yield from _note("net-shed", rid, reason=reason)
    ctx = yield GetContext()
    m = ctx.engine.metrics
    if m is not None:
        m.count("server.shed")


def _read_request(conn: int):
    """Read one fixed-size request; None on EOF/reset/timeout."""
    data = b""
    while len(data) < REQUEST_SIZE:
        try:
            chunk = yield from retry.recv_with_deadline(
                conn, REQUEST_SIZE - len(data), 50_000.0)
        except SyscallError:
            return None
        if not chunk:
            return None
        data += chunk
    return data


def _serve(conn: int, rid: str, enq_ns: int, datafd: int, stats: dict,
           service_compute_usec: float):
    """The service: read the "database", compute, respond."""
    yield from unistd.lseek(datafd, 0)
    yield from unistd.read(datafd, 512)
    yield from libc.compute(service_compute_usec)
    ok = True
    try:
        yield from unistd.send(conn, b"OK:" + rid.encode())
    except SyscallError:
        ok = False  # client gave up first; served all the same
    yield from _close_quiet(conn)
    now = yield from unistd.gettimeofday()
    stats["served"] += 1
    stats["latency_ns"] += now - enq_ns
    yield from _note("net-serve", rid, ok=ok)
    ctx = yield GetContext()
    m = ctx.engine.metrics
    if m is not None:
        m.count("server.served")
        m.sample("server.latency_usec", (now - enq_ns) // 1000)


def _event_loop(lfd: int, datafd: int, stats: dict,
                service_compute_usec: float):
    """The third architecture: a single-LWP event loop.

    One thread multiplexes every descriptor through ``select()`` over
    the nonblocking listener: drain the backlog, read whatever arrived
    (partial requests are buffered per connection), and serve each
    complete request to completion *inline* — no handoff, no second
    thread, no locks.  That inline service is the architecture's
    signature and its weakness: while one request computes, every other
    ready descriptor waits (head-of-line blocking), which is exactly
    the knee the bakeoff measures under burst arrivals.

    The loop exits when the listener is retired (``close``d by a
    sibling thread in :func:`build`, or by the load driver at the
    kernel edge in :func:`build_server`) and the surviving connections
    have drained.
    """
    conns: dict[int, bytes] = {}
    listening = True
    # EMFILE backpressure: when the fd table fills, park the listener
    # (stop select()ing it) until serving or hangups release a slot —
    # connections wait in the backlog instead of killing the loop.
    parked = False
    while listening or conns:
        if parked and not conns:
            parked = False  # nothing left to drain; retry the accept
        watch = ([lfd] if listening and not parked else []) \
            + sorted(conns)
        try:
            ready = yield from unistd.select(watch)
        except SyscallError as err:
            if err.errno in (Errno.EBADF, Errno.EINTR):
                if err.errno == Errno.EBADF:
                    listening = False  # listener fd retired under us
                continue
            raise
        for fd in ready:
            if fd == lfd and listening:
                # Bounded drain: under a steady arrival stream the
                # backlog refills as fast as it empties, and an
                # unbounded accept loop would starve every admitted
                # connection (accept-biased head-of-line blocking).
                for _burst in range(32):
                    try:
                        conn = yield from unistd.accept(lfd)
                    except SyscallError as err:
                        if err.errno == Errno.EAGAIN:
                            break  # backlog drained
                        if err.errno in (Errno.EINVAL, Errno.EBADF,
                                         Errno.ECONNABORTED,
                                         Errno.EINTR):
                            listening = False
                            break
                        if err.errno in (Errno.EMFILE, Errno.ENFILE):
                            parked = True
                            break
                        raise
                    m = (yield GetContext()).engine.metrics
                    if m is not None:
                        m.count("server.accepts")
                    conns[conn] = b""
                continue
            buf = conns.get(fd)
            if buf is None:
                continue
            # Readiness-gated: select() said readable, and nothing else
            # drains this buffer, so the recv returns data, EOF, or an
            # error without blocking.
            try:
                chunk = yield from unistd.recv(  # lint: allow=L902
                    fd, REQUEST_SIZE - len(buf))
            except SyscallError:
                del conns[fd]
                yield from _close_quiet(fd)
                parked = False
                continue
            if not chunk:
                del conns[fd]
                yield from _close_quiet(fd)
                parked = False
                continue
            buf += chunk
            if len(buf) < REQUEST_SIZE:
                conns[fd] = buf
                continue
            del conns[fd]
            rid = buf.decode()
            now = yield from unistd.gettimeofday()
            stats["admitted"] += 1
            yield from _note("net-admit", rid, mode="event-loop")
            yield from _serve(fd, rid, now, datafd, stats,
                              service_compute_usec)
            parked = False  # _serve closed the conn: a slot is free


def _fill_results(results: dict, stats: dict, start: int, end: int,
                  ctx) -> None:
    """Common end-of-run accounting for every architecture."""
    results["received"] = stats["admitted"]
    results["served"] = stats["served"]
    results["shed"] = stats["shed"]
    results["client_ok"] = stats["client_ok"]
    results["client_giveups"] = stats["client_giveups"]
    results["client_retries"] = stats["client_retries"]
    results["backlog_drops"] = ctx.kernel.net.backlog_drops
    results["resets"] = ctx.kernel.net.resets
    results["elapsed_usec"] = (end - start) / 1000.0
    results["avg_latency_usec"] = (
        stats["latency_ns"] / stats["served"] / 1000.0
        if stats["served"] else 0.0)
    results["throughput_per_sec"] = (
        stats["served"] / (results["elapsed_usec"] / 1e6)
        if results["elapsed_usec"] else 0.0)
    results["pool_lwps"] = len(ctx.process.threadlib.pool_lwps)
    results["lwps_grown"] = (
        ctx.process.threadlib.lwps_grown_by_sigwaiting)


def build(n_clients: int = 3, requests_per_client: int = 10,
          n_workers: int = 4,
          service_compute_usec: float = 300.0,
          client_think_usec: float = 1_000.0,
          mode: str = "pool",
          backlog: int = 8,
          admission_limit: int = 32,
          shed: str = "reject-newest",
          client_attempts: int = 8,
          reply_deadline_usec: float = 200_000.0,
          port: int = PORT,
          supervise: bool = False,
          max_restarts: int = 6,
          heartbeat_timeout_usec=None,
          crash_storm=None) -> tuple[Callable, dict]:
    """Build the server program (it forks its own client processes).

    ``supervise`` runs pool workers under a Supervisor (see module
    docstring).  ``crash_storm``, when given, is a dict of
    :class:`~repro.sim.faults.CrashStorm` kwargs the program attaches to
    its own kernel at startup (unless a fault plan is already attached)
    — the self-contained form the regression corpus uses.
    """
    if mode not in ("pool", "thread-per-conn", "event-loop"):
        raise ValueError(f"unknown mode {mode!r}")
    if shed not in ("reject-newest", "oldest"):
        raise ValueError(f"unknown shed policy {shed!r}")
    if supervise and mode != "pool":
        raise ValueError("supervise=True requires mode='pool'")
    results: dict = {}
    stats = {"admitted": 0, "served": 0, "shed": 0, "latency_ns": 0,
             "client_ok": 0, "client_giveups": 0, "client_retries": 0}

    # ------------------------------------------------------------ client

    def client(client_id: int):
        policy = retry.RetryPolicy(
            attempts=client_attempts, base_usec=300.0, factor=2.0,
            max_delay_usec=10_000.0,
            retry_on={Errno.ECONNREFUSED, Errno.ETIMEDOUT,
                      Errno.ECONNRESET, Errno.EAGAIN, Errno.EINTR})
        from repro.kernel.signals import SIG_IGN, Sig
        yield from unistd.sigaction(int(Sig.SIGPIPE), SIG_IGN)
        ctx = yield GetContext()
        rng = ctx.engine.rng.stream(f"netclient/{client_id}")
        for req in range(requests_per_client):
            yield from unistd.sleep_usec(client_think_usec)
            for attempt in range(client_attempts):
                if attempt:
                    stats["client_retries"] += 1
                    yield from unistd.sleep_usec(
                        policy.delay_usec(attempt, rng))
                fd = yield from unistd.socket()
                resp = None
                try:
                    yield from unistd.connect(fd, port)
                    yield from unistd.send(
                        fd, _payload(client_id, req, attempt))
                    resp = yield from retry.recv_with_deadline(
                        fd, 64, reply_deadline_usec)
                except SyscallError as err:
                    if err.errno not in policy.retry_on and \
                            err.errno != Errno.EPIPE:
                        raise
                finally:
                    yield from unistd.close(fd)
                # Strict match on the echoed request id: a reply for a
                # *different* request (conceivable only when a crashed
                # worker's replacement re-serves onto a reused fd) must
                # not count as this request's success.
                if resp == b"OK:" + _payload(client_id, req, attempt):
                    stats["client_ok"] += 1
                    break
                # BUSY, EOF, reset, refused, or timed out: try again.
            else:
                stats["client_giveups"] += 1

    # ------------------------------------------------- server: the pool


    def reject(conn: int, rid: str, reason: str):
        yield from _reject(conn, rid, reason, stats)

    def serve(conn: int, rid: str, enq_ns: int, datafd: int):
        yield from _serve(conn, rid, enq_ns, datafd, stats,
                          service_compute_usec)

    def main():
        # A server that writes to clients that may hang up must not die
        # on the first disappointment.
        from repro.kernel.signals import SIG_IGN, Sig
        yield from unistd.sigaction(int(Sig.SIGPIPE), SIG_IGN)
        if crash_storm is not None:
            # Self-contained chaos: the program carries its own storm
            # (the regression-corpus form).  An externally attached plan
            # wins — explore passes faults through the run config.
            ctx = yield GetContext()
            if ctx.kernel.faults is None:
                from repro.sim.faults import CrashStorm, FaultPlan
                FaultPlan([CrashStorm(**crash_storm)]).attach(ctx.kernel)
        datafd = yield from unistd.open("/tmp/server.data",
                                        O_CREAT | O_RDWR)
        yield from unistd.write(datafd, b"x" * 4096)

        if mode == "event-loop":
            # The event loop accept-drains on readiness, so the
            # listener must be nonblocking.
            lfd = yield from unistd.socket(O_NONBLOCK)
        else:
            lfd = yield from unistd.socket()
        yield from unistd.bind(lfd, port)
        yield from unistd.listen(lfd, backlog)

        if mode == "event-loop":
            # Single-LWP server: the main thread *is* the event loop.
            # A reaper on its own LWP joins the client processes and
            # then retires the listener, which is what tells the loop
            # to drain and exit.
            start = yield from unistd.gettimeofday()
            pids = []
            for c in range(n_clients):
                pids.append((yield from unistd.fork1(client, c)))

            def reaper(_):
                for pid in pids:
                    yield from unistd.waitpid(pid)
                yield from _close_quiet(lfd)

            reaper_tid = yield from threads.thread_create(
                reaper, None,
                flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)
            yield from _event_loop(lfd, datafd, stats,
                                   service_compute_usec)
            yield from threads.thread_wait(reaper_tid)
            end = yield from unistd.gettimeofday()
            yield from unistd.close(datafd)
            _fill_results(results, stats, start, end,
                          (yield GetContext()))
            return

        # Admission queue feeding the worker pool (pool mode).
        queue: deque = deque()
        qmutex = Mutex(name="srv.qm")
        qcv = CondVar(name="srv.qcv")
        # Concurrent-handler cap (thread-per-conn mode).
        active = {"handlers": 0}
        # Crash containment (supervised mode): worker-name → in-flight
        # item.  Written in the same atomic block as the queue pop, so
        # from admission to disposal every request is reachable either
        # from the queue or from this dict — that invariant is what the
        # crash-recovery handover and the end-of-run sweep rely on.
        sup = None
        wspecs: dict = {}
        inflight: dict = {}

        def worker(_):
            while True:
                yield from _enter_robust(qmutex)
                while not queue:
                    if (yield from qcv.wait(qmutex)):
                        qmutex.consistent()
                item = queue.popleft()
                yield from qmutex.exit()
                if item is None:
                    return
                conn, rid, enq_ns = item
                yield from serve(conn, rid, enq_ns, datafd)

        def sworker(handover):
            """Supervised worker: first serve the crashed predecessor's
            in-flight item (``handover``), then pull from the queue."""
            ctx = yield GetContext()
            me = ctx.thread
            item = handover
            while True:
                if item is None:
                    yield from _enter_robust(qmutex)
                    while not queue:
                        if (yield from qcv.wait(qmutex)):
                            qmutex.consistent()
                    item = queue.popleft()
                    if item is not None:
                        inflight[me.name] = item
                    yield from qmutex.exit()
                    if item is None:
                        return  # poison: graceful drain
                else:
                    inflight[me.name] = item
                if sup is not None:
                    sup.heartbeat(wspecs[me.name])
                conn, rid, enq_ns = item
                yield from serve(conn, rid, enq_ns, datafd)
                inflight.pop(me.name, None)
                item = None

        def handler(conn):
            rid_raw = yield from _read_request(conn)
            if rid_raw is None:
                yield from unistd.close(conn)
                return
            rid = rid_raw.decode()
            yield from _enter_robust(qmutex)
            over = active["handlers"] >= admission_limit
            if not over:
                active["handlers"] += 1
            yield from qmutex.exit()
            if over:
                yield from reject(conn, rid, "handler-cap")
                return
            now = yield from unistd.gettimeofday()
            stats["admitted"] += 1
            yield from _note("net-admit", rid, mode=mode)
            yield from serve(conn, rid, now, datafd)
            yield from _enter_robust(qmutex)
            active["handlers"] -= 1
            yield from qmutex.exit()

        def acceptor(_):
            handler_tids = []
            while True:
                try:
                    conn = yield from unistd.accept(lfd)
                except SyscallError as err:
                    if err.errno == Errno.EINTR:
                        continue  # a sibling LWP forked a client
                    if err.errno in (Errno.ECONNABORTED, Errno.EBADF):
                        break  # main closed the listener: shift over
                    if err.errno in (Errno.EMFILE, Errno.ENFILE):
                        # fd table full: let in-flight handlers close
                        # their conns, then drain the backlog.
                        yield from unistd.sleep_usec(500.0)
                        continue
                    raise
                m = (yield GetContext()).engine.metrics
                if m is not None:
                    m.count("server.accepts")
                if mode == "thread-per-conn":
                    tid = yield from threads.thread_create(
                        handler, conn, flags=threads.THREAD_WAIT)
                    handler_tids.append(tid)
                    continue
                rid_raw = yield from _read_request(conn)
                if rid_raw is None:
                    yield from unistd.close(conn)
                    continue
                rid = rid_raw.decode()
                now = yield from unistd.gettimeofday()
                # The admit ledger event goes out *before* the request
                # becomes visible to workers (still under the queue
                # mutex), so no schedule can serve an unadmitted id.
                yield from _enter_robust(qmutex)
                if len(queue) >= admission_limit:
                    if shed == "oldest":
                        old = queue.popleft()
                        stats["admitted"] += 1
                        yield from _note("net-admit", rid, mode=mode)
                        queue.append((conn, rid, now))
                        yield from qcv.signal()
                        yield from qmutex.exit()
                        yield from reject(old[0], old[1], "shed-oldest")
                    else:
                        yield from qmutex.exit()
                        yield from reject(conn, rid, "reject-newest")
                    continue
                stats["admitted"] += 1
                yield from _note("net-admit", rid, mode=mode)
                queue.append((conn, rid, now))
                yield from qcv.signal()
                yield from qmutex.exit()
            for tid in handler_tids:
                yield from threads.thread_wait(tid)

        worker_tids = []
        if mode == "pool" and supervise:
            from repro.threads.supervisor import Supervisor

            def handover_arg(spec, dead):
                # Kernel context (crash time): pull the victim's
                # in-flight request; the replacement serves it first.
                return inflight.pop(spec.name, None)

            sup = Supervisor(max_restarts=max_restarts,
                             restart_arg=handover_arg,
                             heartbeat_timeout_usec=heartbeat_timeout_usec,
                             name="srv-sup")
            for i in range(n_workers):
                spec = yield from sup.spawn(
                    sworker, None, name=f"worker-{i}",
                    flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)
                wspecs[spec.name] = spec
        elif mode == "pool":
            for i in range(n_workers):
                tid = yield from threads.thread_create(
                    worker, None,
                    flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)
                worker_tids.append(tid)
            if crash_storm is not None:
                # Name the pool so the storm's target glob can find it
                # (the supervised path names through its ChildSpecs).
                ctx = yield GetContext()
                for i, tid in enumerate(worker_tids):
                    ctx.process.threadlib.threads[tid].name = f"worker-{i}"
        else:
            # Thread-per-connection: handlers are unbound, so give the
            # pool enough LWPs up front (the paper's
            # thread_setconcurrency hint); SIGWAITING still grows it
            # when every one of these blocks in the kernel at once.
            yield from threads.thread_setconcurrency(n_workers + 1)
        acceptor_tid = yield from threads.thread_create(
            acceptor, None,
            flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)

        start = yield from unistd.gettimeofday()
        pids = []
        for c in range(n_clients):
            pid = yield from unistd.fork1(client, c)
            pids.append(pid)
        for pid in pids:
            yield from unistd.waitpid(pid)

        # Clients are done: retire the listener (the acceptor's pending
        # accept aborts), then drain and poison the pool.  Queued,
        # already-admitted requests are served before the poison —
        # FIFO order guarantees no admitted request is ever dropped.
        yield from unistd.close(lfd)
        yield from threads.thread_wait(acceptor_tid)
        if supervise:
            # Graceful drain: stop restarts *first*, then poison exactly
            # the children still alive.  A crash from here on stays dead.
            sup.drain()
            yield from _enter_robust(qmutex)
            live = [s for s in sup.children if s.thread is not None]
            for _ in live:
                queue.append(None)
            yield from qcv.broadcast()
            yield from qmutex.exit()
            for spec in live:
                t = spec.thread
                if t is not None:
                    yield from threads.thread_wait(t.thread_id)
            # Requests the supervisor could not recover — a give-up, or
            # a crash whose restart this drain pre-empted — are shed
            # explicitly so the ledger still balances.
            for wname in sorted(inflight):
                conn, rid, _enq = inflight.pop(wname)
                yield from reject(conn, rid, "crash-unrecovered")
        else:
            yield from _enter_robust(qmutex)
            for _ in worker_tids:
                queue.append(None)
            yield from qcv.broadcast()
            yield from qmutex.exit()
            for tid in worker_tids:
                yield from threads.thread_wait(tid)
        end = yield from unistd.gettimeofday()
        yield from unistd.close(datafd)

        ctx = yield GetContext()
        _fill_results(results, stats, start, end, ctx)
        if supervise:
            results["worker_restarts"] = sum(
                s.restarts for s in sup.children)
            results["worker_give_ups"] = sum(
                1 for s in sup.children if s.gave_up)

    return main, results


def build_server(mode: str = "pool", n_workers: int = 4,
                 service_compute_usec: float = 200.0,
                 backlog: int = 64,
                 admission_limit: int = 64,
                 shed: str = "reject-newest",
                 port: int = PORT) -> tuple[Callable, dict]:
    """The server half only — no forked client processes.

    This is the entry the open-loop load generator (:mod:`repro.load`)
    drives: synthetic clients are injected at the kernel edge, so the
    program is just the chosen architecture serving whatever arrives on
    ``port``.  Termination is externally triggered — when the last
    arrival has resolved, the driver retires the listening socket via
    ``Network.close_socket``; acceptors observe ``ECONNABORTED`` /
    ``EINVAL``, the event loop sees the listener turn readable-and-
    closed, and every architecture drains in-flight work before the
    results dict is filled.

    Differences from :func:`build` are deliberate and architectural:

    * ``thread-per-conn`` handlers here are *detached* (completion
      tracked with a counter under the admission mutex) — joining 10^5
      zombie threads at drain time would hold every dead handler alive
      for the whole run;
    * pool workers are always named ``worker-<i>`` so crash-storm fault
      plans can target them;
    * there is no ``supervise`` flag — crash containment is
      :func:`build`'s chaos-gate territory; under the bakeoff a killed
      worker simply surfaces as timeouts in the outcome table.
    """
    if mode not in ("pool", "thread-per-conn", "event-loop"):
        raise ValueError(f"unknown mode {mode!r}")
    if shed not in ("reject-newest", "oldest"):
        raise ValueError(f"unknown shed policy {shed!r}")
    results: dict = {}
    stats = {"admitted": 0, "served": 0, "shed": 0, "latency_ns": 0,
             "client_ok": 0, "client_giveups": 0, "client_retries": 0}

    def main():
        from repro.kernel.signals import SIG_IGN, Sig
        yield from unistd.sigaction(int(Sig.SIGPIPE), SIG_IGN)
        datafd = yield from unistd.open("/tmp/server.data",
                                        O_CREAT | O_RDWR)
        yield from unistd.write(datafd, b"x" * 4096)
        if mode == "event-loop":
            lfd = yield from unistd.socket(O_NONBLOCK)
        else:
            lfd = yield from unistd.socket()
        yield from unistd.bind(lfd, port)
        yield from unistd.listen(lfd, backlog)
        start = yield from unistd.gettimeofday()

        if mode == "event-loop":
            yield from _event_loop(lfd, datafd, stats,
                                   service_compute_usec)
            end = yield from unistd.gettimeofday()
            yield from unistd.close(datafd)
            _fill_results(results, stats, start, end,
                          (yield GetContext()))
            return

        queue: deque = deque()
        qmutex = Mutex(name="srv.qm")
        qcv = CondVar(name="srv.qcv")
        # Thread-per-conn accounting: handlers are detached, so the
        # drain waits on spawned == finished instead of joining tids.
        active = {"handlers": 0, "spawned": 0, "finished": 0}

        def worker(_):
            while True:
                yield from _enter_robust(qmutex)
                while not queue:
                    if (yield from qcv.wait(qmutex)):
                        qmutex.consistent()
                item = queue.popleft()
                yield from qmutex.exit()
                if item is None:
                    return
                conn, rid, enq_ns = item
                yield from _serve(conn, rid, enq_ns, datafd, stats,
                                  service_compute_usec)

        def handler(conn):
            rid_raw = yield from _read_request(conn)
            if rid_raw is not None:
                rid = rid_raw.decode()
                yield from _enter_robust(qmutex)
                over = active["handlers"] >= admission_limit
                if not over:
                    active["handlers"] += 1
                yield from qmutex.exit()
                if over:
                    yield from _reject(conn, rid, "handler-cap", stats)
                else:
                    now = yield from unistd.gettimeofday()
                    stats["admitted"] += 1
                    yield from _note("net-admit", rid, mode=mode)
                    yield from _serve(conn, rid, now, datafd, stats,
                                      service_compute_usec)
                    yield from _enter_robust(qmutex)
                    active["handlers"] -= 1
                    yield from qmutex.exit()
            else:
                yield from _close_quiet(conn)
            yield from _enter_robust(qmutex)
            active["finished"] += 1
            yield from qcv.broadcast()
            yield from qmutex.exit()

        def acceptor(_):
            while True:
                try:
                    conn = yield from unistd.accept(lfd)
                except SyscallError as err:
                    if err.errno == Errno.EINTR:
                        continue
                    if err.errno in (Errno.ECONNABORTED, Errno.EBADF,
                                     Errno.EINVAL):
                        break  # listener retired: drain and exit
                    if err.errno in (Errno.EMFILE, Errno.ENFILE):
                        # fd table full: let in-flight handlers close
                        # their conns, then drain the backlog.
                        yield from unistd.sleep_usec(500.0)
                        continue
                    raise
                m = (yield GetContext()).engine.metrics
                if m is not None:
                    m.count("server.accepts")
                if mode == "thread-per-conn":
                    active["spawned"] += 1
                    yield from threads.thread_create(handler, conn)
                    continue
                rid_raw = yield from _read_request(conn)
                if rid_raw is None:
                    yield from _close_quiet(conn)
                    continue
                rid = rid_raw.decode()
                now = yield from unistd.gettimeofday()
                yield from _enter_robust(qmutex)
                if len(queue) >= admission_limit:
                    if shed == "oldest":
                        old = queue.popleft()
                        stats["admitted"] += 1
                        yield from _note("net-admit", rid, mode=mode)
                        queue.append((conn, rid, now))
                        yield from qcv.signal()
                        yield from qmutex.exit()
                        yield from _reject(old[0], old[1],
                                           "shed-oldest", stats)
                    else:
                        yield from qmutex.exit()
                        yield from _reject(conn, rid, "reject-newest",
                                           stats)
                    continue
                stats["admitted"] += 1
                yield from _note("net-admit", rid, mode=mode)
                queue.append((conn, rid, now))
                yield from qcv.signal()
                yield from qmutex.exit()

        worker_tids = []
        if mode == "pool":
            ctx = yield GetContext()
            for i in range(n_workers):
                tid = yield from threads.thread_create(
                    worker, None,
                    flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)
                worker_tids.append(tid)
                ctx.process.threadlib.threads[tid].name = f"worker-{i}"
        else:
            yield from threads.thread_setconcurrency(n_workers + 1)
        acceptor_tid = yield from threads.thread_create(
            acceptor, None,
            flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)
        yield from threads.thread_wait(acceptor_tid)

        if mode == "pool":
            yield from _enter_robust(qmutex)
            for _ in worker_tids:
                queue.append(None)
            yield from qcv.broadcast()
            yield from qmutex.exit()
            for tid in worker_tids:
                yield from threads.thread_wait(tid)
        else:
            yield from _enter_robust(qmutex)
            while active["finished"] < active["spawned"]:
                if (yield from qcv.wait(qmutex)):
                    qmutex.consistent()
            yield from qmutex.exit()
        end = yield from unistd.gettimeofday()
        yield from unistd.close(datafd)
        _fill_results(results, stats, start, end,
                      (yield GetContext()))

    return main, results
