"""The parallel array computation workload.

The paper's argument for bound threads and thread/LWP ratio control: "A
parallel array computation divides the rows of its arrays among different
threads.  If there is one LWP per processor, but multiple threads per
LWP, each processor would spend overhead switching between threads.  It
would be better to know that there is one thread per LWP, divide the rows
among a smaller number of threads, and reduce the number of thread
switches."

``build()`` divides ``rows`` of ``row_cost_usec`` work among ``n_threads``
threads over ``n_lwps`` LWPs (via thread_setconcurrency, or bound threads
when ``n_threads == n_lwps`` and ``bind`` is set), with a barrier-style
join at the end.  ABL2 sweeps threads-per-LWP and shows the overhead.
"""

from __future__ import annotations

from typing import Callable

from repro.runtime import libc, unistd
from repro.sync import CondVar, Mutex
from repro.threads import api as threads


def build(rows: int = 256, row_cost_usec: float = 200.0,
          n_threads: int = 8, n_lwps: int = 4,
          bind: bool = False,
          yield_between_rows: bool = True) -> tuple[Callable, dict]:
    """Build the array-computation program.

    ``yield_between_rows`` models a computation whose inner loop
    cooperatively yields (e.g. touches shared state) — this is what makes
    excess threads-per-LWP cost switches.  With ``bind`` each thread is
    permanently bound to its own LWP ("thread code that is really LWP
    code"), the paper's recommended configuration at 1 thread/LWP.
    """
    results: dict = {}

    def main():
        if bind and n_threads != n_lwps:
            raise ValueError("bind requires n_threads == n_lwps")
        if not bind:
            yield from threads.thread_setconcurrency(n_lwps)

        per_thread = rows // n_threads
        extra = rows % n_threads
        done = {"count": 0}
        # Start gate: creation (especially expensive bound creation) is
        # excluded from the measured window; the paper's claim concerns
        # steady-state switching overhead.
        gate = {"open": False, "m": Mutex(), "cv": CondVar()}

        def worker(nrows: int):
            yield from gate["m"].enter()
            while not gate["open"]:
                yield from gate["cv"].wait(gate["m"])
            yield from gate["m"].exit()
            for _ in range(nrows):
                yield from libc.compute(row_cost_usec)
                if yield_between_rows:
                    yield from threads.thread_yield()
            done["count"] += 1

        flags = threads.THREAD_WAIT | (threads.THREAD_BIND_LWP
                                       if bind else 0)
        tids = []
        for i in range(n_threads):
            nrows = per_thread + (1 if i < extra else 0)
            tid = yield from threads.thread_create(worker, nrows,
                                                   flags=flags)
            tids.append(tid)

        start = yield from unistd.gettimeofday()
        yield from gate["m"].enter()
        gate["open"] = True
        yield from gate["cv"].broadcast()
        yield from gate["m"].exit()
        for tid in tids:
            yield from threads.thread_wait(tid)
        end = yield from unistd.gettimeofday()

        from repro.hw.isa import GetContext
        ctx = yield GetContext()
        results["elapsed_usec"] = (end - start) / 1000.0
        results["threads_done"] = done["count"]
        results["user_switches"] = ctx.process.threadlib.user_switches
        results["ideal_usec"] = (rows * row_cost_usec
                                 / min(n_lwps, ctx.kernel.machine.ncpus))
        results["overhead_ratio"] = (results["elapsed_usec"]
                                     / results["ideal_usec"])

    return main, results
