"""The database record-locking workload.

Straight from the paper: "a file can be created that contains data base
records.  Each record can contain a mutual exclusion lock variable that
controls access to the associated record.  A process can map the file and
a thread within it can obtain the lock associated with a particular
record ... if any thread within any process mapping the file attempts to
acquire the lock that thread will block until the lock is released."

``build()`` creates the record file, forks ``n_processes`` worker
processes each running ``n_threads`` threads, and has every thread
perform read-modify-write transactions on seeded-random records under the
record's *in-file* mutex.  The final consistency check (sum of all record
counters equals the number of committed transactions) only passes if
cross-process mutual exclusion actually works.
"""

from __future__ import annotations

from typing import Callable

from repro.runtime import libc, mapped, unistd
from repro.sync import Mutex, THREAD_SYNC_SHARED
from repro.threads import api as threads

RECORD_SIZE = 64
_DB_PATH = "/db/records"


def _record_mutex(region: mapped.MappedRegion, record: int) -> Mutex:
    """The lock variable embedded in record ``record`` of the file."""
    return Mutex(THREAD_SYNC_SHARED,
                 cell=region.cell(record * RECORD_SIZE),
                 name=f"rec{record}.m")


def _counter_offset(record: int) -> int:
    return record * RECORD_SIZE + 8


def build(n_records: int = 16, n_processes: int = 2, n_threads: int = 3,
          txns_per_thread: int = 20,
          txn_compute_usec: float = 80.0,
          seed: int = 0) -> tuple[Callable, dict]:
    """Build the database program; results gain commit counts and the
    cross-process consistency verdict."""
    results: dict = {}
    file_size = n_records * RECORD_SIZE

    def worker_process(proc_index: int):
        region = yield from mapped.map_shared_file(_DB_PATH, file_size)

        def txn_thread(thread_index: int):
            import random
            rng = random.Random(f"{seed}/{proc_index}/{thread_index}")
            for _ in range(txns_per_thread):
                record = rng.randrange(n_records)
                lock = _record_mutex(region, record)
                yield from lock.enter()
                # Read-modify-write of the record's counter cell.
                counter = region.mobj.load_cell(_counter_offset(record))
                yield from libc.compute(txn_compute_usec)
                region.mobj.store_cell(_counter_offset(record),
                                       counter + 1)
                yield from lock.exit()

        tids = []
        for t in range(n_threads):
            tid = yield from threads.thread_create(
                txn_thread, t, flags=threads.THREAD_WAIT)
            tids.append(tid)
        for tid in tids:
            yield from threads.thread_wait(tid)

    def main():
        yield from unistd.mkdir("/db")
        region = yield from mapped.map_shared_file(_DB_PATH, file_size)

        start = yield from unistd.gettimeofday()
        pids = []
        for p in range(n_processes):
            pid = yield from unistd.fork1(worker_process, p)
            pids.append(pid)
        for pid in pids:
            yield from unistd.waitpid(pid)
        end = yield from unistd.gettimeofday()

        committed = sum(
            region.mobj.load_cell(_counter_offset(r))
            for r in range(n_records))
        expected = n_processes * n_threads * txns_per_thread
        locks_held = sum(
            1 for r in range(n_records)
            if region.mobj.load_cell(r * RECORD_SIZE) != 0)
        results["committed"] = committed
        results["expected"] = expected
        results["consistent"] = committed == expected
        results["locks_left_held"] = locks_held
        results["elapsed_usec"] = (end - start) / 1000.0
        results["throughput_per_sec"] = (
            committed / (results["elapsed_usec"] / 1e6)
            if results["elapsed_usec"] else 0.0)

    return main, results
