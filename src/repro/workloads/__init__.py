"""Reference workloads from the paper's motivation section.

Each module exposes ``build(**params) -> (main, results)``: spawn ``main``
in a :class:`repro.api.Simulator`, run, then read ``results``.
"""

from repro.workloads import array_compute, database, network_server, window_system

__all__ = ["array_compute", "database", "network_server", "window_system"]
