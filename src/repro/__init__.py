"""repro — a full reproduction of the SunOS Multi-thread Architecture.

Powell, Kleiman, Barton, Shah, Stein, Weeks, "SunOS Multi-thread
Architecture", USENIX Winter 1991.

The package layers exactly like the paper's Figure 3:

* :mod:`repro.sim` / :mod:`repro.hw` — the hardware: a discrete-event
  simulated machine with CPUs, memory objects, and a cost model calibrated
  to the paper's SPARCstation 1+ measurements.
* :mod:`repro.kernel` — the kernel: processes, **LWPs**, the dispatcher
  with scheduling classes, signals (traps vs interrupts, SIGWAITING),
  virtual memory, files, fork/fork1/exec, /proc.
* :mod:`repro.threads` — the paper's contribution: extremely lightweight
  user-level **threads** multiplexed M:N on LWPs.
* :mod:`repro.sync` — mutexes, condition variables, semaphores,
  readers/writer locks, with process-shared variants through mapped files.
* :mod:`repro.models` — the comparison models (SunOS 4.0 liblwp, 1:1
  kernel threads, scheduler activations).
* :mod:`repro.runtime`, :mod:`repro.workloads`, :mod:`repro.analysis` —
  user-level runtime, reference workloads, experiment reporting.

Entry point: :class:`repro.api.Simulator`.
"""

from repro.api import Simulator
from repro.errors import (DeadlockError, Errno, LwpExhausted, ReproError,
                          SimulationError, SyncError, SyscallError,
                          ThreadError)
from repro.sim.faults import (AcceptStall, ConnDrop, CrashStorm, FaultPlan,
                              LwpCrash, PacketDelay, PageFaultStorm,
                              PeerReset, SyscallFault, TimerJitter)
from repro.sim.schedule import (ForcedPreempt, PctPriorities, RandomPick,
                                RandomPreempt, SchedulePlan)

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "DeadlockError", "Errno", "LwpExhausted", "ReproError",
    "SimulationError", "SyncError", "SyscallError", "ThreadError",
    "FaultPlan", "SyscallFault", "PageFaultStorm", "TimerJitter",
    "LwpCrash", "CrashStorm", "ConnDrop", "AcceptStall", "PacketDelay",
    "PeerReset",
    "SchedulePlan", "RandomPreempt", "RandomPick", "PctPriorities",
    "ForcedPreempt",
    "__version__",
]
