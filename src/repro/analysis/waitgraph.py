"""Hang diagnostics: the wait-for graph behind :class:`DeadlockError`.

When the event queue drains with entities still blocked, the engine used
to report only *which LWPs* were asleep.  This walker reconstructs the
full picture — processes → LWPs → sleep channels → user threads →
synchronization variables → owning threads — and renders who waits on
what, held by whom, since when (virtual ns), plus any cycle it finds.

It reads both kernel structures and per-process threads-library
structures.  That is deliberate and safe: like /proc's LWP view
(``repro.kernel.fs.procfs``), this is the debugger-cooperation path the
paper describes, read-only and outside any kernel behavior — the kernel
still never *acts* on thread state.

Process-shared (usync) sleeps appear in the LWP section: the kernel
channel a shared-variable sleep uses is labeled with the owning
primitive's name (e.g. ``mutex:lock:…``), so cross-process waits are
named even though no user-level queue exists for them.  Socket waits
(accept/recv/connect) additionally carry the network-side story from
``kernel.net.annotate_channel`` — which port, connection state, peer
process, and bytes buffered — so "blocked in recv" names its culprit.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.lwp import LwpState
from repro.kernel.process import ProcState
from repro.sync.condvar import CondVar
from repro.sync.mutex import Mutex
from repro.sync.rwlock import RwLock
from repro.sync.semaphore import Semaphore
from repro.sync.variants import all_sync_variables
from repro.threads.thread import Thread, ThreadState


class WaitEdge:
    """One blocked thread: waits on ``kind`` ``resource``, held by
    ``holders`` (threads), since ``since_ns``."""

    def __init__(self, pid: int, thread: Thread, kind: str, resource: str,
                 holders: list, since_ns: Optional[int]):
        self.pid = pid
        self.thread = thread
        self.kind = kind
        self.resource = resource
        self.holders = holders
        self.since_ns = since_ns

    def describe(self, now_ns: int) -> str:
        held = ""
        if self.holders:
            held = " held by " + ", ".join(
                f"{h.name} (dead)" if h.exited else h.name
                for h in self.holders)
        since = ""
        if self.since_ns is not None:
            since = (f" (waiting {now_ns - self.since_ns} ns, "
                     f"since t={self.since_ns} ns)")
        return (f"{self.thread.name} (pid {self.pid}) waits on "
                f"{self.kind} '{self.resource}'{held}{since}")


def _resolve_queue(queue: list, lib) -> tuple[str, str, list]:
    """Name the resource a user-level wait queue belongs to.

    Matches by queue identity against the live sync-variable registry,
    then against thread join/stop queues.  Returns (kind, name, holders).
    """
    for sv in all_sync_variables():
        if isinstance(sv, Mutex) and sv.waiters is queue:
            holders = [sv.owner] if sv.owner is not None else []
            return ("mutex", sv.name, holders)
        if isinstance(sv, CondVar) and sv.waiters is queue:
            return ("condvar", sv.name, [])
        if isinstance(sv, Semaphore) and sv.waiters is queue:
            # Semaphores have no owner, but the best-effort holder list
            # (threads that completed P without a matching V) lets the
            # cycle finder see through semaphores used as locks.
            return ("semaphore", sv.name, list(sv.holders))
        if isinstance(sv, RwLock):
            if sv.writer is not None:
                holders = [sv.writer]
            else:
                # Reader-held: name the readers, so a writer (or
                # would-be upgrader) wait shows who blocks it.
                holders = list(sv.reader_holders)
            if sv.reader_waiters is queue:
                return ("rwlock(read)", sv.name, holders)
            if sv.writer_waiters is queue:
                return ("rwlock(write)", sv.name, holders)
    for other in lib.threads.values():
        if other.waiters is queue:
            return ("thread-exit", other.name, [other])
        if getattr(other, "_stop_waiters", None) is queue:
            return ("thread-stop", other.name, [other])
    if lib.any_waiters is queue:
        return ("thread-exit", "any THREAD_WAIT thread", [])
    return ("wait-queue", f"@{id(queue):x}", [])


def build_wait_graph(kernel) -> tuple[list[WaitEdge], list[tuple]]:
    """Walk every active process; returns (thread_edges, lwp_waits).

    ``lwp_waits`` is ``[(lwp, channel_name, since_ns), ...]`` — the
    kernel-level view, which includes usync sleeps and bound threads
    parked inside system calls.
    """
    edges: list[WaitEdge] = []
    lwp_waits: list[tuple] = []
    for pid in sorted(kernel.processes):
        proc = kernel.processes[pid]
        if proc.state is not ProcState.ACTIVE:
            continue
        for lwp in proc.live_lwps():
            if lwp.state is LwpState.SLEEPING:
                # `is not None`, not truthiness: an empty WaitChannel is
                # falsy but still names the wait.
                chan = (lwp.channel.name if lwp.channel is not None
                        else "?")
                if lwp.channel is not None:
                    # Socket waits get their network-side story: which
                    # port/connection, who the peer is, what state it is
                    # in — "blocked in recv" alone names no culprit.
                    note = kernel.net.annotate_channel(lwp.channel)
                    if note:
                        chan = f"{chan} [{note}]"
                lwp_waits.append((lwp, chan, lwp.sleep_since_ns))
        lib = proc.threadlib
        if lib is None:
            continue
        for thread in lib.all_threads():
            if thread.exited or thread.state is not ThreadState.SLEEPING:
                continue
            queue = thread.wait_queue
            if queue is None:
                continue
            kind, resource, holders = _resolve_queue(queue, lib)
            # Keep dead holders: a lock orphaned by a crashed owner is
            # precisely the hang a report must name (describe() renders
            # them "<name> (dead)").  The cycle finder sees through them
            # naturally — a corpse blocks on nothing.
            holders = [h for h in holders if isinstance(h, Thread)]
            edges.append(WaitEdge(pid, thread, kind, resource, holders,
                                  thread.sleep_since_ns))
    return edges, lwp_waits


def find_cycles(edges: list[WaitEdge]) -> list[list[WaitEdge]]:
    """Cycles in the thread → holder graph (each reported once)."""
    by_thread: dict[Thread, WaitEdge] = {e.thread: e for e in edges}
    cycles: list[list[WaitEdge]] = []
    seen_keys: set = set()
    black: set = set()

    def dfs(t: Thread, path: list, on_path: dict) -> None:
        if t in on_path:
            cyc = path[on_path[t]:]
            key = frozenset(id(x) for x in cyc)
            if key not in seen_keys:
                seen_keys.add(key)
                cycles.append([by_thread[x] for x in cyc])
            return
        if t in black or t not in by_thread:
            return
        on_path[t] = len(path)
        path.append(t)
        for holder in by_thread[t].holders:
            dfs(holder, path, on_path)
        path.pop()
        del on_path[t]
        black.add(t)

    for start in by_thread:
        dfs(start, [], {})
    return cycles


def render_hang_report(kernel) -> str:
    """The human-readable report DeadlockError carries (and
    ``engine.diagnose_hang()`` returns)."""
    edges, lwp_waits = build_wait_graph(kernel)
    if not edges and not lwp_waits:
        return ""
    now = kernel.engine.now_ns
    lines = [f"=== hang diagnosis at t={now} ns ==="]
    if edges:
        lines.append("blocked threads (wait-for graph):")
        for e in edges:
            lines.append(f"  {e.describe(now)}")
    if lwp_waits:
        lines.append("sleeping LWPs:")
        for lwp, chan, since in lwp_waits:
            ago = f" since t={since} ns" if since is not None else ""
            lines.append(f"  {lwp.name}: on channel '{chan}'{ago}")
    cycles = find_cycles(edges)
    for cyc in cycles:
        lines.append("deadlock cycle detected:")
        for e in cyc:
            lines.append(f"  {e.describe(now)}")
    if edges and not cycles:
        lines.append("no thread-level cycle found: a resource may simply "
                     "never be signaled (lost wakeup or missing peer).")
    return "\n".join(lines)
