"""Experiment runners: one function per paper table/figure + ablations.

Each runner executes the measurement program the paper describes on a
fresh simulated machine and returns a result dict; ``*_table`` helpers
wrap the results in :class:`repro.analysis.report.Table` next to the
paper's published numbers.  The benchmark harness and EXPERIMENTS.md
generator both call these.
"""

from __future__ import annotations

from repro.analysis.report import Row, Table
from repro.api import Simulator
from repro.hw.isa import Charge, Syscall
from repro.runtime import libc, mapped, unistd
from repro.sim.clock import usec
from repro.sync import Semaphore, THREAD_SYNC_SHARED
from repro import threads

def _choice_plan(sched_class):
    """A fresh SchedulePlan forcing ``sched_class``, or None for the
    default.  Fresh per Simulator: a plan attaches exactly once."""
    if sched_class is None:
        return None
    from repro.sim.schedule import SchedulePlan, SchedulerChoice
    return SchedulePlan([SchedulerChoice(sched_class)])


#: Paper values for Figures 5 and 6 (microseconds).
PAPER = {
    "unbound_create": 56.0,
    "bound_create": 2327.0,
    "setjmp_longjmp": 59.0,
    "unbound_sync": 158.0,
    "bound_sync": 348.0,
    "cross_process_sync": 301.0,
}


# ====================================================================
# FIG5 — thread creation time
# ====================================================================

def run_fig5(n: int = 50, costs=None, sched_class=None) -> dict:
    """Measure unbound and bound thread creation (amortized over ``n``).

    Matches the paper's method: default cached stack, creation time only
    (the created threads are never switched to inside the window).
    ``sched_class`` names a scheduling class ("CFS", "MLFQ", ...) to run
    the measurement under, via a :class:`SchedulerChoice` plan.
    """
    results = {}

    def noop(_):
        return
        yield

    def measure(bound: bool) -> float:
        label = "bound" if bound else "unbound"

        def main():
            flags = threads.THREAD_BIND_LWP if bound else 0
            # Warm the stack cache (paper: "a default stack that is
            # cached by the threads package").
            tid = yield from threads.thread_create(
                noop, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            t0 = yield Syscall("gettimeofday")
            for _ in range(n):
                yield from threads.thread_create(noop, None, flags=flags)
            t1 = yield Syscall("gettimeofday")
            sim.metrics.observe(
                f"bench.fig5.create_window_ns.{label}", t1 - t0)

        sim = Simulator(ncpus=4, costs=costs, metrics=True,
                        schedule=_choice_plan(sched_class))
        sim.spawn(main)
        sim.run(check_deadlock=False)
        h = sim.metrics.histograms[f"bench.fig5.create_window_ns.{label}"]
        return h.total / 1000 / n

    results["unbound_create"] = measure(False)
    results["bound_create"] = measure(True)
    results["ratio"] = results["bound_create"] / results["unbound_create"]
    return results


def fig5_table(results: dict) -> Table:
    return Table(
        "Figure 5: Thread creation time (usec)",
        [Row("Unbound thread create", PAPER["unbound_create"],
             results["unbound_create"]),
         Row("Bound thread create", PAPER["bound_create"],
             results["bound_create"])])


# ====================================================================
# FIG6 — thread synchronization time
# ====================================================================

def run_fig6(n: int = 100, costs=None, sched_class=None) -> dict:
    """All four rows of Figure 6 (one-way synchronization times).

    ``sched_class`` as in :func:`run_fig5`.
    """
    return {
        "setjmp_longjmp": _measure_setjmp(n, costs, sched_class),
        "unbound_sync": _measure_sync(0, n, costs, sched_class),
        "bound_sync": _measure_sync(threads.THREAD_BIND_LWP, n, costs,
                                    sched_class),
        "cross_process_sync": _measure_cross(n, costs, sched_class),
    }


def fig6_table(results: dict) -> Table:
    return Table(
        "Figure 6: Thread synchronization time (usec, one way)",
        [Row("setjmp/longjmp", PAPER["setjmp_longjmp"],
             results["setjmp_longjmp"]),
         Row("Unbound thread sync", PAPER["unbound_sync"],
             results["unbound_sync"]),
         Row("Bound thread sync", PAPER["bound_sync"],
             results["bound_sync"]),
         Row("Cross process thread sync", PAPER["cross_process_sync"],
             results["cross_process_sync"])])


def _measure_setjmp(n: int, costs, sched_class=None) -> float:
    def main():
        t0 = yield Syscall("gettimeofday")
        for _ in range(n):
            yield from libc.setjmp_longjmp_pair()
        t1 = yield Syscall("gettimeofday")
        sim.metrics.observe("bench.fig6.setjmp_window_ns", t1 - t0)

    sim = Simulator(costs=costs, metrics=True,
                    schedule=_choice_plan(sched_class))
    sim.spawn(main)
    sim.run()
    return sim.metrics.histograms["bench.fig6.setjmp_window_ns"].total \
        / 1000 / n


def _measure_sync(flags: int, n: int, costs, sched_class=None) -> float:
    """The paper's two-semaphore ping-pong, divided by two."""
    label = "bound" if flags & threads.THREAD_BIND_LWP else "unbound"
    key = f"bench.fig6.sync_window_ns.{label}"

    def main():
        s1, s2 = Semaphore(), Semaphore()

        def echo(_):
            for _ in range(n + 1):
                yield from s2.p()
                yield from s1.v()

        def driver(_):
            yield from s2.v()
            yield from s1.p()
            t0 = yield Syscall("gettimeofday")
            for _ in range(n):
                yield from s2.v()
                yield from s1.p()
            t1 = yield Syscall("gettimeofday")
            sim.metrics.observe(key, t1 - t0)

        a = yield from threads.thread_create(
            echo, None, flags=threads.THREAD_WAIT | flags)
        b = yield from threads.thread_create(
            driver, None, flags=threads.THREAD_WAIT | flags)
        yield from threads.thread_wait(a)
        yield from threads.thread_wait(b)

    sim = Simulator(ncpus=1, costs=costs, metrics=True,
                    schedule=_choice_plan(sched_class))
    sim.spawn(main)
    sim.run()
    return sim.metrics.histograms[key].total / 1000 / (2 * n)


def _measure_cross(n: int, costs, sched_class=None) -> float:
    """Two processes synchronizing "through a file in shared memory"."""
    def peer():
        region = yield from mapped.map_shared_file("/tmp/sync", 4096)
        s1 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(0))
        s2 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(8))
        for _ in range(n + 1):
            yield from s2.p()
            yield from s1.v()

    def main():
        region = yield from mapped.map_shared_file("/tmp/sync", 4096)
        s1 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(0))
        s2 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(8))
        pid = yield from unistd.fork1(peer)
        yield from s2.v()
        yield from s1.p()
        t0 = yield Syscall("gettimeofday")
        for _ in range(n):
            yield from s2.v()
            yield from s1.p()
        t1 = yield Syscall("gettimeofday")
        sim.metrics.observe("bench.fig6.cross_window_ns", t1 - t0)
        yield from unistd.waitpid(pid)

    sim = Simulator(ncpus=1, costs=costs, metrics=True,
                    schedule=_choice_plan(sched_class))
    sim.spawn(main)
    sim.run()
    return sim.metrics.histograms["bench.fig6.cross_window_ns"].total \
        / 1000 / (2 * n)


# ====================================================================
# ABL1 — window system: M:N vs 1:1
# ====================================================================

def run_abl1(n_widgets: int = 200, n_events: int = 400,
             ncpus: int = 2) -> dict:
    """Footprint and latency of the widget workload under both models."""
    from repro.workloads import window_system

    out = {}
    for key, bound in (("mn", False), ("one_to_one", True)):
        main, res = window_system.build(
            n_widgets=n_widgets, n_events=n_events,
            bound_threads=bound, event_spacing_usec=100)
        sim = Simulator(ncpus=ncpus)
        sim.spawn(main)
        sim.run()
        out[key] = {
            "lwps": res["footprint"]["lwps"],
            "kernel_bytes": res["footprint"]["kernel_bytes"],
            "latency_avg_usec": res["latency_avg_usec"],
            "elapsed_usec": res["elapsed_usec"],
            "processed": res["processed"],
        }
    out["kernel_memory_ratio"] = (out["one_to_one"]["kernel_bytes"]
                                  / max(out["mn"]["kernel_bytes"], 1))
    return out


def abl1_table(results: dict) -> Table:
    rows = [
        Row("M:N LWPs (threads=widgets)", None, results["mn"]["lwps"],
            unit="lwps"),
        Row("1:1 LWPs", None, results["one_to_one"]["lwps"],
            unit="lwps"),
        Row("M:N kernel bytes", None, results["mn"]["kernel_bytes"],
            unit="bytes"),
        Row("1:1 kernel bytes", None,
            results["one_to_one"]["kernel_bytes"], unit="bytes"),
    ]
    return Table("ABL1: Window system, M:N vs 1:1", rows,
                 with_ratios=False)


# ====================================================================
# ABL2 — array computation: threads-per-LWP sweep
# ====================================================================

def run_abl2(rows: int = 128, n_lwps: int = 4, ncpus: int = 4,
             sweep=(1, 2, 4, 8)) -> dict:
    """Elapsed time vs threads-per-LWP; 1 thread/LWP (bound) included."""
    from repro.workloads import array_compute

    out = {"sweep": {}}
    for ratio in sweep:
        n_threads = n_lwps * ratio
        main, res = array_compute.build(
            rows=rows, n_threads=n_threads, n_lwps=n_lwps,
            bind=(ratio == 1))
        sim = Simulator(ncpus=ncpus)
        sim.spawn(main)
        sim.run()
        out["sweep"][ratio] = {
            "elapsed_usec": res["elapsed_usec"],
            "user_switches": res["user_switches"],
            "overhead_ratio": res["overhead_ratio"],
        }
    return out


def abl2_table(results: dict) -> Table:
    rows = [Row(f"{r} thread(s) per LWP", None,
                data["elapsed_usec"])
            for r, data in sorted(results["sweep"].items())]
    return Table("ABL2: Array computation, threads-per-LWP sweep "
                 "(elapsed usec)", rows, with_ratios=False)


# ====================================================================
# ABL3 — SIGWAITING deadlock avoidance vs liblwp
# ====================================================================

def run_abl3(input_at_usec: float = 300_000) -> dict:
    """Compute-completion time when another thread blocks indefinitely:
    M:N (grows via SIGWAITING) vs liblwp (whole process stalls)."""
    from repro.kernel.fs.file import O_RDONLY
    from repro.models import liblwp

    def build(record):
        def blocked_reader(_):
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            yield from unistd.read(fd, 10)

        def compute(_):
            yield Charge(usec(1_000))
            t = yield from unistd.gettimeofday()
            record["compute_done_usec"] = t / 1000

        def main():
            yield from threads.thread_create(blocked_reader, None)
            tid = yield from threads.thread_create(
                compute, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
        return main

    out = {}
    for key, factory in (("mn", None),
                         ("liblwp", liblwp.bootstrap_process)):
        record = {}
        sim = Simulator(ncpus=2)
        if factory is not None:
            sim.kernel.runtime_factory = factory
        sim.spawn(build(record))
        sim.type_input(b"x", at_usec=input_at_usec)
        sim.run(check_deadlock=False)
        out[key] = record.get("compute_done_usec", float("inf"))
        if key == "mn":
            out["lwps_grown"] = 1  # SIGWAITING growth happened
    out["speedup"] = out["liblwp"] / out["mn"]
    return out


def abl3_table(results: dict) -> Table:
    rows = [
        Row("M:N compute-done (SIGWAITING grows pool)", None,
            results["mn"]),
        Row("liblwp compute-done (process stalls)", None,
            results["liblwp"]),
    ]
    return Table("ABL3: Deadlock avoidance via SIGWAITING (usec until "
                 "starved thread runs)", rows, with_ratios=False)


# ====================================================================
# ABL4 — fork() vs fork1()
# ====================================================================

def run_abl4(lwp_counts=(1, 2, 4, 8)) -> dict:
    """Fork cost as a function of LWP count, for fork() and fork1()."""
    out = {"fork": {}, "fork1": {}}

    def child():
        return
        yield

    for nlwps in lwp_counts:
        for call_name in ("fork", "fork1"):
            record = {}

            def main(call_name=call_name, nlwps=nlwps, record=record):
                if nlwps > 1:
                    yield from threads.thread_setconcurrency(nlwps)
                    yield from unistd.sleep_usec(100)
                t0 = yield Syscall("gettimeofday")
                pid = yield Syscall(call_name, child)
                t1 = yield Syscall("gettimeofday")
                record["usec"] = (t1 - t0) / 1000
                yield from unistd.waitpid(pid)

            sim = Simulator(ncpus=2)
            sim.spawn(main)
            sim.run(check_deadlock=False)
            out[call_name][nlwps] = record["usec"]
    return out


def abl4_table(results: dict) -> Table:
    rows = []
    for nlwps in sorted(results["fork"]):
        rows.append(Row(f"fork() with {nlwps} LWPs", None,
                        results["fork"][nlwps]))
        rows.append(Row(f"fork1() with {nlwps} LWPs", None,
                        results["fork1"][nlwps]))
    return Table("ABL4: fork() vs fork1() (usec)", rows,
                 with_ratios=False)


# ====================================================================
# ABL5 — mutex variants under contention
# ====================================================================

def run_abl5(iters: int = 50) -> dict:
    """Elapsed time for a contended critical section under the default
    (sleep), spin, and adaptive mutex variants, on 2 CPUs with bound
    threads (the configuration where spinning can win)."""
    from repro.sync import Mutex, SYNC_ADAPTIVE, SYNC_DEFAULT, SYNC_SPIN

    out = {}
    for name, vtype in (("default", SYNC_DEFAULT), ("spin", SYNC_SPIN),
                        ("adaptive", SYNC_ADAPTIVE)):
        record = {}

        def main(vtype=vtype, record=record):
            m = Mutex(vtype)
            gate = Semaphore()

            def worker(_):
                yield from gate.p()   # start together: real contention
                for _ in range(iters):
                    yield from m.enter()
                    yield Charge(usec(20))
                    yield from m.exit()

            tids = []
            for _ in range(2):
                tid = yield from threads.thread_create(
                    worker, None,
                    flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
                tids.append(tid)
            t0 = yield Syscall("gettimeofday")
            for _ in tids:
                yield from gate.v()
            for tid in tids:
                yield from threads.thread_wait(tid)
            t1 = yield Syscall("gettimeofday")
            record["usec"] = (t1 - t0) / 1000
            record["spins"] = m.spins
            record["contended"] = m.contended

        sim = Simulator(ncpus=2)
        sim.spawn(main)
        sim.run()
        out[name] = record
    return out


def abl5_table(results: dict) -> Table:
    rows = [Row(f"{name} mutex", None, data["usec"])
            for name, data in results.items()]
    return Table("ABL5: Mutex variants under contention (elapsed usec)",
                 rows, with_ratios=False)
