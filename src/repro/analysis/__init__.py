"""Experiment analysis: tables, ratios, statistics, trace tooling."""

from repro.analysis.metrics import (mean, percentile, speedup, stdev,
                                    summarize)
from repro.analysis.report import Row, Table, format_dict
from repro.analysis import tracetools

__all__ = ["mean", "percentile", "speedup", "stdev", "summarize",
           "Row", "Table", "format_dict", "tracetools"]
