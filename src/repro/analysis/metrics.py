"""Small statistics helpers for experiment outputs."""

from __future__ import annotations

import math
from typing import Sequence


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(xs) / len(xs) if xs else 0.0


def stdev(xs: Sequence[float]) -> float:
    """Population standard deviation; 0.0 below two samples."""
    if len(xs) < 2:
        return 0.0
    mu = mean(xs)
    return math.sqrt(sum((x - mu) ** 2 for x in xs) / len(xs))


def percentile(xs: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100])."""
    if not xs:
        return 0.0
    ordered = sorted(xs)
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(p / 100.0 * len(ordered))) - 1))
    return ordered[rank]


def summarize(xs: Sequence[float]) -> dict:
    """Mean/stdev/min/median/p99/max in one dict."""
    return {
        "n": len(xs),
        "mean": mean(xs),
        "stdev": stdev(xs),
        "min": min(xs) if xs else 0.0,
        "p50": percentile(xs, 50),
        "p99": percentile(xs, 99),
        "max": max(xs) if xs else 0.0,
    }


def speedup(baseline: float, improved: float) -> float:
    """baseline / improved; inf-safe."""
    if improved == 0:
        return float("inf")
    return baseline / improved
