"""Small statistics helpers for experiment outputs.

Also the single home of percentile math: :mod:`repro.obs` histograms
summarize through :func:`percentile_weighted` rather than duplicating
nearest-rank logic.
"""

from __future__ import annotations

import math
from typing import Sequence


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(xs) / len(xs) if xs else 0.0


def stdev(xs: Sequence[float]) -> float:
    """Population standard deviation; 0.0 below two samples."""
    if len(xs) < 2:
        return 0.0
    mu = mean(xs)
    return math.sqrt(sum((x - mu) ** 2 for x in xs) / len(xs))


def percentile(xs: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p clamped to [0, 100]).

    ``p <= 0`` returns the minimum, ``p >= 100`` the maximum, empty input
    0.0.  The rank is ``ceil(p * n / 100)`` computed multiply-first:
    ``ceil(p / 100 * n)`` suffers float error (99/100*100 ceils to 100,
    silently promoting p99 of 100 samples to the maximum).
    """
    if not xs:
        return 0.0
    ordered = sorted(xs)
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = int(math.ceil(p * len(ordered) / 100.0))
    return ordered[max(0, min(len(ordered) - 1, rank - 1))]


def percentile_weighted(pairs: Sequence[tuple], p: float) -> float:
    """Nearest-rank percentile over ``(value, count)`` pairs.

    Equivalent to :func:`percentile` over the expanded multiset, without
    materializing it — :class:`repro.obs.registry.Histogram` summaries
    call this with one pair per occupied bucket.  Pairs need not be
    sorted; counts <= 0 are ignored; empty input returns 0.0.
    """
    items = sorted((v, c) for v, c in pairs if c > 0)
    if not items:
        return 0.0
    total = sum(c for _, c in items)
    if p <= 0:
        return items[0][0]
    if p >= 100:
        return items[-1][0]
    rank = max(1, int(math.ceil(p * total / 100.0)))
    seen = 0
    for value, count in items:
        seen += count
        if seen >= rank:
            return value
    return items[-1][0]


def summarize(xs: Sequence[float]) -> dict:
    """Mean/stdev/min/median/p99/max in one dict."""
    return {
        "n": len(xs),
        "mean": mean(xs),
        "stdev": stdev(xs),
        "min": min(xs) if xs else 0.0,
        "p50": percentile(xs, 50),
        "p99": percentile(xs, 99),
        "max": max(xs) if xs else 0.0,
    }


def speedup(baseline: float, improved: float) -> float:
    """baseline / improved; inf-safe."""
    if improved == 0:
        return float("inf")
    return baseline / improved
