"""Trace post-processing: timelines and schedules from trace records.

Turn a :class:`~repro.sim.trace.Tracer`'s records into per-LWP execution
intervals, per-thread switch histories, syscall latency summaries, and a
text Gantt chart — the observability layer a systems researcher wants on
top of the raw event stream.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Optional

from repro.analysis.metrics import summarize
from repro.sim.trace import Tracer

#: Categories this module consumes; pass to ``Tracer(categories=...)`` (or
#: trace everything).
CATEGORIES = ("sched", "syscall", "thread")


@dataclasses.dataclass(frozen=True)
class Interval:
    """A half-open [start, end) occupancy of a CPU by an LWP."""

    subject: str
    cpu: str
    start_ns: int
    end_ns: Optional[int]  # None: still running at trace end

    @property
    def duration_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns


def lwp_intervals(tracer: Tracer) -> list[Interval]:
    """Reconstruct CPU occupancy intervals from dispatch/block traces.

    An interval opens at ``sched/dispatch`` and closes at the subject's
    next ``sched/block``, the next dispatch of *another* LWP onto the same
    CPU (preemption), or trace end.
    """
    open_by_cpu: dict[str, tuple[str, int]] = {}
    intervals: list[Interval] = []

    def close(cpu: str, end_ns: int) -> None:
        started = open_by_cpu.pop(cpu, None)
        if started is not None:
            subject, start = started
            intervals.append(Interval(subject, cpu, start, end_ns))

    lwp_cpu: dict[str, str] = {}
    for rec in tracer.records:
        if rec.category != "sched":
            continue
        if rec.event == "dispatch":
            cpu = rec.detail.get("cpu", "cpu-?")
            close(cpu, rec.time_ns)
            open_by_cpu[cpu] = (rec.subject, rec.time_ns)
            lwp_cpu[rec.subject] = cpu
        elif rec.event == "block":
            cpu = lwp_cpu.get(rec.subject)
            if cpu is not None and open_by_cpu.get(cpu, ("",))[0] == \
                    rec.subject:
                close(cpu, rec.time_ns)
    for cpu, (subject, start) in list(open_by_cpu.items()):
        intervals.append(Interval(subject, cpu, start, None))
    return intervals


def busy_ns_by_lwp(tracer: Tracer, until_ns: Optional[int] = None) -> dict:
    """Total on-CPU nanoseconds per LWP (open intervals clipped)."""
    out: dict[str, int] = defaultdict(int)
    for iv in lwp_intervals(tracer):
        end = iv.end_ns if iv.end_ns is not None else until_ns
        if end is None:
            continue
        out[iv.subject] += max(0, end - iv.start_ns)
    return dict(out)


def syscall_latencies(tracer: Tracer) -> dict:
    """Per-syscall latency summaries from enter/exit (or error) pairs.

    Nested pairs per LWP are matched with a stack, so syscalls made from
    signal handlers running above an interrupted call pair correctly.
    """
    stacks: dict[str, list[tuple[str, int]]] = defaultdict(list)
    samples: dict[str, list[float]] = defaultdict(list)
    for rec in tracer.records:
        if rec.category != "syscall":
            continue
        if rec.event == "enter":
            stacks[rec.subject].append((rec.detail["call"], rec.time_ns))
        elif rec.event in ("exit", "error"):
            stack = stacks[rec.subject]
            if stack:
                name, start = stack.pop()
                samples[name].append(rec.time_ns - start)
    return {name: summarize(vals) for name, vals in samples.items()}


def thread_switches(tracer: Tracer) -> list[tuple[int, str, str, str]]:
    """User-level context switches: (time, lwp, from, to)."""
    return [(r.time_ns, r.subject, r.detail.get("frm", "?"),
             r.detail.get("to", "?"))
            for r in tracer.records
            if r.category == "thread" and r.event == "switch"]


def gantt(tracer: Tracer, width: int = 72,
          until_ns: Optional[int] = None) -> str:
    """Render per-CPU occupancy as a text Gantt chart."""
    intervals = lwp_intervals(tracer)
    if not intervals:
        return "(no dispatch records)"
    t0 = min(iv.start_ns for iv in intervals)
    t1 = until_ns if until_ns is not None else max(
        (iv.end_ns or iv.start_ns) for iv in intervals)
    span = max(t1 - t0, 1)
    by_cpu: dict[str, list[Interval]] = defaultdict(list)
    for iv in intervals:
        by_cpu[iv.cpu].append(iv)

    # Stable one-letter codes per LWP.
    subjects = sorted({iv.subject for iv in intervals})
    letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    code = {s: letters[i % len(letters)] for i, s in enumerate(subjects)}

    lines = [f"t0={t0 / 1000:.0f}us  span={span / 1000:.0f}us   "
             + "  ".join(f"{code[s]}={s}" for s in subjects)]
    for cpu in sorted(by_cpu):
        row = ["."] * width
        for iv in by_cpu[cpu]:
            start = int((iv.start_ns - t0) / span * width)
            end_ns = iv.end_ns if iv.end_ns is not None else t1
            end = max(start + 1, int((end_ns - t0) / span * width))
            for x in range(start, min(end, width)):
                row[x] = code[iv.subject]
        lines.append(f"{cpu:8s} {''.join(row)}")
    return "\n".join(lines)
