"""Experiment reporting: paper-vs-measured tables.

The benchmark harness uses these helpers to print the same rows the paper
reports (Figures 5 and 6) next to our measured values, with deviation and
the ratio columns the paper itself includes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence


@dataclasses.dataclass
class Row:
    """One table row: a named quantity, the paper's value, and ours."""

    label: str
    paper: Optional[float]
    measured: float
    unit: str = "usec"

    @property
    def deviation(self) -> Optional[float]:
        """Relative deviation from the paper's value (None if no paper
        value exists for this row)."""
        if self.paper is None or self.paper == 0:
            return None
        return (self.measured - self.paper) / self.paper


class Table:
    """A paper-style results table with optional ratio column.

    The paper's Figures 5/6 include a "ratio" column giving each row's
    value over the previous row's; ``with_ratios`` reproduces it for both
    the paper and measured columns.
    """

    def __init__(self, title: str, rows: Sequence[Row],
                 with_ratios: bool = True):
        self.title = title
        self.rows = list(rows)
        self.with_ratios = with_ratios

    def render(self) -> str:
        header = [self.title, "=" * len(self.title)]
        cols = f"{'':32s} {'paper':>10s} {'measured':>10s} {'dev%':>7s}"
        if self.with_ratios:
            cols += f" {'p.ratio':>8s} {'m.ratio':>8s}"
        lines = header + [cols]
        prev_paper = prev_meas = None
        for row in self.rows:
            paper = f"{row.paper:10.1f}" if row.paper is not None else (
                " " * 10)
            dev = row.deviation
            dev_s = f"{dev * 100:6.1f}%" if dev is not None else "      -"
            line = f"{row.label:32s} {paper} {row.measured:10.1f} {dev_s}"
            if self.with_ratios:
                pr = (f"{row.paper / prev_paper:8.2f}"
                      if row.paper and prev_paper else " " * 8)
                mr = (f"{row.measured / prev_meas:8.2f}"
                      if prev_meas else " " * 8)
                line += f" {pr} {mr}"
            lines.append(line)
            prev_paper, prev_meas = row.paper, row.measured
        return "\n".join(lines)

    def max_deviation(self) -> float:
        """Largest |relative deviation| across rows with paper values."""
        devs = [abs(r.deviation) for r in self.rows
                if r.deviation is not None]
        return max(devs) if devs else 0.0

    def shape_holds(self, tolerance: float = 0.5) -> bool:
        """Reproduction criterion: every paper-valued row is within
        ``tolerance`` relative deviation AND the ordering of rows by
        magnitude matches the paper's ordering."""
        if self.max_deviation() > tolerance:
            return False
        paper_rows = [(r.paper, r.measured) for r in self.rows
                      if r.paper is not None]
        paper_order = sorted(range(len(paper_rows)),
                             key=lambda i: paper_rows[i][0])
        meas_order = sorted(range(len(paper_rows)),
                            key=lambda i: paper_rows[i][1])
        return paper_order == meas_order


def format_dict(title: str, data: dict) -> str:
    """Simple aligned key/value rendering for ad-hoc results."""
    width = max((len(str(k)) for k in data), default=0)
    lines = [title, "-" * len(title)]
    for key, value in data.items():
        if isinstance(value, float):
            value = f"{value:,.2f}"
        lines.append(f"{str(key):{width}s}  {value}")
    return "\n".join(lines)
