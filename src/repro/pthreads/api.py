"""pthread thread management, layered on the Figure 4 interfaces."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ThreadError
from repro import threads

#: Return value of a cancelled thread (cancellation itself is modeled as
#: cooperative pthread_exit, matching the paper's Mach-IPC critique that
#: forced interruption needs signals).
PTHREAD_CANCELED = object()

PTHREAD_CREATE_JOINABLE = 0
PTHREAD_CREATE_DETACHED = 1

#: Contention scope: SYSTEM = bound to its own LWP (kernel-scheduled),
#: PROCESS = unbound (library-scheduled).  The pthreads draft's two-level
#: scheduling maps exactly onto the paper's bound/unbound distinction.
PTHREAD_SCOPE_PROCESS = 0
PTHREAD_SCOPE_SYSTEM = 1

PTHREAD_PROCESS_PRIVATE = 0
PTHREAD_PROCESS_SHARED = 1


class PthreadAttr:
    """pthread_attr_t: creation attributes."""

    def __init__(self, detachstate: int = PTHREAD_CREATE_JOINABLE,
                 scope: int = PTHREAD_SCOPE_PROCESS,
                 stacksize: int = 0,
                 stackaddr: Optional[int] = None,
                 priority: Optional[int] = None):
        self.detachstate = detachstate
        self.scope = scope
        self.stacksize = stacksize
        self.stackaddr = stackaddr
        self.priority = priority


class Pthread:
    """pthread_t: the handle pthread_create returns."""

    def __init__(self, tid: int, detached: bool):
        self.tid = tid
        self.detached = detached
        self.retval: Any = None
        self.finished = False

    def __repr__(self) -> str:
        state = "detached" if self.detached else "joinable"
        return f"<Pthread {self.tid} {state}>"


class _PthreadExit(Exception):
    """Internal: unwinds a pthread body on pthread_exit(value)."""

    def __init__(self, value: Any):
        self.value = value


def pthread_create(start_routine: Callable, arg: Any = None,
                   attr: Optional[PthreadAttr] = None):
    """Generator: create a pthread running ``start_routine(arg)``.

    Returns the :class:`Pthread` handle.  Scope SYSTEM creates a bound
    thread (its own LWP); scope PROCESS an unbound one.
    """
    attr = attr or PthreadAttr()
    detached = attr.detachstate == PTHREAD_CREATE_DETACHED
    handle_box: dict = {}

    def body(_arg):
        handle = handle_box["handle"]
        try:
            result = yield from _as_gen(start_routine, arg)
        except _PthreadExit as stop:
            result = stop.value
        handle.retval = result
        handle.finished = True

    flags = 0 if detached else threads.THREAD_WAIT
    if attr.scope == PTHREAD_SCOPE_SYSTEM:
        flags |= threads.THREAD_BIND_LWP
    tid = yield from threads.thread_create(
        body, None, flags=flags,
        stack_addr=attr.stackaddr, stack_size=attr.stacksize)
    handle = Pthread(tid, detached)
    handle_box["handle"] = handle
    if attr.priority is not None:
        yield from threads.thread_priority(tid, attr.priority)
    return handle


def _as_gen(fn, arg):
    from repro.hw.context import as_generator
    result = yield from as_generator(fn, arg)
    return result


def pthread_join(thread: Pthread):
    """Generator: wait for ``thread``; returns its return value."""
    if thread.detached:
        raise ThreadError("pthread_join of a detached thread")
    yield from threads.thread_wait(thread.tid)
    return thread.retval


def pthread_detach(thread: Pthread):
    """Generator: give up join rights; resources recycle at exit.

    Implemented the way a threads-library would: a tiny reaper thread
    performs the thread_wait, so the THREAD_WAIT id is recycled without
    anyone blocking for it.  (A detached-at-creation pthread skips even
    that: it is created without THREAD_WAIT.)
    """
    if thread.detached:
        return
    thread.detached = True

    def reaper(_):
        yield from threads.thread_wait(thread.tid)

    yield from threads.thread_create(reaper, None)


def pthread_exit(value: Any = None):
    """Terminate the calling pthread with ``value`` for its joiner.

    Never returns (raises through the body wrapper).
    """
    raise _PthreadExit(value)
    yield  # pragma: no cover - keeps this a generator function


def pthread_self():
    """Generator: the calling thread's id (pthread_t comparison key)."""
    tid = yield from threads.thread_get_id()
    return tid


def pthread_equal(a, b) -> bool:
    """Compare two pthread identities (handles or raw ids)."""
    ta = a.tid if isinstance(a, Pthread) else a
    tb = b.tid if isinstance(b, Pthread) else b
    return ta == tb


def pthread_yield():
    """Generator: sched_yield for threads."""
    yield from threads.thread_yield()


class _OnceControl:
    __slots__ = ("done", "mutex")

    def __init__(self):
        from repro.sync import Mutex
        self.done = False
        self.mutex = Mutex(name="pthread_once")


def pthread_once_init() -> _OnceControl:
    """PTHREAD_ONCE_INIT equivalent."""
    return _OnceControl()


def pthread_once(once: _OnceControl, init_routine: Callable):
    """Generator: run ``init_routine`` exactly once across all threads."""
    if once.done:  # fast path, no lock
        return
    yield from once.mutex.enter()
    try:
        if not once.done:
            yield from _as_gen(lambda _: init_routine(), None)
            once.done = True
    finally:
        yield from once.mutex.exit()
