"""pthread mutexes and condition variables over the SunOS primitives.

The process-shared attribute (missing from the draft standard's
interaction with mapped files, the paper notes) maps directly onto
``THREAD_SYNC_SHARED`` + a cell in shared memory.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import Errno, SyncError
from repro.hw.isa import GetContext
from repro.pthreads.api import (PTHREAD_PROCESS_PRIVATE,
                                PTHREAD_PROCESS_SHARED)
from repro.sync import (CondVar, Mutex, SYNC_DEBUG, THREAD_SYNC_SHARED,
                        SharedCell)

#: Mutex kinds (errorcheck layers on the paper's "extra debugging"
#: variant).
PTHREAD_MUTEX_NORMAL = 0
PTHREAD_MUTEX_ERRORCHECK = 1


class PthreadMutexAttr:
    """pthread_mutexattr_t."""

    def __init__(self, pshared: int = PTHREAD_PROCESS_PRIVATE,
                 kind: int = PTHREAD_MUTEX_NORMAL,
                 cell: Optional[SharedCell] = None):
        if pshared == PTHREAD_PROCESS_SHARED and cell is None:
            raise SyncError(
                "PTHREAD_PROCESS_SHARED needs a cell in shared memory")
        self.pshared = pshared
        self.kind = kind
        self.cell = cell

    def _vtype(self) -> int:
        vtype = 0
        if self.pshared == PTHREAD_PROCESS_SHARED:
            vtype |= THREAD_SYNC_SHARED
        if self.kind == PTHREAD_MUTEX_ERRORCHECK:
            vtype |= SYNC_DEBUG
        return vtype


class PthreadMutex:
    """pthread_mutex_t, backed by a SunOS mutex."""

    def __init__(self, attr: Optional[PthreadMutexAttr] = None,
                 name: str = ""):
        attr = attr or PthreadMutexAttr()
        self._impl = Mutex(attr._vtype(), cell=attr.cell, name=name)
        self.attr = attr

    def lock(self):
        if (self.attr.kind == PTHREAD_MUTEX_ERRORCHECK
                and not self._impl.is_shared):
            # POSIX errorcheck semantics: a relock by the owner returns
            # EDEADLK instead of deadlocking (the paper's SYNC_DEBUG
            # variant raises; pthreads report the errno).  Shared mutexes
            # keep no cross-process owner identity, so no check there.
            ctx = yield GetContext()
            if self._impl.owner is not None and self._impl.owner is ctx.thread:
                return Errno.EDEADLK
        result = yield from self._impl.enter()
        return 0 if result is None else result

    def trylock(self):
        result = yield from self._impl.tryenter()
        return result

    def timedlock(self, timeout_usec: float):
        """pthread_mutex_timedlock: 0 on acquire, ETIMEDOUT on timeout."""
        if (self.attr.kind == PTHREAD_MUTEX_ERRORCHECK
                and not self._impl.is_shared):
            ctx = yield GetContext()
            if (self._impl.owner is not None
                    and self._impl.owner is ctx.thread):
                return Errno.EDEADLK
        acquired = yield from self._impl.timedenter(timeout_usec)
        return 0 if acquired else Errno.ETIMEDOUT

    def unlock(self):
        yield from self._impl.exit()

    @property
    def impl(self) -> Mutex:
        return self._impl


class PthreadCondAttr:
    """pthread_condattr_t."""

    def __init__(self, pshared: int = PTHREAD_PROCESS_PRIVATE,
                 cell: Optional[SharedCell] = None):
        if pshared == PTHREAD_PROCESS_SHARED and cell is None:
            raise SyncError(
                "PTHREAD_PROCESS_SHARED needs a cell in shared memory")
        self.pshared = pshared
        self.cell = cell

    def _vtype(self) -> int:
        return (THREAD_SYNC_SHARED
                if self.pshared == PTHREAD_PROCESS_SHARED else 0)


class PthreadCond:
    """pthread_cond_t, backed by a SunOS condition variable."""

    def __init__(self, attr: Optional[PthreadCondAttr] = None,
                 name: str = ""):
        attr = attr or PthreadCondAttr()
        self._impl = CondVar(attr._vtype(), cell=attr.cell, name=name)
        self.attr = attr

    def wait(self, mutex: PthreadMutex):
        yield from self._impl.wait(mutex.impl)

    def signal(self):
        yield from self._impl.signal()

    def broadcast(self):
        yield from self._impl.broadcast()


# --------------------------------------------------------------------
# POSIX-style free functions.
# --------------------------------------------------------------------

def pthread_mutex_lock(mutex: PthreadMutex):
    result = yield from mutex.lock()
    return result


def pthread_mutex_trylock(mutex: PthreadMutex):
    result = yield from mutex.trylock()
    return result


def pthread_mutex_timedlock(mutex: PthreadMutex, timeout_usec: float):
    result = yield from mutex.timedlock(timeout_usec)
    return result


def pthread_mutex_unlock(mutex: PthreadMutex):
    yield from mutex.unlock()


def pthread_cond_wait(cond: PthreadCond, mutex: PthreadMutex):
    yield from cond.wait(mutex)


def pthread_cond_signal(cond: PthreadCond):
    yield from cond.signal()


def pthread_cond_broadcast(cond: PthreadCond):
    yield from cond.broadcast()
