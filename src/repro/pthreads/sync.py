"""pthread mutexes and condition variables over the SunOS primitives.

The process-shared attribute (missing from the draft standard's
interaction with mapped files, the paper notes) maps directly onto
``THREAD_SYNC_SHARED`` + a cell in shared memory.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import Errno, SyncError, SyscallError
from repro.hw.isa import GetContext
from repro.pthreads.api import (PTHREAD_PROCESS_PRIVATE,
                                PTHREAD_PROCESS_SHARED)
from repro.sync import (CondVar, Mutex, SYNC_DEBUG, THREAD_SYNC_SHARED,
                        SharedCell)

#: Mutex kinds (errorcheck layers on the paper's "extra debugging"
#: variant).
PTHREAD_MUTEX_NORMAL = 0
PTHREAD_MUTEX_ERRORCHECK = 1

#: Robustness attribute (pthread_mutexattr_setrobust).  The underlying
#: SunOS mutex is always reclaimed by the kernel when its holder's LWP
#: dies; the attribute only controls whether the *caller* is told.  A
#: robust mutex surfaces ``EOWNERDEAD`` from the acquire and expects
#: ``pthread_mutex_consistent`` before unlock (else the lock bricks to
#: ``ENOTRECOVERABLE``); a stalled (default) mutex repairs silently so
#: legacy callers never see an errno they predate.
PTHREAD_MUTEX_STALLED = 0
PTHREAD_MUTEX_ROBUST = 1


class PthreadMutexAttr:
    """pthread_mutexattr_t."""

    def __init__(self, pshared: int = PTHREAD_PROCESS_PRIVATE,
                 kind: int = PTHREAD_MUTEX_NORMAL,
                 cell: Optional[SharedCell] = None,
                 robust: int = PTHREAD_MUTEX_STALLED):
        if pshared == PTHREAD_PROCESS_SHARED and cell is None:
            raise SyncError(
                "PTHREAD_PROCESS_SHARED needs a cell in shared memory")
        if robust == PTHREAD_MUTEX_ROBUST \
                and pshared == PTHREAD_PROCESS_SHARED:
            # The futex-cell variant keeps no owner identity for the
            # kernel to reclaim — same simplification as the crash walk.
            raise SyncError(
                "PTHREAD_MUTEX_ROBUST is not supported for "
                "PTHREAD_PROCESS_SHARED mutexes (no cross-process "
                "owner identity to reclaim)")
        self.pshared = pshared
        self.kind = kind
        self.cell = cell
        self.robust = robust

    def _vtype(self) -> int:
        vtype = 0
        if self.pshared == PTHREAD_PROCESS_SHARED:
            vtype |= THREAD_SYNC_SHARED
        if self.kind == PTHREAD_MUTEX_ERRORCHECK:
            vtype |= SYNC_DEBUG
        return vtype


class PthreadMutex:
    """pthread_mutex_t, backed by a SunOS mutex."""

    def __init__(self, attr: Optional[PthreadMutexAttr] = None,
                 name: str = ""):
        attr = attr or PthreadMutexAttr()
        self._impl = Mutex(attr._vtype(), cell=attr.cell, name=name)
        self.attr = attr

    def _owner_dead_result(self):
        """Map the primitive's EOWNERDEAD to this mutex's robustness."""
        if self.attr.robust == PTHREAD_MUTEX_ROBUST:
            return Errno.EOWNERDEAD
        # Stalled (default): the kernel reclaimed the lock either way;
        # repair silently so the acquire reports plain success.
        self._impl.consistent()
        return 0

    def lock(self):
        """pthread_mutex_lock: 0, EDEADLK (errorcheck), EOWNERDEAD
        (robust, previous holder crashed), or ENOTRECOVERABLE."""
        if (self.attr.kind == PTHREAD_MUTEX_ERRORCHECK
                and not self._impl.is_shared):
            # POSIX errorcheck semantics: a relock by the owner returns
            # EDEADLK instead of deadlocking (the paper's SYNC_DEBUG
            # variant raises; pthreads report the errno).  Shared mutexes
            # keep no cross-process owner identity, so no check there.
            ctx = yield GetContext()
            if self._impl.owner is not None and self._impl.owner is ctx.thread:
                return Errno.EDEADLK
        try:
            result = yield from self._impl.enter()
        except SyscallError as err:
            if err.errno == Errno.ENOTRECOVERABLE:
                return Errno.ENOTRECOVERABLE
            raise
        if result is Errno.EOWNERDEAD:
            return self._owner_dead_result()
        return 0 if result is None else result

    def trylock(self):
        """pthread_mutex_trylock: truthy on acquire (True, or
        EOWNERDEAD for a robust mutex whose holder crashed), False when
        busy; ENOTRECOVERABLE as an errno return on a bricked robust
        mutex."""
        try:
            result = yield from self._impl.tryenter()
        except SyscallError as err:
            if (err.errno == Errno.ENOTRECOVERABLE
                    and self.attr.robust == PTHREAD_MUTEX_ROBUST):
                return Errno.ENOTRECOVERABLE
            raise
        if result is Errno.EOWNERDEAD:
            mapped = self._owner_dead_result()
            return True if mapped == 0 else mapped
        return result

    def timedlock(self, timeout_usec: float):
        """pthread_mutex_timedlock: 0 on acquire, ETIMEDOUT on timeout,
        EOWNERDEAD/ENOTRECOVERABLE per the robust protocol."""
        if (self.attr.kind == PTHREAD_MUTEX_ERRORCHECK
                and not self._impl.is_shared):
            ctx = yield GetContext()
            if (self._impl.owner is not None
                    and self._impl.owner is ctx.thread):
                return Errno.EDEADLK
        try:
            acquired = yield from self._impl.timedenter(timeout_usec)
        except SyscallError as err:
            if err.errno == Errno.ENOTRECOVERABLE:
                return Errno.ENOTRECOVERABLE
            raise
        if acquired is Errno.EOWNERDEAD:
            return self._owner_dead_result()
        return 0 if acquired else Errno.ETIMEDOUT

    def unlock(self):
        yield from self._impl.exit()

    def consistent(self) -> int:
        """pthread_mutex_consistent (plain call, no yields): 0, or
        EINVAL when the mutex is not robust or not owner-dead."""
        if self.attr.robust != PTHREAD_MUTEX_ROBUST:
            return Errno.EINVAL
        return self._impl.consistent()

    @property
    def impl(self) -> Mutex:
        return self._impl


class PthreadCondAttr:
    """pthread_condattr_t."""

    def __init__(self, pshared: int = PTHREAD_PROCESS_PRIVATE,
                 cell: Optional[SharedCell] = None):
        if pshared == PTHREAD_PROCESS_SHARED and cell is None:
            raise SyncError(
                "PTHREAD_PROCESS_SHARED needs a cell in shared memory")
        self.pshared = pshared
        self.cell = cell

    def _vtype(self) -> int:
        return (THREAD_SYNC_SHARED
                if self.pshared == PTHREAD_PROCESS_SHARED else 0)


class PthreadCond:
    """pthread_cond_t, backed by a SunOS condition variable."""

    def __init__(self, attr: Optional[PthreadCondAttr] = None,
                 name: str = ""):
        attr = attr or PthreadCondAttr()
        self._impl = CondVar(attr._vtype(), cell=attr.cell, name=name)
        self.attr = attr

    def wait(self, mutex: PthreadMutex):
        yield from self._impl.wait(mutex.impl)

    def signal(self):
        yield from self._impl.signal()

    def broadcast(self):
        yield from self._impl.broadcast()


# --------------------------------------------------------------------
# POSIX-style free functions.
# --------------------------------------------------------------------

def pthread_mutex_lock(mutex: PthreadMutex):
    result = yield from mutex.lock()
    return result


def pthread_mutex_trylock(mutex: PthreadMutex):
    result = yield from mutex.trylock()
    return result


def pthread_mutex_timedlock(mutex: PthreadMutex, timeout_usec: float):
    result = yield from mutex.timedlock(timeout_usec)
    return result


def pthread_mutex_unlock(mutex: PthreadMutex):
    yield from mutex.unlock()


def pthread_mutex_consistent(mutex: PthreadMutex) -> int:
    """Plain call (no yields): mark the protected state repaired after
    an ``EOWNERDEAD`` acquire of a robust mutex."""
    return mutex.consistent()


def pthread_cond_wait(cond: PthreadCond, mutex: PthreadMutex):
    yield from cond.wait(mutex)


def pthread_cond_signal(cond: PthreadCond):
    yield from cond.signal()


def pthread_cond_broadcast(cond: PthreadCond):
    yield from cond.broadcast()
