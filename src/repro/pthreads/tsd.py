"""pthread thread-specific data, layered on TLS.

"More dynamic mechanisms (such as POSIX thread-specific data) can be
built using thread-local storage" — these are direct wrappers over the
library's TSD-on-TLS machinery.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro import threads


def pthread_key_create(destructor: Optional[Callable] = None):
    """Generator: create a TSD key; destructor runs at thread exit."""
    key = yield from threads.tsd_key_create(destructor)
    return key


def pthread_key_delete(key: int):
    """Generator: delete a TSD key (no destructors run)."""
    from repro.hw.isa import GetContext
    ctx = yield GetContext()
    ctx.process.threadlib.tsd.key_delete(key)


def pthread_setspecific(key: int, value: Any):
    """Generator: bind ``value`` to ``key`` for the calling thread."""
    yield from threads.tsd_set(key, value)


def pthread_getspecific(key: int):
    """Generator: the calling thread's value for ``key`` (None unset)."""
    value = yield from threads.tsd_get(key)
    return value
