"""POSIX P1003.4a-style pthreads, implemented over SunOS threads.

The paper's summary claims: "A minimalist translation of the UNIX
environment to threads allows higher-level interfaces such as POSIX
Pthreads to be implemented on top of SunOS threads."  This package is
that layering, exercised for real: every pthread facility here is built
from the Figure 4 primitives (`thread_create`, `thread_wait`, mutexes,
condition variables, TLS) with no new kernel or library mechanisms.

Deliberately pre-Draft-10-flavoured where the paper notes differences:
thread-specific data is layered on TLS, the process-shared attribute maps
to THREAD_SYNC_SHARED, and scheduling scope maps to the bound/unbound
distinction (PTHREAD_SCOPE_SYSTEM = a bound thread).
"""

from repro.pthreads.api import (PTHREAD_CANCELED, PTHREAD_PROCESS_PRIVATE,
                                PTHREAD_PROCESS_SHARED,
                                PTHREAD_SCOPE_PROCESS,
                                PTHREAD_SCOPE_SYSTEM, Pthread,
                                PthreadAttr, pthread_create,
                                pthread_detach, pthread_equal,
                                pthread_exit, pthread_join, pthread_once,
                                pthread_self, pthread_yield)
from repro.pthreads.sync import (PTHREAD_MUTEX_ERRORCHECK,
                                 PTHREAD_MUTEX_NORMAL,
                                 PTHREAD_MUTEX_ROBUST,
                                 PTHREAD_MUTEX_STALLED, PthreadCond,
                                 PthreadCondAttr, PthreadMutex,
                                 PthreadMutexAttr,
                                 pthread_mutex_consistent)
from repro.pthreads.tsd import (pthread_getspecific, pthread_key_create,
                                pthread_key_delete, pthread_setspecific)

__all__ = [
    "PTHREAD_CANCELED", "PTHREAD_PROCESS_PRIVATE",
    "PTHREAD_PROCESS_SHARED", "PTHREAD_SCOPE_PROCESS",
    "PTHREAD_SCOPE_SYSTEM", "Pthread", "PthreadAttr",
    "pthread_create", "pthread_detach", "pthread_equal", "pthread_exit",
    "pthread_join", "pthread_once", "pthread_self", "pthread_yield",
    "PTHREAD_MUTEX_NORMAL", "PTHREAD_MUTEX_ERRORCHECK",
    "PTHREAD_MUTEX_STALLED", "PTHREAD_MUTEX_ROBUST",
    "PthreadCond", "PthreadCondAttr", "PthreadMutex", "PthreadMutexAttr",
    "pthread_mutex_consistent",
    "pthread_getspecific", "pthread_key_create", "pthread_key_delete",
    "pthread_setspecific",
]
