"""Top-level facade: build a machine, boot the kernel, run programs.

Typical use::

    from repro.api import Simulator
    from repro import threads

    def main():
        tid = yield from threads.thread_create(worker, 1,
                                               flags=threads.THREAD_WAIT)
        yield from threads.thread_wait(tid)

    sim = Simulator(ncpus=2)
    sim.spawn(main)
    sim.run()

Programs are generator functions; see :mod:`repro.runtime` for the
system-call wrappers and libc-style helpers they compose with.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.hw.machine import Machine
from repro.kernel.fs.vfs import TtyDevice
from repro.kernel.kernel import Kernel, build_kernel
from repro.kernel.process import Process
from repro.sim.clock import usec
from repro.sim.costs import CostModel
from repro.sim.trace import Tracer
from repro.threads import runtime as threads_runtime


class Simulator:
    """One simulated machine + kernel + threads runtime."""

    def __init__(self, ncpus: int = 1, seed: int = 0,
                 costs: Optional[CostModel] = None,
                 trace: bool = False,
                 trace_categories: Optional[Iterable[str]] = None,
                 trace_sink=None, trace_store: bool = True,
                 threads_runtime_factory=None,
                 faults=None, schedule=None, metrics=None):
        # trace_sink: extra sink (see repro.sim.trace) receiving every
        # kept record; trace_store=False drops in-memory retention —
        # together they give digest-only tracing with O(1) memory.
        self.tracer = Tracer(enabled=trace, categories=trace_categories,
                             sink=trace_sink, store=trace_store)
        self.machine = Machine(ncpus=ncpus, costs=costs, seed=seed,
                               tracer=self.tracer)
        self.kernel: Kernel = build_kernel(self.machine)
        if threads_runtime_factory is None:
            threads_runtime.install(self.kernel)
        else:
            self.kernel.runtime_factory = threads_runtime_factory
        self.faults = faults
        if faults is not None:
            # A FaultPlan (repro.sim.faults): deterministic error
            # injection, page-fault storms, timer jitter, LWP crashes.
            faults.attach(self.kernel)
        self.schedule = schedule
        if schedule is not None:
            # A SchedulePlan (repro.sim.schedule): deterministic
            # preemption injection at yield points and perturbed
            # run-queue picks.  Composes with a fault plan.
            schedule.attach(self.machine.engine)
        if metrics:
            # True -> a fresh MetricsRegistry; or pass an existing one
            # (e.g. to aggregate several runs).  Attaching sets
            # engine.metrics, the gate every instrumentation site tests.
            if metrics is True:
                from repro.obs.registry import MetricsRegistry
                metrics = MetricsRegistry()
            metrics.attach(self.machine.engine)
        self.metrics = metrics or None

    # ------------------------------------------------------------- spawn

    def spawn(self, main, *args, name: str = "main") -> Process:
        """Create a process whose initial thread runs ``main(*args)``."""
        proc = self.kernel.create_process(name)
        self.kernel.start_main(proc, main, args)
        return proc

    # --------------------------------------------------------------- run

    def run(self, until_usec: Optional[float] = None,
            check_deadlock: bool = True,
            max_events: Optional[int] = None) -> int:
        """Run the simulation; returns the number of events fired."""
        until_ns = usec(until_usec) if until_usec is not None else None
        return self.machine.engine.run(until_ns=until_ns,
                                       max_events=max_events,
                                       check_deadlock=check_deadlock)

    @property
    def now_usec(self) -> float:
        return self.machine.engine.now_usec

    @property
    def engine(self):
        return self.machine.engine

    @property
    def costs(self) -> CostModel:
        return self.machine.costs

    # ------------------------------------------------------------ devices

    def tty(self, path: str = "/dev/tty") -> TtyDevice:
        """The console device (for injecting external input)."""
        node = self.kernel.vfs.lookup(path)
        assert isinstance(node, TtyDevice)
        return node

    def type_input(self, data: bytes, path: str = "/dev/tty",
                   at_usec: Optional[float] = None) -> None:
        """Inject terminal input (optionally at a future virtual time) and
        wake any readers."""
        tty = self.tty(path)

        def deliver():
            tty.push_input(data)
            self.kernel.wakeup_all(tty.read_channel)

        if at_usec is None:
            deliver()
        else:
            self.engine.call_at(usec(at_usec), deliver, tag="tty-input")

    # ------------------------------------------------------------ reports

    def utilization(self) -> dict:
        return self.machine.utilization()

    def syscall_counts(self) -> dict:
        return dict(self.kernel.syscall_counts)
