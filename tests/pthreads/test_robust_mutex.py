"""POSIX robust-mutex attribute over the SunOS robust-lock machinery.

``PTHREAD_MUTEX_ROBUST`` surfaces the owner-death protocol to the
application (EOWNERDEAD / pthread_mutex_consistent / ENOTRECOVERABLE);
the default ``PTHREAD_MUTEX_STALLED`` hides it — the library repairs the
lock itself and the acquire looks clean, matching pre-robust pthreads
where an owner death was invisible (if no longer a hang, thanks to the
kernel reclaim walk underneath).
"""

import pytest

from repro import threads
from repro.errors import Errno, SyncError
from repro.hw.isa import GetContext
from repro.pthreads import (PTHREAD_MUTEX_ROBUST, PTHREAD_PROCESS_SHARED,
                            PthreadMutex, PthreadMutexAttr,
                            pthread_mutex_consistent)
from repro.runtime import libc, unistd
from repro.sim.clock import usec
from tests.conftest import run_program


def _crash_holding(mutex, observed):
    """Bound holder thread dies mid-hold; drive from main via start()."""

    def holder(_):
        ctx = yield GetContext()
        observed["victim"] = ctx.thread
        yield from mutex.lock()
        yield from libc.compute(500_000.0)   # never reached past crash

    def start():
        ctx = yield GetContext()
        yield from threads.thread_create(
            holder, None, flags=threads.THREAD_BIND_LWP)

        def kill():
            victim = observed.get("victim")
            if victim is not None and victim.lwp is not None:
                ctx.kernel.crash_lwp(victim.lwp)
            else:
                ctx.engine.call_after(usec(500.0), kill)

        ctx.engine.call_after(usec(2_000.0), kill)
        yield from libc.compute(5_000.0)     # crash + reclaim done

    return start


class TestRobustAttr:
    def test_lock_surfaces_eownerdead_and_consistent_repairs(self):
        observed = {}
        m = PthreadMutex(PthreadMutexAttr(robust=PTHREAD_MUTEX_ROBUST),
                         name="robust")
        start = _crash_holding(m, observed)

        def main():
            yield from start()
            observed["first"] = yield from m.lock()
            observed["repair"] = pthread_mutex_consistent(m)
            yield from m.unlock()
            observed["second"] = yield from m.lock()
            yield from m.unlock()
            yield from unistd.exit(0)

        run_program(main, ncpus=2)
        assert observed["first"] is Errno.EOWNERDEAD
        assert observed["repair"] == 0
        assert observed["second"] == 0             # clean relock

    def test_unlock_without_consistent_poisons_the_mutex(self):
        observed = {}
        m = PthreadMutex(PthreadMutexAttr(robust=PTHREAD_MUTEX_ROBUST),
                         name="poisoned")
        start = _crash_holding(m, observed)

        def main():
            yield from start()
            observed["first"] = yield from m.lock()
            yield from m.unlock()                  # no consistent()
            observed["after"] = yield from m.lock()
            observed["try"] = yield from m.trylock()
            yield from unistd.exit(0)

        run_program(main, ncpus=2)
        assert observed["first"] is Errno.EOWNERDEAD
        assert observed["after"] is Errno.ENOTRECOVERABLE
        assert observed["try"] is Errno.ENOTRECOVERABLE

    def test_consistent_on_healthy_robust_mutex_is_einval(self):
        m = PthreadMutex(PthreadMutexAttr(robust=PTHREAD_MUTEX_ROBUST))
        observed = {}

        def main():
            yield from m.lock()
            observed["repair"] = pthread_mutex_consistent(m)
            yield from m.unlock()
            yield from unistd.exit(0)

        run_program(main)
        assert observed["repair"] is Errno.EINVAL

    def test_consistent_on_non_robust_mutex_is_einval(self):
        m = PthreadMutex()
        assert pthread_mutex_consistent(m) is Errno.EINVAL

    def test_robust_process_shared_combination_rejected(self):
        with pytest.raises(SyncError):
            PthreadMutexAttr(pshared=PTHREAD_PROCESS_SHARED,
                             robust=PTHREAD_MUTEX_ROBUST)


class TestStalledAttr:
    def test_default_attr_auto_repairs_after_owner_death(self):
        observed = {}
        m = PthreadMutex(name="stalled")        # default: STALLED
        start = _crash_holding(m, observed)

        def main():
            yield from start()
            # The library swallows the EOWNERDEAD and marks the state
            # consistent itself: the caller sees an ordinary acquire.
            observed["first"] = yield from m.lock()
            yield from m.unlock()
            observed["second"] = yield from m.lock()
            yield from m.unlock()
            yield from unistd.exit(0)

        run_program(main, ncpus=2)
        assert observed["first"] == 0
        assert observed["second"] == 0
        assert not m.impl.owner_dead and not m.impl.unrecoverable
