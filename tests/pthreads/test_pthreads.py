"""Tests for the POSIX pthreads layer built over SunOS threads."""

import pytest

from repro.errors import Errno, SyncError, ThreadError
from repro import pthreads
from repro.pthreads.api import (PTHREAD_CREATE_DETACHED,
                                PTHREAD_SCOPE_SYSTEM, PthreadAttr,
                                pthread_once, pthread_once_init)
from repro.pthreads.sync import (PTHREAD_MUTEX_ERRORCHECK,
                                 PthreadCond, PthreadMutex,
                                 PthreadMutexAttr, pthread_cond_signal,
                                 pthread_cond_wait, pthread_mutex_lock,
                                 pthread_mutex_unlock)
from repro.runtime import mapped, unistd
from repro import threads
from tests.conftest import run_program


class TestCreateJoin:
    def test_join_returns_start_routine_value(self):
        got = []

        def start(arg):
            return arg * 2
            yield

        def main():
            t = yield from pthreads.pthread_create(start, 21)
            got.append((yield from pthreads.pthread_join(t)))

        run_program(main)
        assert got == [42]

    def test_pthread_exit_value_reaches_joiner(self):
        got = []

        def start(_):
            yield from pthreads.pthread_exit("early out")
            got.append("unreachable")

        def main():
            t = yield from pthreads.pthread_create(start, None)
            got.append((yield from pthreads.pthread_join(t)))

        run_program(main)
        assert got == ["early out"]

    def test_self_and_equal(self):
        got = []

        def start(_):
            me = yield from pthreads.pthread_self()
            got.append(me)

        def main():
            t = yield from pthreads.pthread_create(start, None)
            yield from pthreads.pthread_join(t)
            got.append(pthreads.pthread_equal(t, got[0]))

        run_program(main)
        assert got[1] is True

    def test_detached_at_creation_not_joinable(self):
        def start(_):
            return
            yield

        def main():
            attr = PthreadAttr(detachstate=PTHREAD_CREATE_DETACHED)
            t = yield from pthreads.pthread_create(start, None, attr)
            with pytest.raises(ThreadError):
                yield from pthreads.pthread_join(t)
            yield from threads.thread_yield()

        run_program(main, check_deadlock=False)

    def test_detach_after_creation_recycles(self):
        def start(_):
            yield from unistd.sleep_usec(1_000)

        def main():
            t = yield from pthreads.pthread_create(start, None)
            yield from pthreads.pthread_detach(t)
            with pytest.raises(ThreadError):
                yield from pthreads.pthread_join(t)
            yield from unistd.sleep_usec(10_000)

        run_program(main, check_deadlock=False)

    def test_scope_system_creates_bound_thread(self):
        got = {}

        def start(_):
            me = yield from threads.current_thread()
            got["bound"] = me.bound

        def main():
            attr = PthreadAttr(scope=PTHREAD_SCOPE_SYSTEM)
            t = yield from pthreads.pthread_create(start, None, attr)
            yield from pthreads.pthread_join(t)

        run_program(main, ncpus=2)
        assert got["bound"]

    def test_attr_priority_applied(self):
        got = {}

        def start(_):
            me = yield from threads.current_thread()
            got["prio"] = me.priority

        def main():
            attr = PthreadAttr(priority=50)
            t = yield from pthreads.pthread_create(start, None, attr)
            yield from pthreads.pthread_join(t)

        run_program(main)
        assert got["prio"] == 50


class TestOnce:
    def test_init_runs_exactly_once(self):
        runs = []
        once = pthread_once_init()

        def init():
            runs.append(1)

        def worker(_):
            yield from pthread_once(once, init)

        def main():
            ts = []
            for _ in range(4):
                t = yield from pthreads.pthread_create(worker, None)
                ts.append(t)
            for t in ts:
                yield from pthreads.pthread_join(t)
            yield from pthread_once(once, init)

        run_program(main, ncpus=2)
        assert runs == [1]


class TestMutexCond:
    def test_mutex_lock_unlock(self):
        def main():
            m = PthreadMutex()
            yield from pthread_mutex_lock(m)
            assert not (yield from m.trylock())
            yield from pthread_mutex_unlock(m)
            assert (yield from m.trylock())
            yield from m.unlock()

        run_program(main)

    def test_errorcheck_kind_detects_recursion(self):
        def main():
            m = PthreadMutex(PthreadMutexAttr(
                kind=PTHREAD_MUTEX_ERRORCHECK))
            assert (yield from m.lock()) == 0
            # POSIX errorcheck: a relock by the owner reports EDEADLK
            # instead of deadlocking or raising.
            assert (yield from m.lock()) == Errno.EDEADLK
            assert (yield from pthread_mutex_lock(m)) == Errno.EDEADLK
            yield from m.unlock()

        run_program(main)

    def test_cond_wait_signal(self):
        got = []

        def waiter(shared):
            m, cv = shared["m"], shared["cv"]
            yield from pthread_mutex_lock(m)
            while not shared["ready"]:
                yield from pthread_cond_wait(cv, m)
            got.append("woke")
            yield from pthread_mutex_unlock(m)

        def main():
            shared = {"m": PthreadMutex(), "cv": PthreadCond(),
                      "ready": False}
            t = yield from pthreads.pthread_create(waiter, shared)
            yield from threads.thread_yield()
            yield from pthread_mutex_lock(shared["m"])
            shared["ready"] = True
            yield from pthread_cond_signal(shared["cv"])
            yield from pthread_mutex_unlock(shared["m"])
            yield from pthreads.pthread_join(t)

        run_program(main)
        assert got == ["woke"]

    def test_process_shared_mutex(self):
        """PTHREAD_PROCESS_SHARED through a mapped file — the interaction
        the paper said P1003.4a was missing."""
        got = {}

        def peer():
            region = yield from mapped.map_shared_file("/tmp/pm", 4096)
            m = PthreadMutex(PthreadMutexAttr(
                pshared=pthreads.PTHREAD_PROCESS_SHARED,
                cell=region.cell(0)))
            yield from m.lock()
            got["peer_locked_at"] = yield from unistd.gettimeofday()
            yield from m.unlock()

        def main():
            region = yield from mapped.map_shared_file("/tmp/pm", 4096)
            m = PthreadMutex(PthreadMutexAttr(
                pshared=pthreads.PTHREAD_PROCESS_SHARED,
                cell=region.cell(0)))
            yield from m.lock()
            pid = yield from unistd.fork1(peer)
            yield from unistd.sleep_usec(20_000)
            got["parent_released_at"] = yield from unistd.gettimeofday()
            yield from m.unlock()
            yield from unistd.waitpid(pid)

        run_program(main)
        assert got["peer_locked_at"] >= got["parent_released_at"]

    def test_pshared_without_cell_rejected(self):
        with pytest.raises(SyncError):
            PthreadMutexAttr(pshared=pthreads.PTHREAD_PROCESS_SHARED)


class TestTsd:
    def test_specific_values_per_thread(self):
        got = {}

        def worker(tag):
            key = keybox["key"]
            yield from pthreads.pthread_setspecific(key, tag * 10)
            yield from pthreads.pthread_yield()
            got[tag] = yield from pthreads.pthread_getspecific(key)

        keybox = {}

        def main():
            keybox["key"] = yield from pthreads.pthread_key_create()
            ts = []
            for tag in (1, 2):
                t = yield from pthreads.pthread_create(worker, tag)
                ts.append(t)
            for t in ts:
                yield from pthreads.pthread_join(t)

        run_program(main)
        assert got == {1: 10, 2: 20}

    def test_destructor_runs(self):
        freed = []

        def worker(_):
            key = keybox["key"]
            yield from pthreads.pthread_setspecific(key, "buffer")

        keybox = {}

        def main():
            keybox["key"] = yield from pthreads.pthread_key_create(
                destructor=freed.append)
            t = yield from pthreads.pthread_create(worker, None)
            yield from pthreads.pthread_join(t)

        run_program(main)
        assert freed == ["buffer"]

    def test_key_delete(self):
        def main():
            key = yield from pthreads.pthread_key_create()
            yield from pthreads.pthread_key_delete(key)
            from repro.errors import ThreadError
            with pytest.raises(ThreadError):
                yield from pthreads.pthread_setspecific(key, 1)

        run_program(main)
