"""Tests for the comparison models: liblwp, 1:1 kernel threads, and
scheduler activations."""

import pytest

from repro.api import Simulator
from repro.errors import ThreadError
from repro.hw.isa import Charge, GetContext
from repro.kernel.fs.file import O_RDONLY
from repro.models import activations, kernel_only, liblwp
from repro.runtime import unistd
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


class TestLiblwp:
    def test_threads_schedule_within_one_lwp(self):
        got = []

        def worker(tag):
            got.append(tag)
            yield from threads.thread_yield()
            got.append(tag + "-again")

        def main():
            a = yield from liblwp.lwp_create(worker, "a")
            b = yield from liblwp.lwp_create(worker, "b")
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)
            ctx = yield GetContext()
            got.append(("lwps", len(ctx.process.live_lwps())))

        run_program(main, runtime_factory=liblwp.bootstrap_process)
        assert ("lwps", 1) in got

    def test_blocking_syscall_stalls_every_thread(self):
        """The defining liblwp deficiency: one blocking call freezes the
        whole application."""
        progress = []

        def compute(_):
            for _ in range(10):
                yield Charge(usec(100))
                t = yield from unistd.gettimeofday()
                progress.append(t)
                yield from threads.thread_yield()

        def main():
            yield from threads.thread_create(compute, None)
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            yield from unistd.read(fd, 1)  # blocks the only LWP
            yield from threads.thread_yield()

        sim = Simulator(ncpus=2)
        sim.kernel.runtime_factory = liblwp.bootstrap_process
        sim.spawn(main)
        sim.type_input(b"x", at_usec=100_000)
        sim.run(check_deadlock=False)
        # No compute progress before the input arrived at 100ms.
        assert all(t >= usec(100_000) for t in progress)

    def test_no_sigwaiting_growth(self):
        def main():
            ctx = yield GetContext()
            lib = ctx.process.threadlib
            assert isinstance(lib, liblwp.LiblwpLibrary)
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            yield from unistd.read(fd, 1)
            assert len(ctx.process.live_lwps()) == 1

        sim = Simulator()
        sim.kernel.runtime_factory = liblwp.bootstrap_process
        sim.spawn(main)
        sim.type_input(b"x", at_usec=100_000)
        sim.run()

    def test_lwp_flags_rejected(self):
        lib_holder = {}

        def main():
            ctx = yield GetContext()
            lib_holder["lib"] = ctx.process.threadlib

        run_program(main, runtime_factory=liblwp.bootstrap_process)
        with pytest.raises(ThreadError):
            lib_holder["lib"].check_flags(threads.THREAD_BIND_LWP)

    def test_nbio_read_lets_other_threads_run(self):
        """The paper's mitigation: a non-blocking I/O library keeps the
        application alive during waits."""
        progress = []
        got = []

        def compute(_):
            for _ in range(5):
                yield Charge(usec(100))
                progress.append((yield from unistd.gettimeofday()))
                yield from threads.thread_yield()

        def main():
            from repro.kernel.fs.file import O_NONBLOCK
            yield from threads.thread_create(compute, None)
            fd = yield from unistd.open("/dev/tty",
                                        O_RDONLY | O_NONBLOCK)
            data = yield from liblwp.nbio_read(fd, 1)
            got.append(data)

        sim = Simulator()
        sim.kernel.runtime_factory = liblwp.bootstrap_process
        sim.spawn(main)
        sim.type_input(b"z", at_usec=10_000)
        sim.run(check_deadlock=False)
        assert got == [b"z"]
        # Compute progressed while the read was pending.
        assert any(t < usec(10_000) for t in progress)


class TestKernelOnly:
    def test_every_thread_gets_an_lwp(self):
        got = {}

        def worker(_):
            yield from unistd.sleep_usec(5_000)

        def main():
            ctx = yield GetContext()
            for _ in range(3):
                yield from kernel_only.thread_create(
                    worker, None, flags=threads.THREAD_WAIT)
            got["lwps"] = len(ctx.process.live_lwps())
            got["footprint"] = kernel_only.footprint(ctx.process)
            for _ in range(3):
                yield from threads.thread_wait(None)

        run_program(main, ncpus=2)
        assert got["lwps"] == 4  # main + 3 bound
        assert got["footprint"]["kernel_bytes"] == 4 * (8 * 1024 + 512)

    def test_model_detection(self):
        got = []

        def worker(_):
            yield from unistd.sleep_usec(2_000)

        def main():
            yield from kernel_only.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            got.append((yield from kernel_only.current_model()))
            yield from threads.thread_wait(None)

        run_program(main, ncpus=2)
        # main itself is unbound, so a mixed process reports M:N.
        assert got[0] in ("M:N", "1:1")


class TestActivations:
    def test_upcall_on_any_block(self):
        """Activations react to a *bounded* kernel block (nanosleep),
        which SIGWAITING would ignore."""
        got = {}

        def sleeper(_):
            yield from unistd.sleep_usec(30_000)

        def compute(_):
            yield Charge(usec(500))
            got["computed_at"] = yield from unistd.gettimeofday()

        def main():
            yield from activations.enable_current()
            ctx = yield GetContext()
            tid1 = yield from threads.thread_create(
                sleeper, None, flags=threads.THREAD_WAIT)
            tid2 = yield from threads.thread_create(
                compute, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid2)
            got["pool"] = len(ctx.process.threadlib.pool_lwps)
            yield from threads.thread_wait(tid1)

        run_program(main, ncpus=2)
        # compute ran long before the sleeper's 30ms block ended.
        assert got["computed_at"] < usec(30_000)
        assert got["pool"] >= 2

    def test_sigwaiting_alone_is_coarser(self):
        """Same scenario without activations: the bounded sleep never
        triggers SIGWAITING, so compute waits for the sleeper."""
        got = {}

        def sleeper(_):
            yield from unistd.sleep_usec(30_000)

        def compute(_):
            yield Charge(usec(500))
            got["computed_at"] = yield from unistd.gettimeofday()

        def main():
            yield from threads.thread_create(sleeper, None)
            tid = yield from threads.thread_create(
                compute, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got["computed_at"] >= usec(30_000)
