"""Tests for the micro-tasking (raw-LWP, gang-scheduled) runtime."""

import pytest

from repro.api import Simulator
from repro.hw.isa import Charge, GetContext
from repro.models import microtasking
from repro.runtime import unistd
from repro.sim.clock import usec
from tests.conftest import run_program


class TestParallelFor:
    def test_all_iterations_execute_once(self):
        hits = []

        def main():
            def body(i):
                hits.append(i)

            yield from microtasking.parallel_for(10, body, n_lwps=3)

        run_program(main, ncpus=2)
        assert sorted(hits) == list(range(10))

    def test_workers_are_raw_lwps_not_threads(self):
        got = {}

        def main():
            ctx = yield GetContext()
            before_threads = len(ctx.process.threadlib.all_threads())

            def body(i):
                yield Charge(usec(100))

            yield from microtasking.parallel_for(4, body, n_lwps=2)
            got["threads_delta"] = (len(ctx.process.threadlib
                                        .all_threads()) - before_threads)

        sim, _ = run_program(main, ncpus=2)
        assert got["threads_delta"] == 0  # no library threads created
        assert sim.syscall_counts()["lwp_create"] == 2

    def test_parallelism_speeds_up_compute(self):
        def build(n_lwps):
            def main():
                def body(i):
                    # Big enough that compute dominates the (expensive)
                    # LWP creations.
                    yield Charge(usec(10_000))

                yield from microtasking.parallel_for(8, body,
                                                     n_lwps=n_lwps,
                                                     gang=False)
            return main

        sim1, _ = run_program(build(1), ncpus=4)
        sim4, _ = run_program(build(4), ncpus=4)
        assert sim4.now_usec < sim1.now_usec * 0.5

    def test_gang_membership_during_run(self):
        """Workers join the caller's gang, so the dispatcher co-schedules
        them."""
        got = {}

        def main():
            ctx = yield GetContext()

            def body(i):
                if i == 0:
                    proc = ctx.process
                    got["gang_sizes"] = [
                        len(l.gang.members) for l in proc.live_lwps()
                        if l.gang is not None]
                yield Charge(usec(500))

            yield from microtasking.parallel_for(4, body, n_lwps=2)

        run_program(main, ncpus=2)
        assert got["gang_sizes"] and max(got["gang_sizes"]) >= 2

    def test_more_lwps_than_iters_clamped(self):
        hits = []

        def main():
            def body(i):
                hits.append(i)

            yield from microtasking.parallel_for(2, body, n_lwps=8)

        sim, _ = run_program(main, ncpus=2)
        assert sorted(hits) == [0, 1]
        assert sim.syscall_counts()["lwp_create"] == 2

    def test_zero_lwps_defaults_to_ncpus(self):
        def main():
            def body(i):
                yield Charge(usec(10))

            used = yield from microtasking.parallel_for(8, body)
            assert used == 3

        run_program(main, ncpus=3)


class TestParallelSum:
    def test_sum_correct(self):
        got = []

        def main():
            total = yield from microtasking.parallel_sum(
                list(range(20)), n_lwps=4)
            got.append(total)

        run_program(main, ncpus=4)
        assert got == [sum(range(20))]

    def test_empty_values(self):
        got = []

        def main():
            total = yield from microtasking.parallel_sum([], n_lwps=2)
            got.append(total)

        run_program(main)
        assert got == [0]
