"""Tests for the Simulator facade and whole-machine behaviours."""

import pytest

from repro.api import Simulator
from repro.errors import SimulationError
from repro.hw.isa import Charge, Syscall
from repro.kernel.fs.file import O_RDONLY
from repro.runtime import unistd
from repro.sim.clock import usec
from repro import threads


class TestSimulatorBasics:
    def test_spawn_returns_process(self):
        sim = Simulator()

        def main():
            yield Charge(usec(10))

        proc = sim.spawn(main, name="myproc")
        assert proc.name == "myproc"
        sim.run()
        assert proc.exit_status == 0

    def test_spawn_with_args(self):
        got = []

        def main(a, b):
            got.append(a + b)
            yield Charge(usec(1))

        sim = Simulator()
        sim.spawn(main, 2, 3)
        sim.run()
        assert got == [5]

    def test_multiple_processes_isolated_pids(self):
        sim = Simulator(ncpus=2)

        def main():
            yield Charge(usec(100))

        p1 = sim.spawn(main)
        p2 = sim.spawn(main)
        assert p1.pid != p2.pid
        sim.run()

    def test_run_until_usec(self):
        sim = Simulator()

        def main():
            yield from unistd.sleep_usec(100_000)

        sim.spawn(main)
        sim.run(until_usec=10_000)
        assert sim.now_usec == 10_000
        sim.run()  # finish
        assert sim.now_usec >= 100_000

    def test_max_events_guard(self):
        sim = Simulator()

        def main():
            while True:
                yield Charge(usec(1))

        sim.spawn(main)
        with pytest.raises(SimulationError):
            sim.run(max_events=1_000)

    def test_costs_property(self):
        from repro.sim.costs import CostModel
        custom = CostModel(setjmp=1, longjmp=1)
        sim = Simulator(costs=custom)
        assert sim.costs.setjmp == 1

    def test_type_input_immediate(self):
        got = []

        def main():
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            got.append((yield from unistd.read(fd, 10)))

        sim = Simulator()
        sim.spawn(main)
        sim.type_input(b"now")  # before run: buffered
        sim.run()
        assert got == [b"now"]

    def test_utilization_and_syscall_counts(self):
        sim = Simulator(ncpus=2)

        def main():
            yield Charge(usec(1_000))
            yield from unistd.getpid()

        sim.spawn(main)
        sim.run()
        util = sim.utilization()
        assert util["dispatches"] >= 1
        assert sim.syscall_counts()["getpid"] == 1

    def test_trace_categories_plumbed(self):
        sim = Simulator(trace=True, trace_categories=["syscall"])

        def main():
            yield from unistd.getpid()

        sim.spawn(main)
        sim.run()
        cats = {r.category for r in sim.tracer.records}
        assert cats == {"syscall"}


class TestExecSemantics:
    def test_exec_keeps_descriptors(self):
        got = []

        def new_image():
            # fd 0 must still be open in the new image.
            data = yield from unistd.read(0, 100)
            got.append(data)

        def main():
            from repro.kernel.fs.file import O_CREAT, O_RDWR
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            yield from unistd.write(fd, b"kept across exec")
            yield from unistd.lseek(fd, 0)
            yield from unistd.exec_image(new_image)

        sim = Simulator()
        sim.spawn(main)
        sim.run()
        assert got == [b"kept across exec"]

    def test_exec_resets_caught_handlers(self):
        from repro.kernel.signals import Sig
        got = []

        def handler(sig):
            yield Charge(usec(1))

        def new_image():
            from repro.hw.isa import GetContext
            ctx = yield GetContext()
            action = ctx.process.signals.action(Sig.SIGUSR1)
            got.append(action.is_default())

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            yield from unistd.exec_image(new_image)

        sim = Simulator()
        sim.spawn(main)
        sim.run()
        assert got == [True]

    def test_exec_keeps_ignored_disposition(self):
        from repro.kernel.signals import SIG_IGN, Sig
        got = []

        def new_image():
            from repro.hw.isa import GetContext
            ctx = yield GetContext()
            got.append(ctx.process.signals.action(Sig.SIGUSR2).is_ignore())

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR2), SIG_IGN)
            yield from unistd.exec_image(new_image)

        sim = Simulator()
        sim.spawn(main)
        sim.run()
        assert got == [True]


class TestDeterminismAcrossFacade:
    def test_identical_runs_identical_timing(self):
        def build():
            sim = Simulator(ncpus=2, seed=11)

            def worker(_):
                yield Charge(usec(100))
                yield from threads.thread_yield()

            def main():
                tids = []
                for _ in range(5):
                    tid = yield from threads.thread_create(
                        worker, None, flags=threads.THREAD_WAIT)
                    tids.append(tid)
                for tid in tids:
                    yield from threads.thread_wait(tid)

            sim.spawn(main)
            sim.run()
            return sim.now_usec, sim.engine.events_fired

        assert build() == build()
