"""The scheduler-matrix determinism contract.

Every registered scheduling class must run a clean corpus entry
deterministically: the same seed + SchedulerChoice plan reproduces the
same trace digest twice, and the run stays clean (no findings, no hang,
no error).  This is the acceptance bar for adding a class — a policy
that consults host state (time, ids, dict order) fails it immediately.
"""

import pytest

from repro.explore.corpus import CLEAN
from repro.explore.explorer import run_one
from repro.kernel.sched.policy import SchedClassTable

CLASS_NAMES = [pol.name for pol in SchedClassTable.default().ordered]


def _plan(name):
    return {"rules": [{"kind": "scheduler", "sched_class": name}]}


@pytest.mark.parametrize("name", CLASS_NAMES)
def test_clean_corpus_entry_is_deterministic_per_class(name):
    factory = CLEAN["clean_queue"]
    first, second = (
        run_one(factory, program="clean_queue", seed=3, ncpus=2,
                schedule_dict=_plan(name))
        for _ in range(2))
    assert first.digest == second.digest
    assert not first.failed, first.summary()


def _contended_factory():
    """Three bound LWPs burning CPU on one CPU: quantum scaling and
    queue discipline decide every interleaving, so the kernel class is
    visible in the trace (clean_queue runs on a single LWP and never
    exercises the dispatcher)."""
    from repro import threads
    from repro.hw.isa import Charge
    from repro.sim.clock import usec

    def worker(_):
        for _ in range(40):
            yield Charge(usec(3_000))

    def main():
        tids = []
        for _ in range(3):
            tid = yield from threads.thread_create(
                worker, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            tids.append(tid)
        for tid in tids:
            yield from threads.thread_wait(tid)
    return main


@pytest.mark.parametrize("name", ["CFS", "MLFQ", "SJF", "HRR"])
def test_new_classes_change_the_schedule(name):
    """The new classes must actually *be* different policies: under LWP
    contention their trace diverges from the TS baseline (TS scales the
    quantum by priority and applies feedback; none of the new classes
    do)."""
    baseline = run_one(_contended_factory, program="burn", seed=3,
                       ncpus=1, schedule_dict=_plan("TS"))
    other = run_one(_contended_factory, program="burn", seed=3,
                    ncpus=1, schedule_dict=_plan(name))
    assert not baseline.failed and not other.failed
    assert other.digest != baseline.digest


def test_scheduler_plan_survives_bundle_roundtrip():
    """A SchedulerChoice plan serialized into a bundle dict replays to
    the identical digest (the replay path explorers and CI rely on)."""
    import json

    factory = CLEAN["clean_queue"]
    plan = _plan("MLFQ")
    first = run_one(factory, program="clean_queue", seed=9,
                    schedule_dict=plan)
    replayed = run_one(factory, program="clean_queue", seed=9,
                       schedule_dict=json.loads(json.dumps(plan)))
    assert replayed.digest == first.digest
