"""The torture harness's acceptance gates, as unit tests.

Every seeded-bug program in the corpus must be caught within a bounded
schedule budget, and every clean twin (plus the paper workloads) must
stay finding-free — the detectors are only useful if both directions
hold.
"""

import pytest

from repro.explore.corpus import BUGGY, CLEAN
from repro.explore.explorer import Explorer, run_one, default_plan_dicts

#: Budget for the hunting tests.  The corpus bugs are designed to fall
#: within a handful of schedules; CI uses a larger K for margin.
HUNT_RUNS = 12
CLEAN_RUNS = 6


class TestCorpusCaught:
    @pytest.mark.parametrize("name", sorted(BUGGY))
    def test_bug_found_within_budget(self, name):
        factory, expected = BUGGY[name]
        report = Explorer(factory, program=name, runs=HUNT_RUNS,
                          seed=1).explore()
        assert report.finding_kinds & expected, (
            f"{name}: expected one of {sorted(expected)} within "
            f"{HUNT_RUNS} runs, saw {sorted(report.finding_kinds)}")

    def test_racy_counter_names_the_cell(self):
        factory, _ = BUGGY["racy_counter"]
        report = Explorer(factory, program="racy_counter", runs=HUNT_RUNS,
                          seed=1).explore()
        races = [f for r in report.results for f in r.findings
                 if f.kind == "data-race"]
        assert races
        assert any(f.subject.endswith("+0") for f in races)

    def test_lock_order_cycle_names_both_locks(self):
        factory, _ = BUGGY["ab_ba_locks"]
        report = Explorer(factory, program="ab_ba_locks", runs=HUNT_RUNS,
                          seed=1).explore()
        cycles = [f for r in report.results for f in r.findings
                  if f.kind == "lock-order"]
        assert cycles
        assert any("lockA" in f.message and "lockB" in f.message
                   for f in cycles)


class TestCleanGate:
    @pytest.mark.parametrize("name", sorted(CLEAN))
    def test_clean_program_stays_clean(self, name):
        factory = CLEAN[name]
        report = Explorer(factory, program=name, runs=CLEAN_RUNS,
                          seed=1).explore()
        assert not report.failures, report.summary()


class TestWorkloadsClean:
    """The paper's own workloads are the highest-value false-positive
    gate: they use every primitive (shared mutexes across processes,
    CVs, semaphores, multi-LWP concurrency)."""

    @pytest.mark.parametrize("module_name", [
        "array_compute", "database", "network_server", "window_system"])
    def test_workload_clean_under_mild_preemption(self, module_name):
        import importlib
        mod = importlib.import_module(f"repro.workloads.{module_name}")
        plans = default_plan_dicts(4)
        for k, plan in enumerate(plans):
            result = run_one(lambda: mod.build()[0],
                             program=module_name, run_index=k,
                             seed=1 + k, schedule_dict=plan)
            assert not result.failed, result.summary()


class TestRequestLedger:
    """Unit coverage for the lost-request detector: each violation class
    is triggered by a minimal ledger-event program."""

    @staticmethod
    def _run_ledger(ops):
        """Run a program that replays ``ops`` = [(op, rid), ...]."""
        from repro.hw.isa import GetContext
        from repro.sync.events import sync_event

        def factory():
            def main():
                ctx = yield GetContext()
                for op, rid in ops:
                    sync_event(ctx, op, None, id=rid)
            return main

        return run_one(factory, program="ledger")

    def test_admit_then_serve_is_clean(self):
        result = self._run_ledger([("net-admit", "r1"),
                                   ("net-serve", "r1")])
        assert not result.findings

    def test_admit_then_shed_is_clean(self):
        result = self._run_ledger([("net-admit", "r1"),
                                   ("net-shed", "r1")])
        assert not result.findings

    def test_shed_without_admit_is_legal(self):
        # Rejection at the door (backlog RST, admission refusal).
        result = self._run_ledger([("net-shed", "r1")])
        assert not result.findings

    def test_serve_without_admit_is_flagged(self):
        result = self._run_ledger([("net-serve", "r1")])
        kinds = {f.kind for f in result.findings}
        assert kinds == {"lost-request"}
        assert "never admitted" in result.findings[0].message

    def test_admit_without_disposition_is_flagged(self):
        result = self._run_ledger([("net-admit", "r1"),
                                   ("net-admit", "r2"),
                                   ("net-serve", "r2")])
        msgs = [f.message for f in result.findings
                if f.kind == "lost-request"]
        assert len(msgs) == 1
        assert "r1" in msgs[0] and "dropped on the floor" in msgs[0]

    def test_double_admit_is_flagged(self):
        result = self._run_ledger([("net-admit", "r1"),
                                   ("net-admit", "r1"),
                                   ("net-serve", "r1")])
        assert any("admitted twice" in f.message
                   for f in result.findings)

    def test_double_disposition_is_flagged(self):
        result = self._run_ledger([("net-admit", "r1"),
                                   ("net-serve", "r1"),
                                   ("net-shed", "r1")])
        assert any("disposed twice" in f.message
                   for f in result.findings)

    def test_events_without_ids_are_ignored(self):
        from repro.hw.isa import GetContext
        from repro.sync.events import sync_event

        def factory():
            def main():
                ctx = yield GetContext()
                sync_event(ctx, "net-admit", None)
                sync_event(ctx, "net-serve", None, id=None)
            return main

        result = run_one(factory, program="ledger")
        assert not result.findings
