"""The torture harness's acceptance gates, as unit tests.

Every seeded-bug program in the corpus must be caught within a bounded
schedule budget, and every clean twin (plus the paper workloads) must
stay finding-free — the detectors are only useful if both directions
hold.
"""

import pytest

from repro.explore.corpus import BUGGY, CLEAN
from repro.explore.explorer import Explorer, run_one, default_plan_dicts

#: Budget for the hunting tests.  The corpus bugs are designed to fall
#: within a handful of schedules; CI uses a larger K for margin.
HUNT_RUNS = 12
CLEAN_RUNS = 6


class TestCorpusCaught:
    @pytest.mark.parametrize("name", sorted(BUGGY))
    def test_bug_found_within_budget(self, name):
        factory, expected = BUGGY[name]
        report = Explorer(factory, program=name, runs=HUNT_RUNS,
                          seed=1).explore()
        assert report.finding_kinds & expected, (
            f"{name}: expected one of {sorted(expected)} within "
            f"{HUNT_RUNS} runs, saw {sorted(report.finding_kinds)}")

    def test_racy_counter_names_the_cell(self):
        factory, _ = BUGGY["racy_counter"]
        report = Explorer(factory, program="racy_counter", runs=HUNT_RUNS,
                          seed=1).explore()
        races = [f for r in report.results for f in r.findings
                 if f.kind == "data-race"]
        assert races
        assert any(f.subject.endswith("+0") for f in races)

    def test_lock_order_cycle_names_both_locks(self):
        factory, _ = BUGGY["ab_ba_locks"]
        report = Explorer(factory, program="ab_ba_locks", runs=HUNT_RUNS,
                          seed=1).explore()
        cycles = [f for r in report.results for f in r.findings
                  if f.kind == "lock-order"]
        assert cycles
        assert any("lockA" in f.message and "lockB" in f.message
                   for f in cycles)


class TestCleanGate:
    @pytest.mark.parametrize("name", sorted(CLEAN))
    def test_clean_program_stays_clean(self, name):
        factory = CLEAN[name]
        report = Explorer(factory, program=name, runs=CLEAN_RUNS,
                          seed=1).explore()
        assert not report.failures, report.summary()


class TestWorkloadsClean:
    """The paper's own workloads are the highest-value false-positive
    gate: they use every primitive (shared mutexes across processes,
    CVs, semaphores, multi-LWP concurrency)."""

    @pytest.mark.parametrize("module_name", [
        "array_compute", "database", "network_server", "window_system"])
    def test_workload_clean_under_mild_preemption(self, module_name):
        import importlib
        mod = importlib.import_module(f"repro.workloads.{module_name}")
        plans = default_plan_dicts(4)
        for k, plan in enumerate(plans):
            result = run_one(lambda: mod.build()[0],
                             program=module_name, run_index=k,
                             seed=1 + k, schedule_dict=plan)
            assert not result.failed, result.summary()
