"""The torture harness's acceptance gates, as unit tests.

Every seeded-bug program in the corpus must be caught within a bounded
schedule budget, and every clean twin (plus the paper workloads) must
stay finding-free — the detectors are only useful if both directions
hold.
"""

import pytest

from repro.explore.corpus import BUGGY, CLEAN
from repro.explore.explorer import Explorer, run_one, default_plan_dicts

#: Budget for the hunting tests.  The corpus bugs are designed to fall
#: within a handful of schedules; CI uses a larger K for margin.
HUNT_RUNS = 12
CLEAN_RUNS = 6


class TestCorpusCaught:
    @pytest.mark.parametrize("name", sorted(BUGGY))
    def test_bug_found_within_budget(self, name):
        factory, expected = BUGGY[name]
        report = Explorer(factory, program=name, runs=HUNT_RUNS,
                          seed=1).explore()
        assert report.finding_kinds & expected, (
            f"{name}: expected one of {sorted(expected)} within "
            f"{HUNT_RUNS} runs, saw {sorted(report.finding_kinds)}")

    def test_racy_counter_names_the_cell(self):
        factory, _ = BUGGY["racy_counter"]
        report = Explorer(factory, program="racy_counter", runs=HUNT_RUNS,
                          seed=1).explore()
        races = [f for r in report.results for f in r.findings
                 if f.kind == "data-race"]
        assert races
        assert any(f.subject.endswith("+0") for f in races)

    def test_lock_order_cycle_names_both_locks(self):
        factory, _ = BUGGY["ab_ba_locks"]
        report = Explorer(factory, program="ab_ba_locks", runs=HUNT_RUNS,
                          seed=1).explore()
        cycles = [f for r in report.results for f in r.findings
                  if f.kind == "lock-order"]
        assert cycles
        assert any("lockA" in f.message and "lockB" in f.message
                   for f in cycles)


class TestCleanGate:
    @pytest.mark.parametrize("name", sorted(CLEAN))
    def test_clean_program_stays_clean(self, name):
        factory = CLEAN[name]
        report = Explorer(factory, program=name, runs=CLEAN_RUNS,
                          seed=1).explore()
        assert not report.failures, report.summary()


class TestWorkloadsClean:
    """The paper's own workloads are the highest-value false-positive
    gate: they use every primitive (shared mutexes across processes,
    CVs, semaphores, multi-LWP concurrency)."""

    @pytest.mark.parametrize("module_name", [
        "array_compute", "database", "network_server", "window_system"])
    def test_workload_clean_under_mild_preemption(self, module_name):
        import importlib
        mod = importlib.import_module(f"repro.workloads.{module_name}")
        plans = default_plan_dicts(4)
        for k, plan in enumerate(plans):
            result = run_one(lambda: mod.build()[0],
                             program=module_name, run_index=k,
                             seed=1 + k, schedule_dict=plan)
            assert not result.failed, result.summary()


class TestRequestLedger:
    """Unit coverage for the lost-request detector: each violation class
    is triggered by a minimal ledger-event program."""

    @staticmethod
    def _run_ledger(ops):
        """Run a program that replays ``ops`` = [(op, rid), ...]."""
        from repro.hw.isa import GetContext
        from repro.sync.events import sync_event

        def factory():
            def main():
                ctx = yield GetContext()
                for op, rid in ops:
                    sync_event(ctx, op, None, id=rid)
            return main

        return run_one(factory, program="ledger")

    def test_admit_then_serve_is_clean(self):
        result = self._run_ledger([("net-admit", "r1"),
                                   ("net-serve", "r1")])
        assert not result.findings

    def test_admit_then_shed_is_clean(self):
        result = self._run_ledger([("net-admit", "r1"),
                                   ("net-shed", "r1")])
        assert not result.findings

    def test_shed_without_admit_is_legal(self):
        # Rejection at the door (backlog RST, admission refusal).
        result = self._run_ledger([("net-shed", "r1")])
        assert not result.findings

    def test_serve_without_admit_is_flagged(self):
        result = self._run_ledger([("net-serve", "r1")])
        kinds = {f.kind for f in result.findings}
        assert kinds == {"lost-request"}
        assert "never admitted" in result.findings[0].message

    def test_admit_without_disposition_is_flagged(self):
        result = self._run_ledger([("net-admit", "r1"),
                                   ("net-admit", "r2"),
                                   ("net-serve", "r2")])
        msgs = [f.message for f in result.findings
                if f.kind == "lost-request"]
        assert len(msgs) == 1
        assert "r1" in msgs[0] and "dropped on the floor" in msgs[0]

    def test_double_admit_is_flagged(self):
        result = self._run_ledger([("net-admit", "r1"),
                                   ("net-admit", "r1"),
                                   ("net-serve", "r1")])
        assert any("admitted twice" in f.message
                   for f in result.findings)

    def test_double_disposition_is_flagged(self):
        result = self._run_ledger([("net-admit", "r1"),
                                   ("net-serve", "r1"),
                                   ("net-shed", "r1")])
        assert any("disposed twice" in f.message
                   for f in result.findings)

    def test_events_without_ids_are_ignored(self):
        from repro.hw.isa import GetContext
        from repro.sync.events import sync_event

        def factory():
            def main():
                ctx = yield GetContext()
                sync_event(ctx, "net-admit", None)
                sync_event(ctx, "net-serve", None, id=None)
            return main

        result = run_one(factory, program="ledger")
        assert not result.findings


class TestOrphanedResourceDetector:
    """Crash-reclaim coverage: real crash runs through ``run_one`` for
    the repair verdicts, direct event drive for the missed-reclaim case
    (which the real kernel walk should make unreachable)."""

    @staticmethod
    def _crash_run(after_crash):
        """Bound holder dies at t=3ms holding a mutex; ``after_crash``
        is a generator function given the mutex, run from main."""
        from repro import FaultPlan, LwpCrash, threads
        from repro.runtime import libc
        from repro.sync import Mutex

        def factory():
            m = Mutex(name="estate")

            def holder(_):
                yield from m.enter()
                yield from libc.compute(100_000.0)   # crash lands here

            def main():
                yield from threads.thread_create(
                    holder, None, flags=threads.THREAD_BIND_LWP)
                yield from libc.compute(6_000.0)     # crash has happened
                yield from after_crash(m)

            return main

        faults = FaultPlan([LwpCrash(3_000.0, pid=1, lwp_id=2)])
        return run_one(factory, program="crash-estate",
                       faults_dict=faults.to_dict())

    def test_reclaimed_and_repaired_is_clean(self):
        from repro.errors import Errno

        def repair(m):
            res = yield from m.enter()
            assert res is Errno.EOWNERDEAD
            m.consistent()
            yield from m.exit()

        result = self._crash_run(repair)
        assert not result.failed, result.summary()

    def test_never_repaired_lock_is_reported(self):
        def ignore(m):
            return
            yield   # pragma: no cover — generator shape only

        result = self._crash_run(ignore)
        orphans = [f for f in result.findings if f.kind == "orphaned-lock"]
        assert orphans
        assert any("still owner-dead" in f.message for f in orphans)

    def test_bricked_lock_is_reported(self):
        def brick(m):
            yield from m.enter()        # EOWNERDEAD
            yield from m.exit()         # released without consistent()

        result = self._crash_run(brick)
        orphans = [f for f in result.findings if f.kind == "orphaned-lock"]
        assert orphans
        assert any("ENOTRECOVERABLE" in f.message for f in orphans)

    @staticmethod
    def _fake_ctx(thread):
        from types import SimpleNamespace
        return SimpleNamespace(thread=thread, lwp=None)

    def test_missed_reclaim_is_an_orphan(self):
        from types import SimpleNamespace
        from repro.explore.detectors import OrphanedResourceDetector

        det = OrphanedResourceDetector()
        victim = SimpleNamespace(name="victim")
        sv = SimpleNamespace(name="m")
        ctx = self._fake_ctx(victim)
        det.on_sync(ctx, "acquire", sv, {"mode": "write"})
        # Crash with NO owner-dead announcement: the walk missed it.
        det.on_sync(ctx, "thread-crash", None, {})
        assert [f.kind for f in det.findings] == ["orphaned-lock"]
        assert "never transitioned" in det.findings[0].message

    def test_announced_reclaim_is_not_an_orphan(self):
        from types import SimpleNamespace
        from repro.explore.detectors import OrphanedResourceDetector

        det = OrphanedResourceDetector()
        victim = SimpleNamespace(name="victim")
        sv = SimpleNamespace(name="m")       # owner_dead absent -> False
        ctx = self._fake_ctx(victim)
        det.on_sync(ctx, "acquire", sv, {"mode": "write"})
        det.on_sync(ctx, "owner-dead", sv, {"mode": "write"})
        det.on_sync(ctx, "thread-crash", None, {})
        det.finalize(sim=None)
        assert det.reclaims == 1 and det.crashes == 1
        assert not det.findings


class TestRestartStormDetector:
    @staticmethod
    def _ctx(now_usec):
        from types import SimpleNamespace
        return SimpleNamespace(
            engine=SimpleNamespace(now_ns=int(now_usec * 1_000)),
            thread=None, lwp=None)

    def test_give_up_is_always_reported(self):
        from repro.explore.detectors import RestartStormDetector

        det = RestartStormDetector()
        det.on_sync(self._ctx(500.0), "sup-give-up", None,
                    {"child": "kid", "supervisor": "sup", "restarts": 3})
        assert [f.kind for f in det.findings] == ["restart-storm"]
        assert "gave up" in det.findings[0].message

    def test_unthrottled_burst_is_reported(self):
        from repro.explore.detectors import RestartStormDetector

        det = RestartStormDetector()
        for i in range(5):
            det.on_sync(self._ctx(100.0 * i), "sup-restart", None,
                        {"child": "kid", "supervisor": "sup"})
        assert [f.kind for f in det.findings] == ["restart-storm"]
        assert "unthrottled" in det.findings[0].message

    def test_backed_off_restarts_are_clean(self):
        from repro.explore.detectors import RestartStormDetector

        det = RestartStormDetector()
        for i in range(5):                     # 1000µs apart: legal pace
            det.on_sync(self._ctx(1_000.0 * i), "sup-restart", None,
                        {"child": "kid", "supervisor": "sup"})
        assert not det.findings

    def test_bursts_of_distinct_children_are_clean(self):
        from repro.explore.detectors import RestartStormDetector

        det = RestartStormDetector()
        for i in range(5):                     # one restart each: fine
            det.on_sync(self._ctx(100.0 * i), "sup-restart", None,
                        {"child": f"kid-{i}", "supervisor": "sup"})
        assert not det.findings
