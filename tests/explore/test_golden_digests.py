"""Golden trace digests: the execution core's determinism contract.

The digests in ``golden_digests.json`` were recorded *before* the
hot-path refactor (typed dispatch, digest-only sinks, fused queue pops,
inlined step scheduling).  Every entry must still match byte-for-byte:
the refactor is licensed to change host-side cost only, never the
virtual-time event stream.  If an intentional semantic change ever
requires regenerating this file, that is a majorly breaking change to
every recorded ReproBundle — say so loudly in the commit.
"""

import json
import os

import pytest

from repro.explore.corpus import BUGGY, CLEAN
from repro.explore.explorer import default_plan_dicts, run_one

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_digests.json")

with open(GOLDEN) as fh:
    _DIGESTS = json.load(fh)

_PLANS = default_plan_dicts(3)


def _cases():
    for corpus in (BUGGY, CLEAN):
        for name, entry in corpus.items():
            for k in range(len(_PLANS)):
                yield name, entry, k


@pytest.mark.parametrize(
    "name,entry,k",
    [pytest.param(n, e, k, id=f"{n}/run{k}") for n, e, k in _cases()])
def test_digest_matches_golden(name, entry, k):
    factory = entry[0] if isinstance(entry, tuple) else entry
    result = run_one(factory, program=name, run_index=k, seed=k,
                     schedule_dict=_PLANS[k])
    assert result.digest == _DIGESTS[f"{name}/run{k}"], (
        f"trace digest for {name}/run{k} diverged from the "
        f"pre-refactor golden value — the event stream changed")


def test_golden_file_covers_all_cases():
    expected = {f"{n}/run{k}" for n, _, k in _cases()}
    assert set(_DIGESTS) == expected
