"""Explorer mechanics: determinism, serialization, replay, minimization.

The harness's core promise is that ``(seed, SchedulePlan, FaultPlan)``
is a complete name for an interleaving — everything here checks that
promise and the machinery built on it (repro bundles, delta-debugging).
"""

import json

from repro.explore.corpus import BUGGY
from repro.explore.explorer import (Explorer, ReproBundle, run_one,
                                    default_plan_dicts)
from repro.explore.minimize import failure_signature, minimize_schedule
from repro.sim.schedule import (PctPriorities, RandomPick, RandomPreempt,
                                SchedulePlan)

AGGRESSIVE = {"rules": [RandomPreempt(probability=0.3).to_dict(),
                        RandomPick(probability=0.4).to_dict()]}


class TestPlanSerialization:
    def test_round_trip_preserves_rules(self):
        plan = SchedulePlan([
            RandomPreempt(probability=0.25, ops=["acquire", "cell-*"],
                          max_count=9),
            RandomPick(probability=0.5),
            PctPriorities(change_every=11),
        ])
        clone = SchedulePlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()

    def test_dict_is_json_safe(self):
        plans = default_plan_dicts(25)
        assert plans[0] == {"rules": []}
        for d in plans:
            assert json.loads(json.dumps(d)) == d


class TestDeterminism:
    """Satellite: same (seed, SchedulePlan, FaultPlan) -> identical
    traces and findings, twice over."""

    def test_same_inputs_same_digest_and_findings(self):
        factory, _ = BUGGY["racy_counter"]
        kwargs = dict(program="racy_counter", seed=7,
                      schedule_dict=AGGRESSIVE)
        a = run_one(factory, **kwargs)
        b = run_one(factory, **kwargs)
        assert a.digest is not None
        assert a.digest == b.digest
        assert [f.to_dict() for f in a.findings] == \
            [f.to_dict() for f in b.findings]
        assert (a.events, a.points_seen, a.preemptions, a.fired) == \
            (b.events, b.points_seen, b.preemptions, b.fired)

    def test_with_faults_composed(self):
        from repro.sim.faults import FaultPlan, TimerJitter
        factory, _ = BUGGY["lost_wakeup"]
        faults = FaultPlan([TimerJitter(40.0, probability=0.5)]).to_dict()
        kwargs = dict(program="lost_wakeup", seed=5,
                      schedule_dict=AGGRESSIVE, faults_dict=faults)
        a = run_one(factory, **kwargs)
        b = run_one(factory, **kwargs)
        assert a.digest == b.digest

    def test_different_seed_different_interleaving(self):
        factory, _ = BUGGY["racy_counter"]
        a = run_one(factory, program="p", seed=1, schedule_dict=AGGRESSIVE)
        b = run_one(factory, program="p", seed=2, schedule_dict=AGGRESSIVE)
        assert a.digest != b.digest


class TestReproBundle:
    def _first_failure(self):
        factory, _ = BUGGY["racy_counter"]
        report = Explorer(factory, program="racy_counter", runs=8,
                          seed=1, stop_on_first=True).explore()
        failure = report.first_failure()
        assert failure is not None
        return factory, failure

    def test_bundle_replays_bit_for_bit(self):
        factory, failure = self._first_failure()
        bundle = failure.bundle()
        replay = bundle.replay(factory)
        assert replay.digest == bundle.digest
        assert {f.kind for f in replay.findings} == \
            {f["kind"] for f in bundle.findings}

    def test_bundle_survives_json(self, tmp_path):
        factory, failure = self._first_failure()
        path = tmp_path / "bundle.json"
        failure.bundle().dump(path)
        bundle = ReproBundle.load(path)
        replay = bundle.replay(factory)
        assert replay.digest == bundle.digest


class TestMinimize:
    def test_schedule_independent_bug_minimizes_to_nothing(self):
        # exit_holding_lock fails on every schedule, so ddmin's empty-set
        # shortcut must land on zero forced preemptions.
        factory, _ = BUGGY["exit_holding_lock"]
        result = run_one(factory, program="exit_holding_lock", seed=1,
                         schedule_dict=AGGRESSIVE)
        assert result.failed
        mini = minimize_schedule(factory, result)
        assert mini.reproduced
        assert mini.points == []

    def test_minimal_schedule_reproduces_signature(self):
        factory, _ = BUGGY["lost_wakeup"]
        report = Explorer(factory, program="lost_wakeup", runs=12,
                          seed=1, stop_on_first=True).explore()
        failure = report.first_failure()
        assert failure is not None
        mini = minimize_schedule(factory, failure)
        assert mini.reproduced
        assert mini.minimal_result is not None
        assert failure_signature(mini.minimal_result) & \
            failure_signature(failure)
        assert len(mini.points) <= len(failure.fired)


class TestRuntimeRegressions:
    """Bugs in the runtime itself that the harness flushed out; kept as
    schedule-replay regressions."""

    def test_database_workload_survives_preemption(self):
        # A slept waiter on a shared (futex-protocol) mutex used to
        # re-acquire with the uncontended state, erasing a second
        # sleeper's contended mark: exit then woke nobody and the second
        # sleeper slept forever.  Separately, a SIGWAITING falling into
        # the throttle window was dropped instead of deferred, stranding
        # a runnable thread whose every LWP was blocked.  Both wedged
        # this exact workload/schedule family.
        from repro.workloads import database
        plans = default_plan_dicts(10)
        for k in range(10):
            result = run_one(lambda: database.build()[0],
                             program="wl_database", run_index=k,
                             seed=1 + k, schedule_dict=plans[k])
            assert not result.failed, result.summary()


class TestParallelExploration:
    """Satellite: ``--jobs N`` must change wall-clock only, never
    results — every run is hermetic, so a process-pool fan-out and the
    serial loop produce identical reports."""

    def test_jobs_report_identical_to_serial(self):
        from repro.explore.registry import resolve
        ref = "buggy:racy_counter"
        kwargs = dict(program="racy_counter", runs=4, seed=3)
        serial = Explorer(resolve(ref), **kwargs).explore()
        parallel = Explorer(resolve(ref), jobs=2, factory_ref=ref,
                            **kwargs).explore()
        assert [r.bundle().to_dict() for r in serial.results] == \
            [r.bundle().to_dict() for r in parallel.results]
        assert [(r.events, r.points_seen, r.preemptions, r.fired)
                for r in serial.results] == \
            [(r.events, r.points_seen, r.preemptions, r.fired)
                for r in parallel.results]

    def test_registry_resolves_all_corpus_refs(self):
        from repro.explore.corpus import BUGGY, CLEAN
        from repro.explore.registry import resolve
        for kind, corpus in (("buggy", BUGGY), ("clean", CLEAN)):
            for name in corpus:
                assert callable(resolve(f"{kind}:{name}"))

    def test_registry_rejects_unknown(self):
        from repro.explore.registry import resolve
        import pytest
        with pytest.raises(KeyError):
            resolve("buggy:no_such_program")
