"""Tests for cv_timedwait (private and process-shared)."""

import pytest

from repro.runtime import mapped, unistd
from repro.sync import CondVar, Mutex, THREAD_SYNC_SHARED
from repro import threads
from tests.conftest import run_program


class TestPrivateTimedwait:
    def test_timeout_returns_false(self):
        got = []

        def main():
            m, cv = Mutex(), CondVar()
            yield from m.enter()
            t0 = yield from unistd.gettimeofday()
            ok = yield from cv.timedwait(m, 5_000)
            t1 = yield from unistd.gettimeofday()
            got.append((ok, (t1 - t0) / 1000))
            assert m.owner is not None  # mutex re-held
            yield from m.exit()

        run_program(main)
        ok, elapsed = got[0]
        assert ok is False
        assert elapsed >= 5_000

    def test_signal_before_timeout_returns_true(self):
        got = []

        def waiter(shared):
            m, cv = shared["m"], shared["cv"]
            yield from m.enter()
            ok = yield from cv.timedwait(m, 1_000_000)
            got.append(ok)
            yield from m.exit()

        def main():
            shared = {"m": Mutex(), "cv": CondVar()}
            tid = yield from threads.thread_create(
                waiter, shared, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            yield from shared["m"].enter()
            yield from shared["cv"].signal()
            yield from shared["m"].exit()
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == [True]

    def test_late_signal_not_lost_for_others(self):
        """A timeout consumes nothing: a signal after one waiter's
        timeout still wakes the next waiter."""
        order = []

        def quick_timeout(shared):
            m, cv = shared["m"], shared["cv"]
            yield from m.enter()
            ok = yield from cv.timedwait(m, 2_000)
            order.append(("timeout", ok))
            yield from m.exit()

        def patient(shared):
            m, cv = shared["m"], shared["cv"]
            yield from m.enter()
            while not shared["go"]:
                yield from cv.wait(m)
            order.append(("patient", True))
            yield from m.exit()

        def main():
            shared = {"m": Mutex(), "cv": CondVar(), "go": False}
            a = yield from threads.thread_create(
                quick_timeout, shared, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                patient, shared, flags=threads.THREAD_WAIT)
            yield from unistd.sleep_usec(10_000)  # a has timed out
            yield from shared["m"].enter()
            shared["go"] = True
            yield from shared["cv"].signal()
            yield from shared["m"].exit()
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        run_program(main, ncpus=2)
        assert ("timeout", False) in order
        assert ("patient", True) in order

    def test_bound_thread_timedwait(self):
        got = []

        def waiter(shared):
            m, cv = shared["m"], shared["cv"]
            yield from m.enter()
            ok = yield from cv.timedwait(m, 3_000)
            got.append(ok)
            yield from m.exit()

        def main():
            shared = {"m": Mutex(), "cv": CondVar()}
            tid = yield from threads.thread_create(
                waiter, shared,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got == [False]


class TestSharedTimedwait:
    def test_cross_process_timeout(self):
        got = []

        def main():
            region = yield from mapped.map_shared_file("/tmp/s", 4096)
            mx = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            cv = CondVar(THREAD_SYNC_SHARED, cell=region.cell(8))
            yield from mx.enter()
            t0 = yield from unistd.gettimeofday()
            ok = yield from cv.timedwait(mx, 4_000)
            t1 = yield from unistd.gettimeofday()
            got.append((ok, (t1 - t0) / 1000))
            yield from mx.exit()

        run_program(main)
        ok, elapsed = got[0]
        assert ok is False
        assert elapsed >= 4_000

    def test_cross_process_signal_beats_timeout(self):
        got = []

        def peer():
            region = yield from mapped.map_shared_file("/tmp/s", 4096)
            mx = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            cv = CondVar(THREAD_SYNC_SHARED, cell=region.cell(8))
            yield from unistd.sleep_usec(5_000)
            yield from mx.enter()
            region.cell(16).store(1)
            yield from cv.broadcast()
            yield from mx.exit()

        def main():
            region = yield from mapped.map_shared_file("/tmp/s", 4096)
            mx = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            cv = CondVar(THREAD_SYNC_SHARED, cell=region.cell(8))
            pid = yield from unistd.fork1(peer)
            yield from mx.enter()
            while region.cell(16).load() == 0:
                ok = yield from cv.timedwait(mx, 1_000_000)
                got.append(ok)
            yield from mx.exit()
            yield from unistd.waitpid(pid)

        run_program(main)
        assert got and got[0] is True
