"""Timed-wait parity: mutex_timedenter, sema_timedp, and the POSIX
pthread_mutex_timedlock veneer.

CondVar.timedwait existed alone for a while; these cover the rest of
the timed family in both the private and process-shared (cell/futex)
variants.
"""

from repro.pthreads.sync import (PthreadMutex, pthread_mutex_lock,
                                 pthread_mutex_timedlock,
                                 pthread_mutex_unlock)
from repro.runtime import libc, mapped, unistd
from repro.sync import Mutex, Semaphore, THREAD_SYNC_SHARED
from repro import threads
from tests.conftest import run_program


class TestMutexTimedenter:
    def test_uncontended_acquires_immediately(self):
        got = []

        def main():
            m = Mutex(name="m")
            ok = yield from m.timedenter(1_000)
            got.append(ok)
            yield from m.exit()

        run_program(main)
        assert got == [True]

    def test_timeout_when_held(self):
        got = []

        def holder(m):
            yield from m.enter()
            yield from libc.compute(50_000)
            yield from m.exit()

        def main():
            m = Mutex(name="m")
            tid = yield from threads.thread_create(
                holder, m, flags=threads.THREAD_WAIT
                | threads.THREAD_BIND_LWP)
            yield from libc.compute(1_000)    # let the holder take it
            t0 = yield from unistd.gettimeofday()
            ok = yield from m.timedenter(5_000)
            t1 = yield from unistd.gettimeofday()
            got.append((ok, (t1 - t0) / 1000))
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        ok, elapsed = got[0]
        assert ok is False
        assert 5_000 <= elapsed < 50_000

    def test_acquires_when_released_in_time(self):
        got = []

        def holder(m):
            yield from m.enter()
            yield from libc.compute(2_000)
            yield from m.exit()

        def main():
            m = Mutex(name="m")
            tid = yield from threads.thread_create(
                holder, m, flags=threads.THREAD_WAIT
                | threads.THREAD_BIND_LWP)
            yield from libc.compute(500)      # let the holder take it
            ok = yield from m.timedenter(1_000_000)
            got.append((ok, m.owner is not None))
            yield from m.exit()
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got == [(True, True)]

    def test_shared_variant_times_out_and_recovers(self):
        got = []

        def main():
            region = yield from mapped.map_anon_shared(4096)
            cell = region.cell(0)

            def holder(_):
                m = Mutex(THREAD_SYNC_SHARED, cell=cell, name="sm")
                yield from m.enter()
                yield from libc.compute(20_000)
                yield from m.exit()

            tid = yield from threads.thread_create(
                holder, None, flags=threads.THREAD_WAIT
                | threads.THREAD_BIND_LWP)
            yield from libc.compute(1_000)
            m = Mutex(THREAD_SYNC_SHARED, cell=cell, name="sm")
            ok1 = yield from m.timedenter(2_000)
            got.append(ok1)                    # too early: timeout
            ok2 = yield from m.timedenter(1_000_000)
            got.append(ok2)                    # after release: acquired
            yield from m.exit()
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got == [False, True]


class TestSemaTimedp:
    def test_timeout_on_empty_semaphore(self):
        got = []

        def main():
            s = Semaphore(0, name="s")
            t0 = yield from unistd.gettimeofday()
            ok = yield from s.timedp(3_000)
            t1 = yield from unistd.gettimeofday()
            got.append((ok, (t1 - t0) / 1000))

        run_program(main)
        ok, elapsed = got[0]
        assert ok is False
        assert elapsed >= 3_000

    def test_v_before_deadline_acquires(self):
        got = []

        def poker(s):
            yield from libc.compute(2_000)
            yield from s.v()

        def main():
            s = Semaphore(0, name="s")
            tid = yield from threads.thread_create(
                poker, s, flags=threads.THREAD_WAIT)
            ok = yield from s.timedp(1_000_000)
            got.append((ok, s.value))
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == [(True, 0)]

    def test_shared_variant_timeout(self):
        got = []

        def main():
            region = yield from mapped.map_anon_shared(4096)
            s = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(0),
                          name="ss")
            ok = yield from s.timedp(3_000)
            got.append(ok)
            yield from s.v()
            ok = yield from s.timedp(3_000)
            got.append(ok)

        run_program(main)
        assert got == [False, True]


class TestPthreadMutexTimedlock:
    def test_posix_veneer_returns_0_or_etimedout(self):
        from repro.errors import Errno
        got = []

        def holder(m):
            yield from pthread_mutex_lock(m)
            yield from libc.compute(30_000)
            yield from pthread_mutex_unlock(m)

        def main():
            m = PthreadMutex()
            tid = yield from threads.thread_create(
                holder, m, flags=threads.THREAD_WAIT
                | threads.THREAD_BIND_LWP)
            yield from libc.compute(1_000)    # let the holder take it
            got.append((yield from pthread_mutex_timedlock(m, 4_000)))
            got.append((yield from pthread_mutex_timedlock(m, 1_000_000)))
            yield from pthread_mutex_unlock(m)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got == [Errno.ETIMEDOUT, 0]
