"""Tests for process-shared synchronization through mapped files — the
paper's Figure 1 and its database-record example."""

import pytest

from repro.errors import SyncError
from repro.hw.isa import Charge
from repro.runtime import libc, mapped, unistd
from repro.sync import (CondVar, Mutex, RwLock, RW_READER, RW_WRITER,
                        Semaphore, SharedCell, THREAD_SYNC_SHARED)
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


class TestConstruction:
    def test_shared_variant_requires_cell(self):
        with pytest.raises(SyncError):
            Mutex(THREAD_SYNC_SHARED)

    def test_cell_without_shared_flag_rejected(self):
        from repro.hw.memory import MemoryObject
        cell = SharedCell(MemoryObject(4096), 0)
        with pytest.raises(SyncError):
            Mutex(cell=cell)

    def test_zero_cell_is_valid_initial_state(self):
        """A zeroed cell in a fresh file is an unlocked mutex / empty
        semaphore, per the zero-init rule."""
        got = []

        def main():
            region = yield from mapped.map_shared_file("/tmp/s", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            got.append(m.held)
            yield from m.enter()
            got.append(m.held)
            yield from m.exit()

        run_program(main)
        assert got == [False, True]


class TestCrossProcessMutex:
    def test_lock_excludes_other_process(self):
        """"if any thread within any process mapping the file attempts to
        acquire the lock that thread will block until the lock is
        released"."""
        timeline = []

        def peer():
            region = yield from mapped.map_shared_file("/tmp/db", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            yield from m.enter()
            t = yield from unistd.gettimeofday()
            timeline.append(("peer-acquired", t))
            yield from m.exit()

        def main():
            region = yield from mapped.map_shared_file("/tmp/db", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            yield from m.enter()
            pid = yield from unistd.fork1(peer)
            yield from unistd.sleep_usec(50_000)  # hold across the fork
            t = yield from unistd.gettimeofday()
            timeline.append(("parent-releasing", t))
            yield from m.exit()
            yield from unistd.waitpid(pid)

        run_program(main)
        events = dict(timeline)
        assert events["peer-acquired"] >= events["parent-releasing"]

    def test_different_virtual_addresses_same_lock(self):
        """Mappings at different vaddrs still reach the same variable."""
        got = {}

        def main():
            region1 = yield from mapped.map_shared_file("/tmp/db", 4096)
            region2 = yield from mapped.map_shared_file("/tmp/db", 4096)
            got["different_vaddr"] = region1.vaddr != region2.vaddr
            m1 = Mutex(THREAD_SYNC_SHARED, cell=region1.cell(0))
            m2 = Mutex(THREAD_SYNC_SHARED, cell=region2.cell(0))
            yield from m1.enter()
            got["m2_sees_locked"] = m2.held
            got["try_m2"] = yield from m2.tryenter()
            yield from m1.exit()

        run_program(main)
        assert got == {"different_vaddr": True, "m2_sees_locked": True,
                       "try_m2": False}

    def test_lock_outlives_creating_process(self):
        """"Synchronization variables can also be placed in files and
        have lifetimes beyond that of the creating process."""
        got = {}

        def creator():
            region = yield from mapped.map_shared_file("/tmp/db", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            yield from m.enter()
            # Exits while holding the lock (a bug in the creator, but the
            # variable persists in the file).

        def main():
            pid = yield from unistd.fork1(creator)
            yield from unistd.waitpid(pid)
            region = yield from mapped.map_shared_file("/tmp/db", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            got["still_locked"] = m.held

        run_program(main)
        assert got["still_locked"]


class TestCrossProcessSemaphoreCv:
    def test_semaphore_ping_pong(self):
        rounds = []

        def peer():
            region = yield from mapped.map_shared_file("/tmp/s", 4096)
            s1 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(0))
            s2 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(8))
            for _ in range(10):
                yield from s2.p()
                yield from s1.v()

        def main():
            region = yield from mapped.map_shared_file("/tmp/s", 4096)
            s1 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(0))
            s2 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(8))
            pid = yield from unistd.fork1(peer)
            for _ in range(10):
                yield from s2.v()
                yield from s1.p()
                rounds.append(1)
            yield from unistd.waitpid(pid)

        run_program(main)
        assert len(rounds) == 10

    def test_shared_condvar_signals_across_processes(self):
        got = []

        def waiter_proc():
            region = yield from mapped.map_shared_file("/tmp/s", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            cv = CondVar(THREAD_SYNC_SHARED, cell=region.cell(8))
            data = region.cell(16)
            yield from m.enter()
            while data.load() == 0:
                yield from cv.wait(m)
            yield from m.exit()
            yield from unistd.exit(data.load())

        def main():
            region = yield from mapped.map_shared_file("/tmp/s", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            cv = CondVar(THREAD_SYNC_SHARED, cell=region.cell(8))
            data = region.cell(16)
            pid = yield from unistd.fork1(waiter_proc)
            yield from unistd.sleep_usec(20_000)
            yield from m.enter()
            data.store(55)
            yield from cv.broadcast()
            yield from m.exit()
            got.append((yield from unistd.waitpid(pid)))

        run_program(main)
        assert got[0][1] == 55


class TestDatabaseRecordPattern:
    def test_record_counters_consistent_under_contention(self):
        """Two processes x two threads hammering the same records through
        in-file locks: every increment must survive."""
        TXNS = 8
        RECORDS = 2

        def worker_proc(idx):
            region = yield from mapped.map_shared_file("/tmp/db", 4096)

            def txn_thread(t):
                import random
                rng = random.Random(f"{idx}/{t}")
                for _ in range(TXNS):
                    r = rng.randrange(RECORDS)
                    m = Mutex(THREAD_SYNC_SHARED,
                              cell=region.cell(r * 64))
                    yield from m.enter()
                    counter = region.mobj.load_cell(r * 64 + 8)
                    yield from libc.compute(20)
                    region.mobj.store_cell(r * 64 + 8, counter + 1)
                    yield from m.exit()

            tids = []
            for t in range(2):
                tid = yield from threads.thread_create(
                    txn_thread, t, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        def main():
            region = yield from mapped.map_shared_file("/tmp/db", 4096)
            pids = []
            for i in range(2):
                pid = yield from unistd.fork1(worker_proc, i)
                pids.append(pid)
            for pid in pids:
                yield from unistd.waitpid(pid)
            total = sum(region.mobj.load_cell(r * 64 + 8)
                        for r in range(RECORDS))
            assert total == 2 * 2 * TXNS

        run_program(main, ncpus=2)

    def test_shared_rwlock_across_processes(self):
        got = []

        def reader_proc():
            region = yield from mapped.map_shared_file("/tmp/db", 4096)
            rw = RwLock(THREAD_SYNC_SHARED,
                        cells=(region.cell(0), region.cell(8),
                               region.cell(16), region.cell(24)))
            yield from rw.enter(RW_READER)
            yield from unistd.sleep_usec(1_000)
            yield from rw.exit()

        def main():
            region = yield from mapped.map_shared_file("/tmp/db", 4096)
            rw = RwLock(THREAD_SYNC_SHARED,
                        cells=(region.cell(0), region.cell(8),
                               region.cell(16), region.cell(24)))
            pid = yield from unistd.fork1(reader_proc)
            yield from unistd.sleep_usec(5_000)
            yield from rw.enter(RW_WRITER)
            got.append("writer-in")
            yield from rw.exit()
            yield from unistd.waitpid(pid)

        run_program(main)
        assert got == ["writer-in"]
