"""Tests for synchronization variants: spin, adaptive, debug."""

import pytest

from repro.errors import SyncError
from repro.hw.isa import Charge
from repro.sync import (Mutex, SYNC_ADAPTIVE, SYNC_DEBUG, SYNC_SPIN)
from repro import threads
from repro.runtime import unistd
from repro.sim.clock import usec
from tests.conftest import run_program


class TestSpin:
    def test_spin_mutex_acquires_when_holder_on_other_cpu(self):
        """Spinning is sane on a multiprocessor: the holder releases on
        the other CPU while we burn cycles."""
        got = []

        def holder(m):
            yield from m.enter()
            yield Charge(usec(2_000))
            yield from m.exit()

        def main():
            m = Mutex(SYNC_SPIN)
            tid = yield from threads.thread_create(
                holder, m,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from unistd.sleep_usec(500)  # holder definitely holds
            yield from m.enter()               # spin until it releases
            got.append(m.spins > 0)
            yield from m.exit()
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got == [True]

    def test_spin_time_charged(self):
        """The spinner's CPU time reflects the wait — spin waiting is not
        free, which is why the default sleeps."""
        got = {}

        def holder(m):
            yield from m.enter()
            yield Charge(usec(3_000))
            yield from m.exit()

        def main():
            m = Mutex(SYNC_SPIN)
            tid = yield from threads.thread_create(
                holder, m,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from unistd.sleep_usec(500)
            before = yield from unistd.getrusage(1)  # RUSAGE_LWP
            yield from m.enter()
            after = yield from unistd.getrusage(1)
            yield from m.exit()
            got["spin_ns"] = after["user_ns"] - before["user_ns"]
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got["spin_ns"] >= usec(1_000)


class TestAdaptive:
    def test_adaptive_spins_while_owner_running(self):
        def holder(m):
            yield from m.enter()
            yield Charge(usec(1_000))
            yield from m.exit()

        def main():
            m = Mutex(SYNC_ADAPTIVE)
            tid = yield from threads.thread_create(
                holder, m,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from unistd.sleep_usec(200)
            yield from m.enter()  # owner on CPU -> spin
            assert m.spins > 0
            yield from m.exit()
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)

    def test_adaptive_sleeps_when_owner_not_running(self):
        """When the holder is itself blocked, spinning would be futile;
        adaptive falls back to sleeping."""
        def holder(m):
            yield from m.enter()
            yield from unistd.sleep_usec(3_000)  # off-CPU while holding
            yield from m.exit()

        def main():
            m = Mutex(SYNC_ADAPTIVE)
            tid = yield from threads.thread_create(
                holder, m,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from unistd.sleep_usec(500)
            yield from m.enter()
            # We slept rather than spun: zero (or few) spin polls.
            assert m.spins <= 2
            yield from m.exit()
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)


class TestDebug:
    def test_debug_detects_recursive_enter(self):
        def main():
            m = Mutex(SYNC_DEBUG)
            yield from m.enter()
            with pytest.raises(SyncError, match="recursive"):
                yield from m.enter()
            yield from m.exit()

        run_program(main)

    def test_plain_mutex_self_deadlocks_instead(self):
        """Without the debug variant, recursive enter is the classic
        self-deadlock (detected here by the engine's deadlock probe)."""
        from repro.errors import DeadlockError

        def main():
            m = Mutex()
            yield from m.enter()
            yield from m.enter()  # deadlock

        with pytest.raises(DeadlockError):
            run_program(main)
