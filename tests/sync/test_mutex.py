"""Tests for mutex locks: mutual exclusion, bracketing, handoff,
tryenter, and the no-kernel-entry property for uncontended use."""

import pytest

from repro.errors import SyncError
from repro.hw.isa import Charge
from repro.runtime import unistd
from repro.sync import Mutex
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


class TestBasics:
    def test_enter_exit(self):
        def main():
            m = Mutex()
            yield from m.enter()
            assert m.held
            yield from m.exit()
            assert not m.held

        run_program(main)

    def test_exit_without_enter_raises(self):
        """"it is an error for a thread to release a lock not held by the
        thread" — strictly bracketing."""
        def main():
            m = Mutex()
            with pytest.raises(SyncError):
                yield from m.exit()

        run_program(main)

    def test_exit_by_non_owner_raises(self):
        def main():
            m = Mutex()
            yield from m.enter()

            def thief(_):
                with pytest.raises(SyncError):
                    yield from m.exit()

            tid = yield from threads.thread_create(
                thief, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            yield from m.exit()

        run_program(main)

    def test_tryenter(self):
        got = []

        def main():
            m = Mutex()
            got.append((yield from m.tryenter()))
            got.append((yield from m.tryenter()))  # already held by us
            yield from m.exit()

        run_program(main)
        assert got == [True, False]

    def test_zero_init_default_usable(self):
        """"Any synchronization variable that is statically or dynamically
        allocated as zero may be used immediately."""
        def main():
            m = Mutex()  # no explicit init parameters at all
            yield from m.enter()
            yield from m.exit()

        sim, proc = run_program(main)
        assert proc.exit_status == 0


class TestContention:
    def test_mutual_exclusion(self):
        """The invariant: never two threads in the critical section."""
        state = {"inside": 0, "max_inside": 0, "entries": 0}

        def worker(m):
            for _ in range(5):
                yield from m.enter()
                state["inside"] += 1
                state["max_inside"] = max(state["max_inside"],
                                          state["inside"])
                state["entries"] += 1
                yield Charge(usec(50))
                yield from threads.thread_yield()
                state["inside"] -= 1
                yield from m.exit()

        def main():
            m = Mutex()
            tids = []
            for _ in range(4):
                tid = yield from threads.thread_create(
                    worker, m, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert state["max_inside"] == 1
        assert state["entries"] == 20

    def test_fifo_handoff(self):
        """Waiters receive the lock in arrival order (no barging)."""
        order = []

        def worker(args):
            m, tag = args
            yield from m.enter()
            order.append(tag)
            yield from m.exit()

        def main():
            m = Mutex()
            yield from m.enter()
            tids = []
            for tag in ("a", "b", "c"):
                tid = yield from threads.thread_create(
                    worker, (m, tag), flags=threads.THREAD_WAIT)
                tids.append(tid)
                yield from threads.thread_yield()  # let it block in order
            yield from m.exit()
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main)
        assert order == ["a", "b", "c"]

    def test_contended_tryenter_fails_without_blocking(self):
        got = []

        def main():
            m = Mutex()
            yield from m.enter()

            def prober(_):
                t0 = yield from unistd.gettimeofday()
                ok = yield from m.tryenter()
                t1 = yield from unistd.gettimeofday()
                got.append((ok, (t1 - t0) / 1000))

            tid = yield from threads.thread_create(
                prober, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            yield from m.exit()

        run_program(main)
        ok, elapsed = got[0]
        assert not ok
        assert elapsed < 100  # did not wait for the lock

    def test_statistics(self):
        def main():
            m = Mutex()
            yield from m.enter()

            def contender(_):
                yield from m.enter()
                yield from m.exit()

            tid = yield from threads.thread_create(
                contender, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            yield from m.exit()
            yield from threads.thread_wait(tid)
            assert m.acquisitions == 2
            assert m.contended >= 1

        run_program(main)


class TestKernelAvoidance:
    def test_uncontended_mutex_never_enters_kernel(self):
        """The heart of the paper: same-process synchronization without
        crossing the protection boundary."""
        def main():
            m = Mutex()
            for _ in range(100):
                yield from m.enter()
                yield from m.exit()

        sim, _ = run_program(main)
        counts = sim.syscall_counts()
        assert set(counts) <= {"exit"}  # only the final process exit

    def test_contended_unbound_threads_stay_in_user_mode(self):
        """Even contended hand-off between unbound threads on one LWP
        needs no kernel call."""
        def worker(m):
            for _ in range(10):
                yield from m.enter()
                yield from threads.thread_yield()
                yield from m.exit()

        def main():
            m = Mutex()
            a = yield from threads.thread_create(
                worker, m, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                worker, m, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        sim, _ = run_program(main)
        counts = sim.syscall_counts()
        assert "lwp_park" not in counts
        assert "lwp_unpark" not in counts
