"""Tests for the layered coordination structures."""

import pytest

from repro.errors import SyncError
from repro.runtime import unistd
from repro.sync.structures import Barrier, BoundedQueue, Latch
from repro import threads
from tests.conftest import run_program


class TestBarrier:
    def test_all_parties_released_together(self):
        phases = []

        def worker(args):
            barrier, tag = args
            phases.append(("before", tag))
            yield from barrier.wait()
            phases.append(("after", tag))

        def main():
            barrier = Barrier(3)
            tids = []
            for tag in range(3):
                tid = yield from threads.thread_create(
                    worker, (barrier, tag), flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main)
        kinds = [k for k, _ in phases]
        # All befores strictly precede all afters.
        assert kinds.index("after") == 3

    def test_exactly_one_serial_thread(self):
        serial = []

        def worker(barrier):
            was_serial = yield from barrier.wait()
            if was_serial:
                serial.append(1)

        def main():
            barrier = Barrier(4)
            tids = []
            for _ in range(4):
                tid = yield from threads.thread_create(
                    worker, barrier, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert serial == [1]

    def test_cyclic_reuse(self):
        def worker(barrier):
            for _ in range(3):
                yield from barrier.wait()

        def main():
            barrier = Barrier(2)
            a = yield from threads.thread_create(
                worker, barrier, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                worker, barrier, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)
            assert barrier.cycles_completed == 3

        run_program(main)

    def test_invalid_parties(self):
        with pytest.raises(SyncError):
            Barrier(0)


class TestBoundedQueue:
    def test_fifo_order(self):
        got = []

        def main():
            q = BoundedQueue(4)
            for i in range(3):
                yield from q.put(i)
            for _ in range(3):
                got.append((yield from q.get()))

        run_program(main)
        assert got == [0, 1, 2]

    def test_put_blocks_when_full(self):
        order = []

        def producer(q):
            for i in range(4):
                yield from q.put(i)
                order.append(("put", i))

        def main():
            q = BoundedQueue(2)
            tid = yield from threads.thread_create(
                producer, q, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            # Producer is stuck after 2 puts.
            assert [o for o in order if o[0] == "put"] == [
                ("put", 0), ("put", 1)]
            order.append(("get", (yield from q.get())))
            yield from threads.thread_yield()
            order.append(("get", (yield from q.get())))
            yield from threads.thread_yield()
            yield from q.get()
            yield from q.get()
            yield from threads.thread_wait(tid)
            assert q.put_blocks >= 1

        run_program(main)

    def test_close_drains_then_sentinel(self):
        got = []

        def consumer(q):
            while True:
                item = yield from q.get()
                if item is q.sentinel:
                    return
                got.append(item)

        def main():
            q = BoundedQueue(8, sentinel="EOF")
            tid = yield from threads.thread_create(
                consumer, q, flags=threads.THREAD_WAIT)
            for i in range(3):
                yield from q.put(i)
            yield from q.close()
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == [0, 1, 2]

    def test_put_on_closed_raises(self):
        def main():
            q = BoundedQueue(2)
            yield from q.close()
            with pytest.raises(SyncError):
                yield from q.put(1)

        run_program(main)

    def test_pipeline_throughput(self):
        """3-stage pipeline across bounded queues: items conserved."""
        out = []

        def stage(args):
            src, dst = args
            while True:
                item = yield from src.get()
                if item is None:
                    if dst is not None:
                        yield from dst.close()
                    return
                result = item * 2
                if dst is not None:
                    yield from dst.put(result)
                else:
                    out.append(result)

        def main():
            q1, q2 = BoundedQueue(2), BoundedQueue(2)
            t1 = yield from threads.thread_create(
                stage, (q1, q2), flags=threads.THREAD_WAIT)
            t2 = yield from threads.thread_create(
                stage, (q2, None), flags=threads.THREAD_WAIT)
            for i in range(10):
                yield from q1.put(i)
            yield from q1.close()
            yield from threads.thread_wait(t1)
            yield from threads.thread_wait(t2)

        run_program(main, ncpus=2)
        assert sorted(out) == [i * 4 for i in range(10)]


class TestLatch:
    def test_await_until_zero(self):
        order = []

        def worker(latch):
            order.append("work")
            yield from latch.count_down()

        def main():
            latch = Latch(3)
            for _ in range(3):
                yield from threads.thread_create(worker, latch)
            yield from latch.await_zero()
            order.append("released")

        run_program(main)
        assert order == ["work", "work", "work", "released"]

    def test_zero_latch_passes_immediately(self):
        def main():
            latch = Latch(0)
            yield from latch.await_zero()

        sim, proc = run_program(main)
        assert proc.exit_status == 0

    def test_extra_count_down_harmless(self):
        def main():
            latch = Latch(1)
            yield from latch.count_down()
            yield from latch.count_down()
            yield from latch.await_zero()

        run_program(main)
