"""Tests for counting semaphores."""

import pytest

from repro.errors import SyncError
from repro.sync import Semaphore
from repro import threads
from tests.conftest import run_program


class TestCounting:
    def test_initial_count_consumed_without_blocking(self):
        def main():
            s = Semaphore(2)
            yield from s.p()
            yield from s.p()
            assert s.value == 0

        run_program(main)

    def test_negative_count_rejected(self):
        with pytest.raises(SyncError):
            Semaphore(-1)

    def test_v_then_p(self):
        def main():
            s = Semaphore()
            yield from s.v()
            yield from s.v()
            assert s.value == 2
            yield from s.p()
            assert s.value == 1

        run_program(main)

    def test_tryp(self):
        got = []

        def main():
            s = Semaphore(1)
            got.append((yield from s.tryp()))
            got.append((yield from s.tryp()))

        run_program(main)
        assert got == [True, False]

    def test_p_blocks_until_v(self):
        order = []

        def waiter(s):
            order.append("waiting")
            yield from s.p()
            order.append("resumed")

        def main():
            s = Semaphore()
            tid = yield from threads.thread_create(
                waiter, s, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            order.append("posting")
            yield from s.v()
            yield from threads.thread_wait(tid)

        run_program(main)
        assert order == ["waiting", "posting", "resumed"]

    def test_handoff_does_not_inflate_count(self):
        """V with a waiter hands the unit over directly; the count stays
        zero."""
        def waiter(s):
            yield from s.p()

        def main():
            s = Semaphore()
            tid = yield from threads.thread_create(
                waiter, s, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            yield from s.v()
            yield from threads.thread_wait(tid)
            assert s.value == 0

        run_program(main)


class TestAsyncUse:
    def test_usable_from_signal_handler(self):
        """"they may be used for asynchronous event notification (e.g. in
        signal handlers)" — a handler can sema_v without bracketing."""
        from repro.kernel.signals import Sig
        from repro.runtime import unistd
        got = []

        def main():
            s = Semaphore()

            def handler(sig):
                yield from s.v()

            def waiter(_):
                yield from s.p()
                got.append("event received")

            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            tid = yield from threads.thread_create(
                waiter, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            me = yield from unistd.getpid()
            yield from unistd.kill(me, int(Sig.SIGUSR1))
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == ["event received"]

    def test_pingpong_conserves_tokens(self):
        """The Figure 6 structure, checked for correctness rather than
        time: every v is matched by exactly one completed p."""
        state = {"rounds": 0}

        def peer(pair):
            s1, s2 = pair
            for _ in range(25):
                yield from s2.p()
                yield from s1.v()

        def main():
            s1, s2 = Semaphore(), Semaphore()
            tid = yield from threads.thread_create(
                peer, (s1, s2), flags=threads.THREAD_WAIT)
            for _ in range(25):
                yield from s2.v()
                yield from s1.p()
                state["rounds"] += 1
            yield from threads.thread_wait(tid)
            assert s1.value == 0 and s2.value == 0

        run_program(main)
        assert state["rounds"] == 25

    def test_many_waiters_fifo(self):
        order = []

        def waiter(args):
            s, tag = args
            yield from s.p()
            order.append(tag)

        def main():
            s = Semaphore()
            tids = []
            for tag in range(4):
                tid = yield from threads.thread_create(
                    waiter, (s, tag), flags=threads.THREAD_WAIT)
                tids.append(tid)
                yield from threads.thread_yield()
            for _ in range(4):
                yield from s.v()
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main)
        assert order == [0, 1, 2, 3]

    def test_stats(self):
        def main():
            s = Semaphore(1)
            yield from s.p()
            yield from s.v()
            assert s.p_ops == 1
            assert s.v_ops == 1
            assert s.blocks == 0

        run_program(main)
