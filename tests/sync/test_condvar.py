"""Tests for condition variables: the monitor pattern, signal/broadcast,
no lost wakeups, mutex requirement."""

import pytest

from repro.errors import SyncError
from repro.runtime import unistd
from repro.sync import CondVar, Mutex
from repro import threads
from tests.conftest import run_program


class TestMonitorPattern:
    def test_paper_usage_loop(self):
        """The exact pattern from the paper: while (cond) cv_wait."""
        got = []

        def consumer(shared):
            m, cv = shared["m"], shared["cv"]
            yield from m.enter()
            while not shared["ready"]:
                yield from cv.wait(m)
            got.append(shared["data"])
            yield from m.exit()

        def main():
            shared = {"m": Mutex(), "cv": CondVar(), "ready": False,
                      "data": None}
            tid = yield from threads.thread_create(
                consumer, shared, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            yield from shared["m"].enter()
            shared["data"] = "payload"
            shared["ready"] = True
            yield from shared["cv"].signal()
            yield from shared["m"].exit()
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == ["payload"]

    def test_wait_without_mutex_raises(self):
        def main():
            m, cv = Mutex(), CondVar()
            with pytest.raises(SyncError):
                yield from cv.wait(m)

        run_program(main)

    def test_wait_releases_mutex_while_sleeping(self):
        observed = []

        def waiter(shared):
            m, cv = shared["m"], shared["cv"]
            yield from m.enter()
            while not shared["go"]:
                yield from cv.wait(m)
            yield from m.exit()

        def main():
            shared = {"m": Mutex(), "cv": CondVar(), "go": False}
            tid = yield from threads.thread_create(
                waiter, shared, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            # The waiter sleeps; we must be able to take the mutex.
            observed.append((yield from shared["m"].tryenter()))
            shared["go"] = True
            yield from shared["cv"].signal()
            yield from shared["m"].exit()
            yield from threads.thread_wait(tid)

        run_program(main)
        assert observed == [True]

    def test_wait_reacquires_before_returning(self):
        def waiter(shared):
            m, cv = shared["m"], shared["cv"]
            yield from m.enter()
            while not shared["go"]:
                yield from cv.wait(m)
            # We must hold the mutex here.
            assert m.owner is (yield from threads.current_thread())
            yield from m.exit()

        def main():
            shared = {"m": Mutex(), "cv": CondVar(), "go": False}
            tid = yield from threads.thread_create(
                waiter, shared, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            yield from shared["m"].enter()
            shared["go"] = True
            yield from shared["cv"].signal()
            yield from shared["m"].exit()
            yield from threads.thread_wait(tid)

        run_program(main)


class TestSignalBroadcast:
    def _waiters_program(self, n, use_broadcast):
        woken = []

        def waiter(shared):
            m, cv = shared["m"], shared["cv"]
            yield from m.enter()
            while shared["tokens"] == 0:
                yield from cv.wait(m)
            shared["tokens"] -= 1
            woken.append(1)
            yield from m.exit()

        def main():
            shared = {"m": Mutex(), "cv": CondVar(), "tokens": 0}
            tids = []
            for _ in range(n):
                tid = yield from threads.thread_create(
                    waiter, shared, flags=threads.THREAD_WAIT)
                tids.append(tid)
                yield from threads.thread_yield()
            yield from shared["m"].enter()
            shared["tokens"] = n if use_broadcast else 1
            if use_broadcast:
                yield from shared["cv"].broadcast()
            else:
                yield from shared["cv"].signal()
            yield from shared["m"].exit()
            if use_broadcast:
                for tid in tids:
                    yield from threads.thread_wait(tid)
            else:
                yield from threads.thread_wait(None)

        return main, woken

    def test_signal_wakes_exactly_one(self):
        main, woken = self._waiters_program(3, use_broadcast=False)
        run_program(main, check_deadlock=False)
        assert len(woken) == 1

    def test_broadcast_wakes_all(self):
        main, woken = self._waiters_program(3, use_broadcast=True)
        run_program(main)
        assert len(woken) == 3

    def test_signal_with_no_waiters_is_lost(self):
        """Condition variables are stateless: signals do not accumulate
        (that is what semaphores are for)."""
        def main():
            m, cv = Mutex(), CondVar()
            yield from cv.signal()  # nobody waiting: evaporates
            # A later waiter must NOT see that signal; use a timed check:
            got = {"woke": False}

            def waiter(_):
                yield from m.enter()
                while not got["woke"]:
                    yield from cv.wait(m)
                yield from m.exit()

            yield from threads.thread_create(waiter, None)
            yield from threads.thread_yield()
            # Waiter is asleep; release it properly so the test ends.
            yield from m.enter()
            got["woke"] = True
            yield from cv.broadcast()
            yield from m.exit()
            yield from threads.thread_yield()

        sim, proc = run_program(main)
        assert proc.exit_status == 0


class TestNoLostWakeup:
    def test_producer_consumer_many_items(self):
        """A classic bounded-buffer run: all items arrive exactly once."""
        received = []

        def producer(shared):
            for i in range(30):
                yield from shared["m"].enter()
                shared["queue"].append(i)
                yield from shared["cv"].signal()
                yield from shared["m"].exit()
                if i % 3 == 0:
                    yield from threads.thread_yield()

        def consumer(shared):
            while len(received) < 30:
                yield from shared["m"].enter()
                while not shared["queue"]:
                    yield from shared["cv"].wait(shared["m"])
                received.append(shared["queue"].pop(0))
                yield from shared["m"].exit()

        def main():
            shared = {"m": Mutex(), "cv": CondVar(), "queue": []}
            c = yield from threads.thread_create(
                consumer, shared, flags=threads.THREAD_WAIT)
            p = yield from threads.thread_create(
                producer, shared, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(p)
            yield from threads.thread_wait(c)

        run_program(main, ncpus=2)
        assert received == list(range(30))

    def test_two_consumers_split_work(self):
        received = []

        def consumer(shared):
            while True:
                yield from shared["m"].enter()
                while not shared["queue"]:
                    yield from shared["cv"].wait(shared["m"])
                item = shared["queue"].pop(0)
                yield from shared["m"].exit()
                if item is None:
                    return
                received.append(item)

        def main():
            shared = {"m": Mutex(), "cv": CondVar(), "queue": []}
            tids = []
            for _ in range(2):
                tid = yield from threads.thread_create(
                    consumer, shared, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for i in range(20):
                yield from shared["m"].enter()
                shared["queue"].append(i)
                yield from shared["cv"].signal()
                yield from shared["m"].exit()
                yield from threads.thread_yield()
            for _ in tids:
                yield from shared["m"].enter()
                shared["queue"].append(None)
                yield from shared["cv"].signal()
                yield from shared["m"].exit()
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert sorted(received) == list(range(20))
