"""Runtime backstop for undriven sync generators (lint rule L101).

With the guard enabled, building ``m.enter()`` and dropping it without
``yield from`` must be noticed at GC time; with it disabled the sync
APIs hand back plain generators with zero wrapping.
"""

import gc
import types
import warnings

import pytest

from repro.errors import SyncError
from repro.sync import CondVar, Mutex, RwLock, Semaphore
from repro.sync import guards


@pytest.fixture
def guard():
    guards.enable()
    guards.reset()
    yield guards
    guards.disable()
    guards.reset()


def _collect():
    gc.collect()


class TestDisabled:
    def test_returns_plain_generator(self):
        assert not guards.enabled()
        gen = Mutex(name="m").enter()
        assert isinstance(gen, types.GeneratorType)
        gen.close()

    def test_no_violations_recorded(self):
        gen = Mutex(name="m").enter()
        del gen
        _collect()
        assert guards.violations() == []
        guards.check()


class TestEnabled:
    def test_undriven_generator_is_a_violation(self, guard):
        with pytest.warns(RuntimeWarning, match="never[ \n]+driven"):
            gen = Mutex(name="forgotten").enter()
            del gen
            _collect()
        violations = guard.violations()
        assert len(violations) == 1
        assert "Mutex(forgotten).enter" in violations[0]
        with pytest.raises(SyncError, match="yield from"):
            guard.check()

    def test_every_primitive_is_guarded(self, guard):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for build in (Mutex(name="m").enter,
                          Mutex(name="m").exit,
                          CondVar(name="cv").signal,
                          Semaphore(1, name="s").p,
                          RwLock(name="rw").exit):
                gen = build()
                del gen
                _collect()
        labels = "".join(guard.violations())
        for fragment in ("Mutex(m).enter", "Mutex(m).exit",
                         "CondVar(cv).signal", "Semaphore(s).p",
                         "RwLock(rw).exit"):
            assert fragment in labels, labels

    def test_started_generator_is_clean(self, guard):
        m = Mutex(name="ok")
        gen = m.enter()
        # Drive it like the kernel would; enter() yields at least once.
        next(gen)
        gen.close()
        del gen
        _collect()
        assert guard.violations() == []
        guard.check()

    def test_explicit_close_is_acknowledged_discard(self, guard):
        gen = Mutex(name="meant-it").enter()
        gen.close()
        del gen
        _collect()
        assert guard.violations() == []

    def test_check_message_lists_labels(self, guard):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            gen = CondVar(name="cv").broadcast()
            del gen
            _collect()
        with pytest.raises(SyncError) as exc:
            guard.check()
        assert "CondVar(cv).broadcast" in str(exc.value)

    def test_reset_clears(self, guard):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            gen = Mutex(name="m").enter()
            del gen
            _collect()
        assert guard.violations()
        guard.reset()
        assert guard.violations() == []
        guard.check()
