"""Tests for readers/writer locks: sharing, exclusion, downgrade,
tryupgrade, writer preference."""

import pytest

from repro.errors import SyncError
from repro.runtime import unistd
from repro.sync import RW_READER, RW_WRITER, RwLock
from repro import threads
from tests.conftest import run_program


class TestBasics:
    def test_multiple_readers_share(self):
        def main():
            rw = RwLock()
            yield from rw.enter(RW_READER)

            def reader(_):
                ok = yield from rw.tryenter(RW_READER)
                assert ok
                yield from rw.exit()

            tid = yield from threads.thread_create(
                reader, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            yield from rw.exit()

        run_program(main)

    def test_writer_excludes_readers(self):
        def main():
            rw = RwLock()
            yield from rw.enter(RW_WRITER)

            def reader(_):
                ok = yield from rw.tryenter(RW_READER)
                assert not ok

            tid = yield from threads.thread_create(
                reader, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            yield from rw.exit()

        run_program(main)

    def test_writer_excludes_writers(self):
        def main():
            rw = RwLock()
            yield from rw.enter(RW_WRITER)

            def other(_):
                ok = yield from rw.tryenter(RW_WRITER)
                assert not ok

            tid = yield from threads.thread_create(
                other, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            yield from rw.exit()

        run_program(main)

    def test_readers_exclude_writer(self):
        def main():
            rw = RwLock()
            yield from rw.enter(RW_READER)

            def writer(_):
                ok = yield from rw.tryenter(RW_WRITER)
                assert not ok

            tid = yield from threads.thread_create(
                writer, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            yield from rw.exit()

        run_program(main)

    def test_exit_without_hold_raises(self):
        def main():
            rw = RwLock()
            with pytest.raises(SyncError):
                yield from rw.exit()

        run_program(main)

    def test_blocked_writer_proceeds_after_readers_leave(self):
        order = []

        def writer(rw):
            yield from rw.enter(RW_WRITER)
            order.append("writer-in")
            yield from rw.exit()

        def main():
            rw = RwLock()
            yield from rw.enter(RW_READER)
            tid = yield from threads.thread_create(
                writer, rw, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            order.append("reader-out")
            yield from rw.exit()
            yield from threads.thread_wait(tid)

        run_program(main)
        assert order == ["reader-out", "writer-in"]


class TestWriterPreference:
    def test_new_readers_queue_behind_waiting_writer(self):
        order = []

        def writer(rw):
            yield from rw.enter(RW_WRITER)
            order.append("writer")
            yield from rw.exit()

        def late_reader(rw):
            yield from rw.enter(RW_READER)
            order.append("late-reader")
            yield from rw.exit()

        def main():
            rw = RwLock()
            yield from rw.enter(RW_READER)
            w = yield from threads.thread_create(
                writer, rw, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()      # writer now waits
            r = yield from threads.thread_create(
                late_reader, rw, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()      # late reader must queue
            yield from rw.exit()
            yield from threads.thread_wait(w)
            yield from threads.thread_wait(r)

        run_program(main)
        assert order == ["writer", "late-reader"]


class TestDowngradeUpgrade:
    def test_downgrade_keeps_read_access(self):
        def main():
            rw = RwLock()
            yield from rw.enter(RW_WRITER)
            yield from rw.downgrade()
            assert rw.state == "readers:1"

            def reader(_):
                ok = yield from rw.tryenter(RW_READER)
                assert ok
                yield from rw.exit()

            tid = yield from threads.thread_create(
                reader, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            yield from rw.exit()

        run_program(main)

    def test_downgrade_by_non_writer_raises(self):
        def main():
            rw = RwLock()
            yield from rw.enter(RW_READER)
            with pytest.raises(SyncError):
                yield from rw.downgrade()
            yield from rw.exit()

        run_program(main)

    def test_downgrade_wakes_pending_readers(self):
        """"If there are no waiting writers it wakes up any pending
        readers."""
        got = []

        def reader(rw):
            yield from rw.enter(RW_READER)
            got.append("reader-in")
            yield from rw.exit()

        def main():
            rw = RwLock()
            yield from rw.enter(RW_WRITER)
            tid = yield from threads.thread_create(
                reader, rw, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()  # reader blocks
            yield from rw.downgrade()
            yield from threads.thread_wait(tid)
            yield from rw.exit()

        run_program(main)
        assert got == ["reader-in"]

    def test_tryupgrade_sole_reader_succeeds(self):
        def main():
            rw = RwLock()
            yield from rw.enter(RW_READER)
            ok = yield from rw.tryupgrade()
            assert ok
            assert rw.state == "writer"
            yield from rw.exit()

        run_program(main)

    def test_tryupgrade_fails_with_other_readers(self):
        def main():
            rw = RwLock()
            yield from rw.enter(RW_READER)

            def second(_):
                yield from rw.enter(RW_READER)
                ok = yield from rw.tryupgrade()
                assert not ok
                yield from rw.exit()

            tid = yield from threads.thread_create(
                second, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            yield from rw.exit()

        run_program(main)

    def test_tryupgrade_fails_with_waiting_writer(self):
        def writer(rw):
            yield from rw.enter(RW_WRITER)
            yield from rw.exit()

        def main():
            rw = RwLock()
            yield from rw.enter(RW_READER)
            tid = yield from threads.thread_create(
                writer, rw, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()  # writer queues
            ok = yield from rw.tryupgrade()
            assert not ok
            yield from rw.exit()
            yield from threads.thread_wait(tid)

        run_program(main)

    def test_tryupgrade_without_read_lock_raises(self):
        def main():
            rw = RwLock()
            with pytest.raises(SyncError):
                yield from rw.tryupgrade()

        run_program(main)


class TestSearchHeavyWorkload:
    def test_readers_overlap_writers_serialize(self):
        """A search-mostly object: many readers proceed together; writes
        serialize.  The counters prove both."""
        stats = {"concurrent_readers_max": 0, "readers_now": 0,
                 "writes": 0}

        def reader(rw):
            for _ in range(5):
                yield from rw.enter(RW_READER)
                stats["readers_now"] += 1
                stats["concurrent_readers_max"] = max(
                    stats["concurrent_readers_max"], stats["readers_now"])
                yield from threads.thread_yield()
                stats["readers_now"] -= 1
                yield from rw.exit()

        def writer(rw):
            for _ in range(3):
                yield from rw.enter(RW_WRITER)
                assert stats["readers_now"] == 0
                stats["writes"] += 1
                yield from rw.exit()
                yield from threads.thread_yield()

        def main():
            rw = RwLock()
            tids = []
            for _ in range(3):
                tid = yield from threads.thread_create(
                    reader, rw, flags=threads.THREAD_WAIT)
                tids.append(tid)
            tid = yield from threads.thread_create(
                writer, rw, flags=threads.THREAD_WAIT)
            tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert stats["writes"] == 3
        assert stats["concurrent_readers_max"] >= 2

    def test_acquire_statistics(self):
        def main():
            rw = RwLock()
            yield from rw.enter(RW_READER)
            yield from rw.exit()
            yield from rw.enter(RW_WRITER)
            yield from rw.exit()
            assert rw.read_acquires == 1
            assert rw.write_acquires == 1

        run_program(main)
