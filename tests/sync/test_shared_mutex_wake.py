"""Shared-mutex futex protocol: a slept waiter re-acquires contended.

The cell protocol is 0 free / 1 locked / 2 locked-with-sleepers.  Exit
stores 0 and wakes ONE sleeper; that sleeper cannot know whether others
remain asleep on the cell, so it must take the lock back in state 2 —
re-acquiring with 1 erases the contended mark and the next exit wakes
nobody, stranding any second sleeper forever.  (Found by the schedule
explorer as a rare cross-process hang in the database workload.)
"""

from repro import threads
from repro.runtime import libc, mapped
from repro.sync import Mutex, THREAD_SYNC_SHARED
from tests.conftest import run_program


class TestSleptWaiterReacquiresContended:
    def test_cell_reads_2_after_wake(self):
        got = []

        def main():
            region = yield from mapped.map_anon_shared(4096)
            cell = region.cell(0)

            def holder(_):
                m = Mutex(THREAD_SYNC_SHARED, cell=cell, name="sm")
                yield from m.enter()
                yield from libc.compute(5_000)
                yield from m.exit()

            def waiter(_):
                m = Mutex(THREAD_SYNC_SHARED, cell=cell, name="sm")
                yield from libc.compute(1_000)
                yield from m.enter()          # sleeps, then is woken
                got.append(cell.load())
                yield from m.exit()

            flags = threads.THREAD_WAIT | threads.THREAD_BIND_LWP
            t1 = yield from threads.thread_create(holder, None, flags=flags)
            t2 = yield from threads.thread_create(waiter, None, flags=flags)
            yield from threads.thread_wait(t1)
            yield from threads.thread_wait(t2)
            got.append(cell.load())

        run_program(main, ncpus=3)
        # Pessimistic re-acquire: 2 while the woken waiter holds, 0 once
        # everyone is done (the final exit's extra wake finds nobody).
        assert got == [2, 0]

    def test_three_contenders_all_complete(self):
        done = []

        def main():
            region = yield from mapped.map_anon_shared(4096)
            cell = region.cell(0)

            def worker(args):
                delay, hold = args
                m = Mutex(THREAD_SYNC_SHARED, cell=cell, name="sm")
                yield from libc.compute(delay)
                yield from m.enter()
                yield from libc.compute(hold)
                yield from m.exit()
                done.append(delay)

            flags = threads.THREAD_WAIT | threads.THREAD_BIND_LWP
            tids = []
            for spec in ((0, 100), (10, 10), (20, 10)):
                tid = yield from threads.thread_create(
                    worker, spec, flags=flags)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main, ncpus=4)
        assert sorted(done) == [0, 10, 20]
