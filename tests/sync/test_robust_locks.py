"""Robust-lock protocol at the synch-variable layer.

The contract after the crash-reclaim walk hands a dead holder's lock to
the next acquirer:

* the acquire *succeeds* but returns ``EOWNERDEAD`` — the new owner
  holds the lock and must judge the protected state;
* ``consistent()`` repairs it: subsequent acquires are clean;
* releasing *without* ``consistent()`` bricks the lock permanently —
  every later acquire raises ``ENOTRECOVERABLE``;
* for readers/writer locks only a dead *writer* poisons state (readers
  never mutate), so a dead reader is reclaimed silently.
"""

import pytest

from repro import threads
from repro.errors import Errno, SyscallError
from repro.hw.isa import GetContext
from repro.runtime import libc, unistd
from repro.sim.clock import usec
from repro.sync import Mutex, RW_READER, RW_WRITER, RwLock
from tests.conftest import run_program


def _crash_holding(sv_hold, observed, hold_usec=500_000.0):
    """Spawn a bound thread that acquires via ``sv_hold`` and dies
    mid-hold; returns the generator to drive from main."""

    def holder(_):
        ctx = yield GetContext()
        observed["victim"] = ctx.thread
        yield from sv_hold()
        yield from libc.compute(hold_usec)   # never reached past crash

    def arm(ctx):
        def kill():
            victim = observed.get("victim")
            if victim is not None and victim.lwp is not None:
                ctx.kernel.crash_lwp(victim.lwp)
            else:
                ctx.engine.call_after(usec(500.0), kill)

        ctx.engine.call_after(usec(2_000.0), kill)

    def start():
        ctx = yield GetContext()
        yield from threads.thread_create(
            holder, None, flags=threads.THREAD_BIND_LWP)
        arm(ctx)
        yield from libc.compute(5_000.0)     # crash + reclaim done

    return start


class TestRobustMutex:
    def test_owner_dead_then_consistent_then_clean(self):
        observed = {}
        m = Mutex(name="robust")
        start = _crash_holding(m.enter, observed)

        def main():
            yield from start()
            observed["first"] = yield from m.enter()
            observed["repair"] = m.consistent()
            yield from m.exit()
            observed["second"] = yield from m.enter()
            yield from m.exit()
            yield from unistd.exit(0)

        run_program(main, ncpus=2)
        assert observed["first"] is Errno.EOWNERDEAD
        assert observed["repair"] == 0
        assert observed["second"] is None          # clean acquire
        assert not m.owner_dead and not m.unrecoverable

    def test_release_without_consistent_bricks_the_lock(self):
        observed = {}
        m = Mutex(name="bricked")
        start = _crash_holding(m.enter, observed)

        def main():
            yield from start()
            observed["first"] = yield from m.enter()
            yield from m.exit()                    # no consistent(): brick
            try:
                yield from m.enter()
            except SyscallError as err:
                observed["enter_err"] = err.errno
            try:
                yield from m.tryenter()
            except SyscallError as err:
                observed["tryenter_err"] = err.errno
            yield from unistd.exit(0)

        run_program(main, ncpus=2)
        assert observed["first"] is Errno.EOWNERDEAD
        assert m.unrecoverable and not m.owner_dead
        assert observed["enter_err"] is Errno.ENOTRECOVERABLE
        assert observed["tryenter_err"] is Errno.ENOTRECOVERABLE

    def test_consistent_without_owner_death_is_einval(self):
        m = Mutex(name="healthy")
        observed = {}

        def main():
            yield from m.enter()
            observed["repair"] = m.consistent()
            yield from m.exit()
            yield from unistd.exit(0)

        run_program(main)
        assert observed["repair"] is Errno.EINVAL


class TestRobustRwLock:
    def test_dead_writer_surfaces_eownerdead(self):
        observed = {}
        rw = RwLock(name="robust-rw")
        start = _crash_holding(lambda: rw.enter(RW_WRITER), observed)

        def main():
            yield from start()
            observed["first"] = yield from rw.enter(RW_WRITER)
            observed["repair"] = rw.consistent()
            yield from rw.exit()
            observed["second"] = yield from rw.enter(RW_READER)
            yield from rw.exit()
            yield from unistd.exit(0)

        run_program(main, ncpus=2)
        assert observed["first"] is Errno.EOWNERDEAD
        assert observed["repair"] == 0
        assert observed["second"] is None
        assert not rw.owner_dead

    def test_dead_reader_is_reclaimed_silently(self):
        observed = {}
        rw = RwLock(name="reader-rw")
        start = _crash_holding(lambda: rw.enter(RW_READER), observed)

        def main():
            yield from start()
            # A reader cannot have corrupted anything: the next writer
            # gets a *clean* acquire, no EOWNERDEAD.
            observed["acquire"] = yield from rw.enter(RW_WRITER)
            yield from rw.exit()
            yield from unistd.exit(0)

        run_program(main, ncpus=2)
        assert observed["acquire"] is None
        assert not rw.owner_dead
        assert observed["victim"] not in rw.reader_holders
