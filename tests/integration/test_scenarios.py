"""Cross-cutting integration scenarios exercising many subsystems at
once: fork1 pitfalls, uniform sync model, mixed bound/unbound processes,
gang scheduling with threads, /proc debugger cooperation."""

import pytest

from repro.api import Simulator
from repro.hw.isa import Charge, GetContext
from repro.runtime import libc, mapped, unistd
from repro.sync import (CondVar, Mutex, Semaphore, THREAD_SYNC_SHARED)
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


class TestFigure3Processes:
    """The five process shapes of the paper's Figure 3 all coexist."""

    def test_mixed_shapes_coexist(self):
        results = {}

        def traditional():
            # proc 1: single thread on a single LWP.
            yield Charge(usec(100))
            results["p1"] = True

        def coroutines():
            # proc 2: several threads multiplexed on one LWP.
            done = []

            def t(tag):
                done.append(tag)
                yield from threads.thread_yield()

            tids = []
            for tag in range(3):
                tid = yield from threads.thread_create(
                    t, tag, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)
            results["p2"] = sorted(done) == [0, 1, 2]

        def multiplexed():
            # proc 3: many threads on fewer LWPs.
            yield from threads.thread_setconcurrency(2)
            done = []

            def t(tag):
                yield Charge(usec(200))
                done.append(tag)

            tids = []
            for tag in range(6):
                tid = yield from threads.thread_create(
                    t, tag, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)
            results["p3"] = len(done) == 6

        def bound():
            # proc 4: threads permanently bound to LWPs.
            def t(_):
                yield Charge(usec(200))

            tids = []
            for _ in range(2):
                tid = yield from threads.thread_create(
                    t, None,
                    flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)
            results["p4"] = True

        def mixture():
            # proc 5: bound + unbound together, one LWP bound to a CPU.
            from repro.kernel.syscalls.lwp_calls import PC_BIND_CPU
            from repro.hw.isa import Syscall
            yield Syscall("priocntl", PC_BIND_CPU, 0, 0)

            def ub(_):
                yield Charge(usec(100))

            def b(_):
                yield Charge(usec(100))

            t1 = yield from threads.thread_create(
                ub, None, flags=threads.THREAD_WAIT)
            t2 = yield from threads.thread_create(
                b, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(t1)
            yield from threads.thread_wait(t2)
            results["p5"] = True

        sim = Simulator(ncpus=2)
        for prog in (traditional, coroutines, multiplexed, bound,
                     mixture):
            sim.spawn(prog)
        sim.run()
        assert results == {"p1": True, "p2": True, "p3": True,
                           "p4": True, "p5": True}


class TestUniformSyncModel:
    def test_bound_and_unbound_synchronize_with_each_other(self):
        """"the bound and unbound threads can still synchronize with each
        other ... in the usual way"."""
        order = []

        def bound_side(s):
            yield from s["go"].p()
            order.append("bound ran")
            yield from s["done"].v()

        def main():
            s = {"go": Semaphore(), "done": Semaphore()}
            tid = yield from threads.thread_create(
                bound_side, s,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            order.append("releasing")
            yield from s["go"].v()
            yield from s["done"].p()
            order.append("joined")
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert order == ["releasing", "bound ran", "joined"]

    def test_three_way_sync_within_and_between_processes(self):
        """Threads in one process and a second process all contend on one
        mutex hierarchy: in-process private lock + cross-process shared
        lock."""
        def peer():
            region = yield from mapped.map_shared_file("/tmp/x", 4096)
            shared = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            for _ in range(5):
                yield from shared.enter()
                counter = region.mobj.load_cell(8)
                region.mobj.store_cell(8, counter + 1)
                yield from shared.exit()

        def main():
            region = yield from mapped.map_shared_file("/tmp/x", 4096)
            shared = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            private = Mutex()
            pid = yield from unistd.fork1(peer)

            def worker(_):
                for _ in range(5):
                    yield from private.enter()
                    yield from shared.enter()
                    counter = region.mobj.load_cell(8)
                    yield from libc.compute(10)
                    region.mobj.store_cell(8, counter + 1)
                    yield from shared.exit()
                    yield from private.exit()

            tids = []
            for _ in range(2):
                tid = yield from threads.thread_create(
                    worker, None, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)
            yield from unistd.waitpid(pid)
            assert region.mobj.load_cell(8) == 15

        run_program(main, ncpus=2)


class TestFork1Pitfall:
    def test_shared_lock_held_across_fork1_blocks_child(self):
        """The paper's fork1 warning for MAP_SHARED locks: "locks that
        are allocated in memory that is sharable ... can be held by a
        thread in both processes"."""
        got = {}

        def child():
            region = yield from mapped.map_shared_file("/tmp/x", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            t0 = yield from unistd.gettimeofday()
            yield from m.enter()   # blocked until the parent releases
            t1 = yield from unistd.gettimeofday()
            got["child_waited_usec"] = (t1 - t0) / 1000
            yield from m.exit()

        def main():
            region = yield from mapped.map_shared_file("/tmp/x", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            yield from m.enter()          # hold across fork1
            pid = yield from unistd.fork1(child)
            yield from unistd.sleep_usec(30_000)
            yield from m.exit()
            yield from unistd.waitpid(pid)

        run_program(main)
        assert got["child_waited_usec"] >= 20_000

    def test_private_lock_copied_held_is_unusable_in_child(self):
        """A *private* lock held by a thread that does not exist in the
        fork1 child stays locked forever there (the dangling-lock
        hazard); tryenter shows it."""
        got = {}

        def child():
            region_state = shared_box["private_mutex_state"]
            # In the child's copied address space, the lock word (cell in
            # private heap memory) still reads "locked" — our fork copies
            # cells.  Model the check via the heap cell directly.
            ctx = yield GetContext()
            heap, off = ctx.process.aspace.resolve(region_state)
            got["child_sees_locked"] = heap.load_cell(off) == 1

        shared_box = {}

        def holder(args):
            base, gate = args
            ctx = yield GetContext()
            heap, off = ctx.process.aspace.resolve(base)
            heap.store_cell(off, 1)  # "acquired" a heap lock word
            yield from gate.p()      # hold until told

        def main():
            ctx = yield GetContext()
            base = ctx.process.aspace.sbrk(64)
            shared_box["private_mutex_state"] = base
            gate = Semaphore()
            tid = yield from threads.thread_create(
                holder, (base, gate), flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()  # holder takes the "lock"
            pid = yield from unistd.fork1(child)
            yield from unistd.waitpid(pid)
            yield from gate.v()
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got["child_sees_locked"]


class TestDebuggerCooperation:
    def test_proc_plus_library_view_consistent(self):
        from repro.kernel.fs import procfs
        got = {}

        def idler(gate):
            # Block at user level so the thread persists for the snapshot
            # without tying up an LWP.
            yield from gate.p()

        def main():
            ctx = yield GetContext()
            gate = Semaphore()
            yield from threads.thread_setconcurrency(2)
            tids = []
            for _ in range(4):
                tid = yield from threads.thread_create(
                    idler, gate, flags=threads.THREAD_WAIT)
                tids.append(tid)
            yield from threads.thread_yield()
            view = procfs.debugger_view(ctx.process)
            got["threads"] = len(view["threads"])
            got["lwps"] = view["nlwp"]
            got["mapped"] = sum(1 for t in view["threads"]
                                if t["lwp"] is not None)
            for _ in tids:
                yield from gate.v()
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main, ncpus=2, check_deadlock=False)
        assert got["threads"] == 5
        assert got["lwps"] >= 2
        # No more threads on LWPs than LWPs exist.
        assert got["mapped"] <= got["lwps"]
