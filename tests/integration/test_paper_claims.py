"""Paper-conformance tests: direct quotes from the paper, each asserted
against the implementation.  (Claims already covered elsewhere are not
repeated; this module collects the remaining explicit statements.)"""

import pytest

from repro.api import Simulator
from repro.errors import ThreadError
from repro.hw.isa import Charge, GetContext
from repro.kernel.signals import Sig
from repro.runtime import unistd
from repro.sim.clock import usec
from repro import threads
from tests.conftest import run_program


class TestSharedProcessState:
    def test_shared_data_visible_across_threads(self):
        """"A change in shared data by one thread can be seen by the
        other threads in the process."""
        box = {"value": None}

        def writer(_):
            box["value"] = "written by thread 2"
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                writer, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            assert box["value"] == "written by thread 2"

        run_program(main)

    def test_exit_destroys_all_threads(self):
        """"if one thread calls exit(), all threads are destroyed"."""
        survived = []

        def background(_):
            yield from unistd.sleep_usec(100_000)
            survived.append(True)

        def exiter(_):
            yield from unistd.exit(3)

        def main():
            yield from threads.thread_setconcurrency(3)
            yield from threads.thread_create(background, None)
            yield from threads.thread_create(exiter, None)
            yield from unistd.sleep_usec(200_000)

        sim, proc = run_program(main, ncpus=2, check_deadlock=False)
        assert proc.exit_status == 3
        assert survived == []

    def test_thread_exit_status_always_zero(self):
        """"The exit status of a thread is always zero."""
        got = {}

        def worker(_):
            return "a rich return value"
            yield

        def main():
            ctx = yield GetContext()
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            thread = ctx.process.threadlib.get_thread(tid)
            yield from threads.thread_wait(tid)
            got["status"] = thread.exit_status

        run_program(main)
        assert got["status"] == 0


class TestTrapSemantics:
    def test_trap_handled_only_by_causing_thread(self):
        """"a floating-point overflow trap applies to a particular
        thread, not the whole program."""
        handled_by = []

        def handler(sig):
            me = yield from threads.thread_get_id()
            handled_by.append((me, sig))

        def fp_user(_):
            # Model a division overflow: the thread raises its own trap.
            me = yield from threads.thread_get_id()
            yield from threads.thread_kill(me, int(Sig.SIGFPE))
            yield Charge(usec(10))

        def innocent(_):
            for _ in range(5):
                yield from threads.thread_yield()

        def main():
            yield from unistd.sigaction(int(Sig.SIGFPE), handler)
            a = yield from threads.thread_create(
                fp_user, None, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                innocent, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        run_program(main)
        assert len(handled_by) == 1
        assert handled_by[0] == (2, int(Sig.SIGFPE))

    def test_uncaught_trap_kills_whole_process(self):
        """"If a signal handler is marked SIG_DFL ... the action on
        receipt of the signal (exit, core dump, ...) affects all the
        threads in the receiving process."""
        def fp_user(_):
            me = yield from threads.thread_get_id()
            yield from threads.thread_kill(me, int(Sig.SIGFPE))
            yield Charge(usec(10))

        def main():
            tid = yield from threads.thread_create(
                fp_user, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        sim, proc = run_program(main, check_deadlock=False)
        assert proc.exit_status == 128 + int(Sig.SIGFPE)


class TestInvisibilityOfForeignThreads:
    def test_no_interface_can_reach_another_process_thread(self):
        """"A thread cannot send a signal to a specific thread in another
        process because threads in other processes are invisible." —
        thread ids are per-process, so the 'same' id resolves to a local
        thread (or nothing), never a foreign one."""
        got = {}

        def child():
            # In the child there is exactly one thread (id 1 = main);
            # the parent's thread 2 does not exist here.
            from repro.errors import ThreadError as TE
            ctx = yield GetContext()
            lib = ctx.process.threadlib
            try:
                lib.get_thread(2)
                got["reachable"] = True
            except TE:
                got["reachable"] = False

        def idler(_):
            yield from unistd.sleep_usec(20_000)

        def main():
            yield from threads.thread_setconcurrency(2)
            yield from threads.thread_create(idler, None)  # thread id 2
            pid = yield from unistd.fork1(child)
            yield from unistd.waitpid(pid)

        run_program(main, ncpus=2, check_deadlock=False)
        assert got["reachable"] is False

    def test_thread_ids_have_meaning_only_within_a_process(self):
        """"The thread IDs have meaning only within a process." — two
        processes both have a thread 1."""
        ids = []

        def child():
            ids.append((yield from threads.thread_get_id()))

        def main():
            ids.append((yield from threads.thread_get_id()))
            pid = yield from unistd.fork1(child)
            yield from unistd.waitpid(pid)

        run_program(main)
        assert ids == [1, 1]


class TestStackRules:
    def test_default_stack_from_heap_default_size(self):
        """"If stack_addr is NULL the stack is allocated from the heap.
        If stack_size is not zero the stack will be of the specified
        size.  Otherwise a default stack size is used."""
        from repro.threads.stack import DEFAULT_STACK_SIZE
        got = {}

        def worker(_):
            me = yield from threads.current_thread()
            got["stack"] = me.stack

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert not got["stack"].caller_supplied
        assert got["stack"].size == DEFAULT_STACK_SIZE

    def test_explicit_size_heap_stack(self):
        got = {}

        def worker(_):
            me = yield from threads.current_thread()
            got["size"] = me.stack.size

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT,
                stack_size=64 * 1024)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got["size"] == 64 * 1024


class TestLwpStateIsNotThreadState:
    def test_cpu_usage_is_per_lwp_not_per_unbound_thread(self):
        """"even though the CPU usage, virtual time alarms, and alternate
        signal stack are available to each LWP, this state is not kept
        for each thread that is multiplexed on LWPs" — two unbound
        threads on one LWP accumulate into one LWP's usage."""
        got = {}

        def burner(_):
            yield Charge(usec(2_000))

        def main():
            ctx = yield GetContext()
            a = yield from threads.thread_create(
                burner, None, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                burner, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)
            lwps = ctx.process.live_lwps()
            got["nlwp"] = len(lwps)
            got["user_ns"] = lwps[0].user_ns

        run_program(main, ncpus=1)
        assert got["nlwp"] == 1
        assert got["user_ns"] >= usec(4_000)  # both threads' compute

    def test_getrusage_sums_all_lwps(self):
        """"The sum of the resource usage (including CPU usage) for all
        LWPs in the process is available via getrusage()."""
        got = {}

        def bound_burner(_):
            yield Charge(usec(3_000))

        def main():
            yield Charge(usec(3_000))
            tid = yield from threads.thread_create(
                bound_burner, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)
            got["usage"] = yield from unistd.getrusage()

        run_program(main, ncpus=2)
        assert got["usage"]["user_ns"] >= usec(6_000)


class TestProfilingInheritance:
    def test_profiling_state_inherited_by_new_lwp(self):
        """"The state of profiling is inherited from the creating LWP."""
        got = {}

        def bound_child(_):
            yield Charge(usec(2_000))
            me = yield from threads.current_thread()
            got["child_prof"] = me.lwp.profiling

        def main():
            buf = yield from unistd.profil()
            tid = yield from threads.thread_create(
                bound_child, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)
            got["buf"] = buf

        run_program(main, ncpus=2)
        assert got["child_prof"] is not None
        assert got["child_prof"].buffer is got["buf"]  # shared buffer
