"""Fault-injection scenarios: processes dying at awkward moments, pages
evicted under foot, signals hammering blocked threads."""

import pytest

from repro.api import Simulator
from repro.errors import DeadlockError, Errno, SyscallError
from repro.hw.isa import Charge, GetContext
from repro.kernel.signals import Sig
from repro.runtime import mapped, unistd
from repro.sync import Mutex, Semaphore, THREAD_SYNC_SHARED
from repro.sim.clock import usec
from repro import threads
from tests.conftest import run_program


class TestDyingProcesses:
    def test_killing_lock_holder_leaves_shared_lock_held(self):
        """SIGKILL to a process holding an in-file lock: the lock stays
        held in the file — the hazard the paper warns about, observable."""
        got = {}

        def holder():
            region = yield from mapped.map_shared_file("/tmp/f", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            yield from m.enter()
            yield from unistd.pause()  # hold forever

        def main():
            region = yield from mapped.map_shared_file("/tmp/f", 4096)
            m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
            pid = yield from unistd.fork1(holder)
            # Wait until the child demonstrably holds the in-file lock
            # (its first touch of the page pays a long disk fault).
            while not m.held:
                yield from unistd.sleep_usec(5_000)
            yield from unistd.kill(pid, int(Sig.SIGKILL))
            yield from unistd.waitpid(pid)
            got["held_after_kill"] = m.held
            got["try"] = yield from m.tryenter()

        run_program(main)
        assert got["held_after_kill"] is True
        assert got["try"] is False

    def test_killed_process_releases_cpu_and_fds(self):
        def spinner():
            while True:
                yield Charge(usec(1_000))

        def main():
            pid = yield from unistd.fork1(spinner)
            yield from unistd.sleep_usec(5_000)
            yield from unistd.kill(pid, int(Sig.SIGKILL))
            got = yield from unistd.waitpid(pid)
            assert got[1] == 128 + int(Sig.SIGKILL)

        sim, proc = run_program(main)
        # The machine is quiescent afterwards: nothing left running.
        assert all(cpu.idle for cpu in sim.machine.cpus)

    def test_waiters_on_dead_process_fifo_see_eof(self):
        got = []

        def writer():
            fd = yield from unistd.open("/tmp/p", 0x1)  # O_WRONLY
            yield from unistd.write(fd, b"partial")
            yield from unistd.exit(0)  # dies without close

        def main():
            yield from unistd.mkfifo("/tmp/p")
            pid = yield from unistd.fork1(writer)
            fd = yield from unistd.open("/tmp/p", 0x0)  # O_RDONLY
            got.append((yield from unistd.read(fd, 100)))
            got.append((yield from unistd.read(fd, 100)))
            yield from unistd.waitpid(pid)

        run_program(main)
        assert got == [b"partial", b""]  # exit closed the write end


class TestPageEviction:
    def test_evicted_page_refaults(self):
        got = {}

        def main():
            region = yield from mapped.map_shared_file("/tmp/big", 8192)
            yield from region.read(0, 1)          # fault in
            t0 = yield from unistd.gettimeofday()
            yield from region.read(0, 1)          # warm
            t1 = yield from unistd.gettimeofday()
            region.mobj.evict(0)                  # the pager strikes
            yield from region.read(0, 1)          # refault
            t2 = yield from unistd.gettimeofday()
            got["warm"] = t1 - t0
            got["refault"] = t2 - t1

        run_program(main)
        assert got["refault"] > got["warm"] + usec(400)

    def test_fault_blocks_only_faulting_lwp(self):
        """The paper's second reason for LWPs: a page fault must not stop
        other LWPs."""
        progress = []

        def toucher(region):
            # Touch a fresh (disk-backed, slow) page.
            yield from region.read(4096, 1)
            progress.append("fault-done")

        def spinner(_):
            for _ in range(5):
                yield Charge(usec(500))
                progress.append("spin")

        def main():
            region = yield from mapped.map_shared_file("/tmp/big", 8192)
            a = yield from threads.thread_create(
                toucher, region,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            b = yield from threads.thread_create(
                spinner, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        run_program(main, ncpus=2)
        # The spinner made progress before the slow fault finished.
        assert progress.index("spin") < progress.index("fault-done")


class TestSignalStorms:
    def test_many_signals_to_blocked_thread(self):
        """A hail of thread_kills while the target sleeps on a semaphore:
        every deliverable signal runs, the thread survives, and the
        semaphore handoff still works."""
        hits = []

        def handler(sig):
            hits.append(sig)
            yield Charge(usec(1))

        def sleeper(sem):
            yield from sem.p()

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            sem = Semaphore()
            tid = yield from threads.thread_create(
                sleeper, sem, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            for _ in range(5):
                yield from threads.thread_kill(tid, int(Sig.SIGUSR1))
            yield from sem.v()
            yield from threads.thread_wait(tid)

        sim, proc = run_program(main)
        assert len(hits) >= 1
        assert proc.exit_status == 0

    def test_fatal_signal_wins_over_pending_handler(self):
        def victim():
            yield from unistd.pause()

        def main():
            pid = yield from unistd.fork1(victim)
            yield from unistd.sleep_usec(1_000)
            yield from unistd.kill(pid, int(Sig.SIGKILL))
            got = yield from unistd.waitpid(pid)
            assert got[1] == 128 + int(Sig.SIGKILL)

        run_program(main)


class TestDeadlockDetection:
    def test_self_deadlock_reported(self):
        def main():
            s = Semaphore()
            yield from s.p()  # nobody will ever V

        with pytest.raises(DeadlockError):
            run_program(main)

    def test_cross_thread_deadlock_reported(self):
        def main():
            a, b = Mutex(name="a"), Mutex(name="b")

            def t1(_):
                yield from a.enter()
                yield from threads.thread_yield()
                yield from b.enter()

            def t2(_):
                yield from b.enter()
                yield from threads.thread_yield()
                yield from a.enter()

            x = yield from threads.thread_create(
                t1, None, flags=threads.THREAD_WAIT)
            y = yield from threads.thread_create(
                t2, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(x)
            yield from threads.thread_wait(y)

        with pytest.raises(DeadlockError):
            run_program(main)
