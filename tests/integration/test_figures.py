"""Integration tests pinning the paper's Figure 5 and Figure 6 results.

These run the *same measurement programs the paper describes* through the
full stack and assert the reproduction criteria: totals within tolerance
and ratio ordering preserved.  The benchmark harness re-runs them with
reporting; these tests are the regression guard.
"""

import pytest

from repro.api import Simulator
from repro.hw.isa import Syscall
from repro.runtime import libc, mapped, unistd
from repro.sync import Semaphore, THREAD_SYNC_SHARED
from repro import threads

#: Paper values (microseconds).
PAPER_UNBOUND_CREATE = 56
PAPER_BOUND_CREATE = 2327
PAPER_SETJMP = 59
PAPER_UNBOUND_SYNC = 158
PAPER_BOUND_SYNC = 348
PAPER_CROSS_SYNC = 301

TOL = 0.10  # 10 % tolerance on each row


def measure_creation(bound: bool, n: int = 20) -> float:
    """Per-creation cost in usec, amortized, timer overhead excluded."""
    out = {}

    def noop(_):
        return
        yield

    def main():
        flags = threads.THREAD_BIND_LWP if bound else 0
        t0 = yield Syscall("gettimeofday")
        for _ in range(n):
            yield from threads.thread_create(noop, None, flags=flags)
        t1 = yield Syscall("gettimeofday")
        out["usec"] = (t1 - t0) / 1000 / n

    sim = Simulator(ncpus=4)
    sim.spawn(main)
    sim.run(check_deadlock=False)
    return out["usec"]


def measure_sync(flags: int, n: int = 100) -> float:
    """One-way synchronization time in usec (round trip / 2)."""
    out = {}

    def main():
        s1, s2 = Semaphore(), Semaphore()

        def echo(_):
            for _ in range(n + 1):
                yield from s2.p()
                yield from s1.v()

        def driver(_):
            yield from s2.v()
            yield from s1.p()
            t0 = yield Syscall("gettimeofday")
            for _ in range(n):
                yield from s2.v()
                yield from s1.p()
            t1 = yield Syscall("gettimeofday")
            out["usec"] = (t1 - t0) / 1000 / (2 * n)

        a = yield from threads.thread_create(
            echo, None, flags=threads.THREAD_WAIT | flags)
        b = yield from threads.thread_create(
            driver, None, flags=threads.THREAD_WAIT | flags)
        yield from threads.thread_wait(a)
        yield from threads.thread_wait(b)

    sim = Simulator(ncpus=1)
    sim.spawn(main)
    sim.run()
    return out["usec"]


def measure_cross_process(n: int = 100) -> float:
    out = {}

    def peer():
        region = yield from mapped.map_shared_file("/tmp/sync", 4096)
        s1 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(0))
        s2 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(8))
        for _ in range(n + 1):
            yield from s2.p()
            yield from s1.v()

    def main():
        region = yield from mapped.map_shared_file("/tmp/sync", 4096)
        s1 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(0))
        s2 = Semaphore(0, THREAD_SYNC_SHARED, cell=region.cell(8))
        pid = yield from unistd.fork1(peer)
        yield from s2.v()
        yield from s1.p()
        t0 = yield Syscall("gettimeofday")
        for _ in range(n):
            yield from s2.v()
            yield from s1.p()
        t1 = yield Syscall("gettimeofday")
        out["usec"] = (t1 - t0) / 1000 / (2 * n)
        yield from unistd.waitpid(pid)

    sim = Simulator(ncpus=1)
    sim.spawn(main)
    sim.run()
    return out["usec"]


def measure_setjmp(n: int = 50) -> float:
    out = {}

    def main():
        t0 = yield Syscall("gettimeofday")
        for _ in range(n):
            yield from libc.setjmp_longjmp_pair()
        t1 = yield Syscall("gettimeofday")
        out["usec"] = (t1 - t0) / 1000 / n

    sim = Simulator()
    sim.spawn(main)
    sim.run()
    return out["usec"]


class TestFigure5:
    def test_unbound_creation_matches_paper(self):
        measured = measure_creation(bound=False)
        assert measured == pytest.approx(PAPER_UNBOUND_CREATE, rel=TOL)

    def test_bound_creation_matches_paper(self):
        measured = measure_creation(bound=True)
        assert measured == pytest.approx(PAPER_BOUND_CREATE, rel=TOL)

    def test_creation_ratio_shape(self):
        """The paper's headline ratio: bound/unbound ≈ 42."""
        ratio = measure_creation(True) / measure_creation(False)
        assert 35 <= ratio <= 48


class TestFigure6:
    def test_setjmp_baseline(self):
        assert measure_setjmp() == pytest.approx(PAPER_SETJMP, rel=TOL)

    def test_unbound_sync(self):
        assert measure_sync(0) == pytest.approx(PAPER_UNBOUND_SYNC,
                                                rel=TOL)

    def test_bound_sync(self):
        assert measure_sync(threads.THREAD_BIND_LWP) == pytest.approx(
            PAPER_BOUND_SYNC, rel=TOL)

    def test_cross_process_sync(self):
        assert measure_cross_process() == pytest.approx(PAPER_CROSS_SYNC,
                                                        rel=TOL)

    def test_row_ordering_matches_paper(self):
        """The qualitative shape: setjmp < unbound < cross ≈< bound."""
        sj = measure_setjmp()
        unbound = measure_sync(0)
        bound = measure_sync(threads.THREAD_BIND_LWP)
        cross = measure_cross_process()
        assert sj < unbound < cross
        assert cross < bound  # the paper's .86 ratio row

    def test_unbound_sync_needs_no_kernel(self):
        """Beyond timing: the unbound measurement must literally never
        park/unpark an LWP."""
        def main():
            s1, s2 = Semaphore(), Semaphore()

            def echo(_):
                for _ in range(11):
                    yield from s2.p()
                    yield from s1.v()

            tid = yield from threads.thread_create(
                echo, None, flags=threads.THREAD_WAIT)
            for _ in range(11):
                yield from s2.v()
                yield from s1.p()
            yield from threads.thread_wait(tid)

        sim = Simulator(ncpus=1)
        sim.spawn(main)
        sim.run()
        counts = sim.syscall_counts()
        assert "lwp_park" not in counts
        assert "lwp_unpark" not in counts
