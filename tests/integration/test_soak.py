"""Whole-system soak test: every subsystem at once, invariants checked.

One simulation runs, simultaneously: a multi-threaded M:N process with
time slicing, a 1:1 bound-thread process, a liblwp-model process, raw-LWP
micro-tasking, cross-process file locking, FIFO traffic, signals, timers,
and /proc reads.  At the end the machine must be quiescent and every
component's accounting must balance.
"""

import pytest

from repro.api import Simulator
from repro.hw.isa import Charge, GetContext
from repro.kernel.fs.file import O_RDONLY, O_WRONLY
from repro.kernel.process import ProcState
from repro.kernel.signals import Sig
from repro.models import liblwp, microtasking
from repro.runtime import libc, mapped, unistd
from repro.sim.clock import usec
from repro.sync import (BoundedQueue, Mutex, Semaphore,
                        THREAD_SYNC_SHARED)
from repro import threads

RESULTS: dict = {}


def mn_worker_process():
    """M:N process: sliced compute + queue pipeline + signals."""
    yield from threads.thread_set_time_slicing(2_000)
    yield from threads.thread_setconcurrency(2)
    q = BoundedQueue(4)
    handled = []

    def handler(sig):
        handled.append(sig)
        yield Charge(usec(5))

    yield from unistd.sigaction(int(Sig.SIGUSR1), handler)

    def producer(_):
        for i in range(12):
            yield from q.put(i)
            yield Charge(usec(300))
        yield from q.close()

    def consumer(_):
        total = 0
        while True:
            item = yield from q.get()
            if item is None:
                RESULTS["mn_sum"] = total
                return
            total += item
            yield Charge(usec(500))

    a = yield from threads.thread_create(
        producer, None, flags=threads.THREAD_WAIT)
    b = yield from threads.thread_create(
        consumer, None, flags=threads.THREAD_WAIT)
    me = yield from unistd.getpid()
    yield from unistd.kill(me, int(Sig.SIGUSR1))
    yield from threads.thread_wait(a)
    yield from threads.thread_wait(b)
    RESULTS["mn_signals"] = len(handled)
    yield from unistd.exit(0)


def bound_process():
    """1:1 process: bound threads with per-LWP timers + profiling."""
    buf = yield from unistd.profil()

    def bound_worker(tag):
        yield Charge(usec(3_000))
        RESULTS[f"bound_{tag}"] = True

    tids = []
    for tag in range(2):
        tid = yield from threads.thread_create(
            bound_worker, tag,
            flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
        tids.append(tid)
    for tid in tids:
        yield from threads.thread_wait(tid)
    RESULTS["bound_profile_ns"] = buf.total_ns


def liblwp_process():
    """liblwp model: coroutines only; must still finish its work."""
    done = []

    def coro(tag):
        for _ in range(3):
            yield from threads.thread_yield()
        done.append(tag)

    tids = []
    for tag in range(4):
        tid = yield from liblwp.lwp_create(coro, tag)
        tids.append(tid)
    for tid in tids:
        yield from threads.thread_wait(tid)
    RESULTS["liblwp_done"] = len(done)


def locking_process(idx):
    """Contends on in-file record locks with its sibling."""
    region = yield from mapped.map_shared_file("/soak/records", 4096)
    m = Mutex(THREAD_SYNC_SHARED, cell=region.cell(0))
    for _ in range(10):
        yield from m.enter()
        counter = region.mobj.load_cell(8)
        yield from libc.compute(50)
        region.mobj.store_cell(8, counter + 1)
        yield from m.exit()


def microtask_process():
    total = yield from microtasking.parallel_sum(
        list(range(16)), chunk_cost_usec=100, n_lwps=2)
    RESULTS["microtask_sum"] = total


def fifo_producer():
    fd = yield from unistd.open("/soak/pipe", O_WRONLY)
    for i in range(5):
        yield from unistd.write(fd, b"m%03d" % i)
        yield from unistd.sleep_usec(500)
    yield from unistd.close(fd)


def orchestrator():
    """Forks everything, reads /proc, reaps, and checks the record file."""
    yield from unistd.mkdir("/soak")
    yield from unistd.mkfifo("/soak/pipe")
    region = yield from mapped.map_shared_file("/soak/records", 4096)

    pids = []
    for prog in (locking_process, locking_process):
        pid = yield from unistd.fork1(prog, len(pids))
        pids.append(pid)
    pid = yield from unistd.fork1(fifo_producer)
    pids.append(pid)

    # Consume the FIFO traffic while children run.
    fd = yield from unistd.open("/soak/pipe", O_RDONLY)
    received = b""
    while True:
        data = yield from unistd.read(fd, 64)
        if not data:
            break
        received += data
    RESULTS["fifo_bytes"] = len(received)

    # Peek at a child through /proc while reaping.
    me = yield from unistd.getpid()
    pfd = yield from unistd.open(f"/proc/{me}/status", O_RDONLY)
    status = yield from unistd.read(pfd, 4096)
    RESULTS["proc_readable"] = b"pid:" in status

    for pid in pids:
        yield from unistd.waitpid(pid)
    RESULTS["record_count"] = region.mobj.load_cell(8)


class TestSoak:
    def test_everything_at_once(self):
        RESULTS.clear()
        sim = Simulator(ncpus=4, seed=42)
        procs = [
            sim.spawn(mn_worker_process, name="mn"),
            sim.spawn(bound_process, name="bound"),
            sim.spawn(microtask_process, name="micro"),
            sim.spawn(orchestrator, name="orchestrator"),
        ]
        # (The liblwp-style process exercises the coroutine usage pattern;
        # the dedicated model tests run it under the real liblwp factory.)
        lib_proc = sim.spawn(liblwp_process, name="liblwp-ish")
        sim.run()

        # Every process finished cleanly.
        for proc in procs + [lib_proc]:
            assert proc.state in (ProcState.ZOMBIE, ProcState.REAPED), \
                proc
            assert proc.exit_status == 0, proc

        # Functional results from each subsystem.
        assert RESULTS["mn_sum"] == sum(range(12))
        assert RESULTS["mn_signals"] >= 1
        assert RESULTS["bound_0"] and RESULTS["bound_1"]
        assert RESULTS["bound_profile_ns"] >= usec(3_000)
        assert RESULTS["liblwp_done"] == 4
        assert RESULTS["microtask_sum"] == sum(range(16))
        assert RESULTS["record_count"] == 20  # 2 procs x 10 txns
        assert RESULTS["fifo_bytes"] == 20    # 5 messages x 4 bytes
        assert RESULTS["proc_readable"]

        # Machine quiescent: no CPU running, nothing queued.
        assert all(cpu.idle for cpu in sim.machine.cpus)
        assert sim.kernel.dispatcher.runnable_count() == 0

    def test_soak_is_deterministic(self):
        def once():
            RESULTS.clear()
            sim = Simulator(ncpus=4, seed=42)
            sim.spawn(mn_worker_process, name="mn")
            sim.spawn(bound_process, name="bound")
            sim.spawn(microtask_process, name="micro")
            sim.spawn(orchestrator, name="orchestrator")
            sim.spawn(liblwp_process, name="liblwp-ish")
            sim.run()
            return sim.now_usec, sim.engine.events_fired

        assert once() == once()
