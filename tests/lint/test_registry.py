"""Rule-registry self-check: one source of truth, no drift.

Every rule id must appear in exactly one rule module's ``RULES`` tuple,
carry a kind, a severity, and a catalogue entry, and be documented in
its module docstring.  ``tools/check_docs.py`` layers the
ARCHITECTURE §9 check on top of this.
"""

from repro.lint import rules
from repro.lint.report import (KIND_BY_RULE, RULE_CATALOGUE,
                               SEVERITY_BY_RULE)


def test_vocabulary_tables_cover_the_same_rules():
    assert set(KIND_BY_RULE) == set(SEVERITY_BY_RULE)
    assert set(KIND_BY_RULE) == set(RULE_CATALOGUE)


def test_rules_tuples_partition_the_catalogue():
    seen = {}
    for mod in rules.ALL_MODULES:
        for rule in mod.RULES:
            assert rule not in seen, \
                f"{rule} owned by both {seen[rule]} and {mod.__name__}"
            seen[rule] = mod.__name__
    assert set(seen) == set(RULE_CATALOGUE), \
        set(seen) ^ set(RULE_CATALOGUE)


def test_every_module_documents_its_rules():
    for mod in rules.ALL_MODULES:
        assert mod.__doc__, mod.__name__
        for rule in mod.RULES:
            assert rule in mod.__doc__, (mod.__name__, rule)


def test_severities_are_valid():
    for rule, sev in SEVERITY_BY_RULE.items():
        assert sev in ("error", "warning"), (rule, sev)


def test_catalogue_entries_are_nonempty_one_liners():
    for rule, text in RULE_CATALOGUE.items():
        assert text.strip(), rule
