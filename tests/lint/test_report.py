"""Report plumbing: deterministic JSON, schema keys shared with the
dynamic findings, suppression comments, baselines, CLI exit codes."""

import io
import json
import os
from contextlib import redirect_stdout

from repro.lint import lint_files, lint_paths
from repro.lint.__main__ import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


class TestDeterminism:
    def test_json_is_byte_identical_across_runs(self):
        a = lint_paths([FIXTURES]).to_json()
        b = lint_paths([FIXTURES]).to_json()
        assert a == b
        assert isinstance(a, str) and a.endswith("\n")

    def test_text_is_identical_across_runs(self):
        a = lint_paths([FIXTURES]).to_text()
        b = lint_paths([FIXTURES]).to_text()
        assert a == b

    def test_findings_sorted_by_location(self):
        report = lint_paths([FIXTURES])
        keys = [f.sort_key for f in report.findings]
        assert keys == sorted(keys)


class TestSchema:
    def test_shares_keys_with_dynamic_findings(self):
        # The JSON schema reuses the explore.ReproBundle finding keys so
        # one tool can consume both static and dynamic reports.
        data = json.loads(lint_paths([FIXTURES]).to_json())
        assert data["findings"], "fixtures should produce findings"
        for entry in data["findings"]:
            for key in ("kind", "subject", "message", "detail",
                        "rule", "severity", "file", "line",
                        "function"):
                assert key in entry, entry

    def test_json_parses_and_counts_match(self):
        report = lint_paths([FIXTURES])
        data = json.loads(report.to_json())
        assert len(data["findings"]) == len(report.findings)


class TestSuppression:
    def _lint_source(self, tmp_path, source):
        path = tmp_path / "prog.py"
        path.write_text(source, encoding="utf-8")
        return lint_files([str(path)])

    def test_line_suppression(self, tmp_path):
        report = self._lint_source(tmp_path, (
            "from repro.sync import Mutex\n"
            "def main():\n"
            "    m = Mutex(name='m')\n"
            "    m.enter()  # lint: allow=L101\n"
            "    yield from m.exit()\n"))
        assert not [f for f in report.findings if f.rule == "L101"]
        assert [f for f in report.suppressed if f.rule == "L101"]

    def test_file_suppression(self, tmp_path):
        report = self._lint_source(tmp_path, (
            "# lint: allow-file=L101,L302\n"
            "from repro.sync import Mutex\n"
            "def main():\n"
            "    m = Mutex(name='m')\n"
            "    m.enter()\n"
            "    yield from m.exit()\n"))
        assert not report.findings
        assert {f.rule for f in report.suppressed} == {"L101", "L302"}

    def test_unrelated_rule_not_suppressed(self, tmp_path):
        report = self._lint_source(tmp_path, (
            "from repro.sync import Mutex\n"
            "def main():\n"
            "    m = Mutex(name='m')\n"
            "    m.enter()  # lint: allow=L999\n"
            "    yield from m.exit()\n"))
        assert [f for f in report.findings if f.rule == "L101"]


class TestBaseline:
    def test_baseline_moves_findings_aside(self):
        first = lint_paths([os.path.join(FIXTURES, "yield_pos.py")])
        fingerprints = [f.fingerprint for f in first.findings]
        assert fingerprints
        again = lint_paths([os.path.join(FIXTURES, "yield_pos.py")],
                           baseline=fingerprints)
        assert not again.findings
        assert len(again.baselined) == len(fingerprints)

    def test_partial_baseline(self):
        path = os.path.join(FIXTURES, "yield_pos.py")
        first = lint_paths([path])
        keep = first.findings[0].fingerprint
        again = lint_paths([path], baseline=[keep])
        assert len(again.findings) == len(first.findings) - 1


class TestCli:
    def _run(self, argv):
        out = io.StringIO()
        with redirect_stdout(out):
            rc = main(argv)
        return rc, out.getvalue()

    def test_exit_1_on_findings(self):
        rc, out = self._run([os.path.join(FIXTURES, "yield_pos.py")])
        assert rc == 1
        assert "L101" in out

    def test_exit_0_on_clean(self):
        rc, _ = self._run([os.path.join(FIXTURES, "yield_neg.py")])
        assert rc == 0

    def test_json_flag(self):
        rc, out = self._run(
            ["--json", os.path.join(FIXTURES, "yield_pos.py")])
        assert rc == 1
        assert json.loads(out)["findings"]

    def test_list_rules(self):
        rc, out = self._run(["--list-rules"])
        assert rc == 0
        for rule in ("L101", "L201", "L301", "L401", "L501", "L601"):
            assert rule in out

    def test_baseline_flag(self, tmp_path):
        path = os.path.join(FIXTURES, "yield_pos.py")
        report = lint_paths([path])
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            "# known findings\n" +
            "".join(f.fingerprint + "\n" for f in report.findings),
            encoding="utf-8")
        rc, _ = self._run(["--baseline", str(baseline), path])
        assert rc == 0
