"""Rule-family coverage: every family has a positive fixture that must
flag exactly its rules, and a negative twin that must stay silent.

The fixtures live in ``tests/lint/fixtures/`` and are analyzed by the
AST linter only — they are never imported or executed.
"""

import os

import pytest

from repro.lint import KIND_BY_RULE, SEVERITY_BY_RULE, lint_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def lint_fixture(name):
    return lint_paths([os.path.join(FIXTURES, name)])


# (fixture, exact rule set the linter must report for it)
CASES = [
    ("yield_pos.py", {"L101", "L102"}),
    ("yield_neg.py", set()),
    ("order_pos.py", {"L201"}),
    ("order_neg.py", set()),
    ("balance_pos.py", {"L301", "L302", "L303", "L305"}),
    ("balance_neg.py", set()),
    ("sema_pos.py", {"L304"}),
    ("sema_neg.py", set()),
    ("condvar_pos.py", {"L401", "L402", "L403"}),
    ("condvar_neg.py", set()),
    ("fork_pos.py", {"L501"}),
    ("fork_neg.py", set()),
    ("lockset_pos.py", {"L601"}),
    ("lockset_neg.py", set()),
    ("blocking_pos.py", {"L701", "L702", "L703"}),
    ("blocking_neg.py", set()),
    ("robust_pos.py", {"L801", "L802", "L803"}),
    ("robust_neg.py", set()),
    ("retry_pos.py", {"L901", "L902", "L903"}),
    ("retry_neg.py", set()),
    ("chain_pos.py", {"L701"}),
    ("recursion_pos.py", {"L701"}),
    ("recursion_neg.py", set()),
]


@pytest.mark.parametrize("fixture,expected",
                         CASES, ids=[c[0] for c in CASES])
def test_fixture_rules(fixture, expected):
    report = lint_fixture(fixture)
    got = {f.rule for f in report.findings}
    assert got == expected, report.to_text()


def test_all_fixtures_together_is_the_union():
    # A shared-sink run over every fixture at once must not invent
    # cross-file findings: local locks in different files never alias.
    report = lint_paths([FIXTURES])
    got = {(f.file.rsplit("/", 1)[-1], f.rule) for f in report.findings}
    expected = {(name, rule) for name, rules in CASES for rule in rules}
    assert got == expected, report.to_text()


def test_findings_carry_location_and_witness():
    report = lint_fixture("balance_pos.py")
    leak = [f for f in report.findings if f.rule == "L301"]
    assert leak, report.to_text()
    for f in leak:
        assert f.file.endswith("balance_pos.py")
        assert f.line > 0
        assert f.function == "leaky_return"
        assert f.subject == "leak"
        assert "held" in f.detail
    order = lint_fixture("order_pos.py").findings[0]
    assert order.subject == "fixA -> fixB"   # sorted cycle members
    assert "edges" in order.detail


def test_every_rule_has_kind_and_severity():
    for rules in (r for _, r in CASES):
        for rule in rules:
            assert rule in KIND_BY_RULE
            assert SEVERITY_BY_RULE[rule] in ("error", "warning")


def test_tryenter_adds_no_order_edge():
    # order_neg reverses the lock order but backs off with tryenter;
    # the static hierarchy must stay acyclic.
    report = lint_fixture("order_neg.py")
    assert not [f for f in report.findings if f.rule == "L201"]
