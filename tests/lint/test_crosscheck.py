"""Static/dynamic cross-check (the ``--corpus`` contract).

The same seeded-bug corpus that calibrates the dynamic detectors also
calibrates the linter: every ``STATIC_EXPECT`` tag must be flagged with
the expected rule, the clean corpus must stay finding-free, and the
static lock-order cycles must be subset-consistent with what the
dynamic ``LockOrderDetector`` observes on real interleavings.
"""

import ast
import os

from repro.explore import corpus
from repro.explore.explorer import Explorer
from repro.lint import lint_files
from repro.lint.__main__ import _corpus_check


def _corpus_findings():
    return lint_files([corpus.__file__]).findings


def _spans():
    with open(corpus.__file__, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read())
    return {node.name: (node.lineno, node.end_lineno)
            for node in tree.body
            if isinstance(node, ast.FunctionDef)}


def _rules_in(findings, spans, name):
    lo, hi = spans[name]
    return {f.rule for f in findings if lo <= f.line <= hi}


class TestStaticExpect:
    def test_every_tag_is_flagged(self):
        findings = _corpus_findings()
        spans = _spans()
        for name, expected in corpus.STATIC_EXPECT.items():
            got = _rules_in(findings, spans, name)
            assert expected <= got, (name, expected, got)

    def test_clean_corpus_is_finding_free(self):
        findings = _corpus_findings()
        spans = _spans()
        for name in corpus.CLEAN:
            got = _rules_in(findings, spans, name)
            assert not got, (name, got)

    def test_cli_corpus_mode_passes(self):
        assert _corpus_check(None) == 0


class TestNetAndCrashEntries:
    """PR 6–7 corpus entries carry static_expect tags too: their seeded
    bugs are policy bugs (dynamic-only), so the tags are explicit
    *clean pins* — any rule firing on their code is a false positive."""

    def test_all_net_entries_are_tagged(self):
        for name in ("lossy_server", "crash_storm_server"):
            assert name in corpus.STATIC_EXPECT
            assert corpus.STATIC_EXPECT[name] == set()

    def test_socket_server_helper_statically_clean(self):
        findings = _corpus_findings()
        spans = _spans()
        assert not _rules_in(findings, spans, "_socket_server")

    def test_network_server_workload_statically_clean(self):
        path = os.path.join(
            os.path.dirname(os.path.dirname(corpus.__file__)),
            "workloads", "network_server.py")
        report = lint_files([path])
        assert not report.findings, report.to_text()

    def test_span_attribution_reaches_the_delegated_code(self):
        # The cross-check must look at the code the factories delegate
        # to, not just their (trivial) lexical spans.
        assert "_socket_server" in corpus.STATIC_SPANS["lossy_server"]
        assert ("workloads:network_server"
                in corpus.STATIC_SPANS["crash_storm_server"])
        assert ("workloads:network_server"
                in corpus.STATIC_SPANS["clean_supervised_server"])


class TestStaticVsDynamic:
    def test_lock_order_cycles_subset_consistent(self):
        # Static analysis over-approximates: every cycle the dynamic
        # LockOrderDetector witnesses on an actual interleaving must
        # already be in the static report (same subject format:
        # " -> ".join(sorted(names))).
        factory, _expected = corpus.BUGGY["ab_ba_locks"]
        report = Explorer(factory, program="ab_ba_locks", runs=16,
                          seed=3, stop_on_first=False).explore()
        dynamic = {f.subject
                   for result in report.results
                   for f in result.findings
                   if f.kind == "lock-order"}
        assert dynamic, "explorer should witness the AB/BA cycle"

        spans = _spans()
        static = {f.subject for f in _corpus_findings()
                  if f.rule == "L201"
                  and spans["ab_ba_locks"][0] <= f.line
                  <= spans["ab_ba_locks"][1]}
        assert dynamic <= static, (dynamic, static)

    def test_static_race_matches_dynamic_kind(self):
        # racy_counter: the static L601 finding reports the same kind
        # string the dynamic lockset detector uses, so downstream
        # consumers can join the two reports.
        findings = _corpus_findings()
        spans = _spans()
        lo, hi = spans["racy_counter"]
        races = [f for f in findings
                 if f.rule == "L601" and lo <= f.line <= hi]
        assert races
        assert all(f.kind == "data-race" for f in races)
