"""Interprocedural summaries: the whole point of PR 8.

The acceptance case: a lock acquired in the caller and a ``recv`` two
calls deeper.  The default (whole-program) analyzer reports L701 with a
cross-function trace; ``interprocedural=False`` — the pre-PR local
analyzer, exposed as ``--no-summaries`` — provably misses it.  The
other tests drive the summary machinery directly: widened recursion,
delta application beyond the inline depth cap, and serial-vs-parallel
byte parity.
"""

import os

from repro.lint import absint, lint_files, lint_paths, summaries
from repro.lint.loader import load_module

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture(name):
    return os.path.join(FIXTURES, name)


class TestAcceptance:
    def test_chain_caught_interprocedurally(self):
        report = lint_paths([_fixture("chain_pos.py")])
        rules = {f.rule for f in report.findings}
        assert rules == {"L701"}, report.to_text()

    def test_chain_missed_by_local_analyzer(self):
        # The pre-PR intraprocedural behavior: helpers are opaque, so
        # each function is clean in isolation.
        report = lint_paths([_fixture("chain_pos.py")],
                            interprocedural=False)
        assert not report.findings, report.to_text()

    def test_finding_carries_interprocedural_trace(self):
        report = lint_paths([_fixture("chain_pos.py")])
        f = report.findings[0]
        trace = f.detail["trace"]
        assert "chain-m" in trace and "serve" in trace
        assert "read_bytes" in trace
        assert "via read_request" in trace
        assert "[" in f.format() and "chain-m" in f.format()


class TestRecursionWidening:
    def test_recursive_summary_is_widened_but_keeps_blocks(self):
        module = load_module(_fixture("recursion_pos.py"))
        summs = summaries.compute(module)
        pump = summs["pump"]
        assert pump.widened
        assert pump.deltas is None          # top: no lock effect known
        assert any(s.reason == "net-recv" for s in pump.blocks)

    def test_recursive_chain_flagged(self):
        rules = {f.rule
                 for f in lint_paths([_fixture("recursion_pos.py")])
                 .findings}
        assert rules == {"L701"}

    def test_recursive_chain_clean_without_lock(self):
        assert not lint_paths([_fixture("recursion_neg.py")]).findings


class TestSummaryDeltas:
    """Beyond the inline horizon the interpreter applies the callee's
    lock *delta*, so balance rules see through helpers too."""

    SRC_ACQUIRES = (
        "from repro.runtime import libc\n"
        "from repro.sync import Mutex\n"
        "def main():\n"
        "    m = Mutex(name='deep')\n"
        "    yield from grab(m)\n"
        "    yield from libc.compute(1)\n"
        "    return\n"
        "def grab(m):\n"
        "    yield from m.enter()\n")

    SRC_BALANCED = (
        "from repro.runtime import libc\n"
        "from repro.sync import Mutex\n"
        "def main():\n"
        "    m = Mutex(name='bal')\n"
        "    yield from visit(m)\n"
        "    yield from libc.compute(1)\n"
        "def visit(m):\n"
        "    yield from m.enter()\n"
        "    yield from libc.compute(1)\n"
        "    yield from m.exit()\n")

    def _lint(self, tmp_path, src):
        path = tmp_path / "prog.py"
        path.write_text(src, encoding="utf-8")
        return lint_files([str(path)])

    def test_l301_through_helper_summary(self, tmp_path, monkeypatch):
        # Depth cap 1 forbids all inlining: only the summary delta can
        # tell main() that grab() left `deep` held.
        monkeypatch.setattr(absint, "MAX_INLINE_DEPTH", 1)
        report = self._lint(tmp_path, self.SRC_ACQUIRES)
        assert "L301" in {f.rule for f in report.findings}, \
            report.to_text()

    def test_balanced_helper_is_identity(self, tmp_path, monkeypatch):
        monkeypatch.setattr(absint, "MAX_INLINE_DEPTH", 1)
        report = self._lint(tmp_path, self.SRC_BALANCED)
        assert not report.findings, report.to_text()

    def test_same_verdict_as_full_inlining(self, tmp_path):
        # Without the cap the inliner reaches the same conclusion.
        report = self._lint(tmp_path, self.SRC_ACQUIRES)
        assert "L301" in {f.rule for f in report.findings}


class TestJobsParity:
    def test_parallel_report_byte_identical(self):
        serial = lint_paths([FIXTURES]).to_json()
        parallel = lint_paths([FIXTURES], jobs=4).to_json()
        assert serial == parallel

    def test_parallel_no_summaries_parity(self):
        serial = lint_paths([FIXTURES], interprocedural=False).to_json()
        parallel = lint_paths([FIXTURES], interprocedural=False,
                              jobs=3).to_json()
        assert serial == parallel

    def test_new_finding_json_deterministic(self):
        a = lint_paths([_fixture("blocking_pos.py"),
                        _fixture("robust_pos.py"),
                        _fixture("retry_pos.py")]).to_json()
        b = lint_paths([_fixture("blocking_pos.py"),
                        _fixture("robust_pos.py"),
                        _fixture("retry_pos.py")]).to_json()
        assert a == b
