"""Positive fixture: L401 (wait without mutex), L402 (if-guarded
wait), L403 (signal without the waiters' mutex)."""
from repro import threads
from repro.runtime import libc
from repro.sync import CondVar, Mutex


def main():
    m = Mutex(name="cv-m")
    cv = CondVar(name="cv")
    state = {"ready": False}

    def waiter(_):
        yield from m.enter()
        if not state["ready"]:          # L402: if, not while
            yield from cv.wait(m)
        yield from m.exit()

    def bare_waiter(_):
        yield from cv.wait(m)           # L401: mutex not held (+L402)

    def poker(_):
        state["ready"] = True
        yield from cv.signal()          # L403: mutex not held

    t1 = yield from threads.thread_create(waiter, 0)
    t2 = yield from threads.thread_create(bare_waiter, 0)
    t3 = yield from threads.thread_create(poker, 0)
    for tid in (t1, t2, t3):
        yield from threads.thread_wait(tid)
    yield from libc.compute(1)
