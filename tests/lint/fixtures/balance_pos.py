"""Positive fixture: L301 (early-return leak), L302 (release unheld),
L303 (double enter), L305 (loop leaks a lock per iteration)."""
from repro.runtime import libc
from repro.sync import Mutex


def leaky_return(flag):
    m = Mutex(name="leak")
    yield from m.enter()
    if flag:
        return                      # L301: early return holding `leak`
    yield from libc.compute(5)
    if flag:
        return                      # L301 here too
    yield from m.exit()


def release_unheld():
    m = Mutex(name="bare")
    yield from libc.compute(1)
    yield from m.exit()             # L302: never entered


def double_enter():
    m = Mutex(name="twice")
    yield from m.enter()
    yield from m.enter()            # L303: self-deadlock
    yield from m.exit()
    yield from m.exit()


def loop_leak():
    m = Mutex(name="drip")
    for _ in range(4):
        yield from m.enter()        # L305: held set grows per iteration
        yield from libc.compute(1)
