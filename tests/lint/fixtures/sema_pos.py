"""Positive fixture: L304 — pool semaphore V'd twice for one P."""
from repro.runtime import libc
from repro.sync import Semaphore


def main():
    pool = Semaphore(3, name="fix-pool")
    yield from pool.p()
    yield from libc.compute(5)
    yield from pool.v()
    yield from pool.v()             # L304: in-use count underflows
