"""Negative fixture: balanced pool P/V, and an initial-0 notification
semaphore whose V-before-P must not be called an underflow."""
from repro.runtime import libc
from repro.sync import Semaphore


def pool_user():
    pool = Semaphore(3, name="ok-pool")
    yield from pool.p()
    yield from libc.compute(5)
    yield from pool.v()


def notifier():
    done = Semaphore(0, name="notify")
    yield from done.v()             # initial-0: pure notification
    yield from done.p()
