"""Positive fixture: L801 (EOWNERDEAD result ignored in a crash-aware
function), L802 (consistent() while not holding), L803 (release with
the owner-death mark unrepaired)."""
from repro.runtime import libc
from repro.sync import Mutex


def mixed_discipline():
    m = Mutex(name="rob")
    if (yield from m.enter()):      # owner died: repair before use
        m.consistent()
    yield from libc.compute(2)
    yield from m.exit()
    yield from m.enter()            # L801: EOWNERDEAD result discarded
    yield from libc.compute(2)
    yield from m.exit()


def repair_outside():
    m2 = Mutex(name="rob2")
    yield from libc.compute(1)
    m2.consistent()                 # L802: not holding rob2


def brick():
    m3 = Mutex(name="rob3")
    if (yield from m3.enter()):
        yield from libc.compute(1)  # saw EOWNERDEAD, repairs nothing
    yield from m3.exit()            # L803: released unrepaired
