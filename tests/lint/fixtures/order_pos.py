"""Positive fixture: L201 — AB/BA blocking acquires form a cycle."""
from repro import threads
from repro.sync import Mutex


def main():
    a = Mutex(name="fixA")
    b = Mutex(name="fixB")

    def forward(_):
        yield from a.enter()
        yield from b.enter()
        yield from b.exit()
        yield from a.exit()

    def backward(_):
        yield from b.enter()
        yield from a.enter()
        yield from a.exit()
        yield from b.exit()

    t1 = yield from threads.thread_create(forward, 0)
    t2 = yield from threads.thread_create(backward, 0)
    yield from threads.thread_wait(t1)
    yield from threads.thread_wait(t2)
