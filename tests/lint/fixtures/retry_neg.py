"""Negative twin: a retry that escalates out of the loop, a worker on
recv_with_deadline, a restart loop that backs off, and a Supervisor
with a real backoff base all stay silent."""
from repro import threads
from repro.errors import SyscallError
from repro.runtime import libc, unistd
from repro.threads import retry
from repro.threads.supervisor import Supervisor


def escalates(fd):
    while True:
        try:
            yield from unistd.connect(fd, 9_001)
            break
        except SyscallError:
            raise                   # handler exits the loop: bounded


def main():
    def worker(_):
        fd = yield from unistd.socket()
        try:
            data = yield from retry.recv_with_deadline(fd, 64, 1_000.0)
        except SyscallError:
            data = b""
        yield from unistd.close(fd)
        return data

    tid = yield from threads.thread_create(worker, 0)
    yield from threads.thread_wait(tid)


def body(_):
    yield from libc.compute(5)


def restart_with_backoff():
    while True:
        tid = yield from threads.thread_create(body, 0)
        yield from threads.thread_wait(tid)
        yield from unistd.sleep_usec(2_000.0)   # backoff between rounds


def sane_supervisor():
    sup = Supervisor(name="s", backoff_base_usec=500.0)
    return sup
