"""Acceptance fixture for the interprocedural upgrade: the lock is
acquired in ``serve``, and the blocking ``recv`` happens two calls
deeper in ``read_bytes``.  The whole-program analyzer reports L701
with the cross-function trace; the ``--no-summaries`` local analyzer
(the pre-interprocedural behavior) provably misses it — each function
is clean in isolation."""
from repro.runtime import unistd
from repro.sync import Mutex


def serve(fd):
    m = Mutex(name="chain-m")
    yield from m.enter()
    req = yield from read_request(fd)   # L701 surfaces through here
    yield from m.exit()
    return req


def read_request(fd):
    hdr = yield from read_bytes(fd)
    return hdr


def read_bytes(fd):
    data = yield from unistd.recv(fd, 64)   # blocks; lock held by caller
    return data
