"""Positive fixture: L601 — unlocked read-modify-write of a shared
mapped cell from threads spawned in a loop."""
from repro import threads
from repro.runtime import libc, mapped


def main():
    region = yield from mapped.map_anon_shared(4096)
    yield from region.cell_store(0, 0)

    def worker(_i):
        value = yield from region.cell_load(0)
        yield from libc.compute(5)
        yield from region.cell_store(0, value + 1)   # L601

    tids = []
    for i in range(3):
        tid = yield from threads.thread_create(
            worker, i, flags=threads.THREAD_WAIT)
        tids.append(tid)
    for tid in tids:
        yield from threads.thread_wait(tid)
