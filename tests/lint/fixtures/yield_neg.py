"""Negative fixture: every generator API properly driven or stored."""
from repro import threads
from repro.runtime import libc
from repro.sync import Mutex


def main():
    m = Mutex(name="m")
    yield from m.enter()
    yield from libc.compute(10)
    yield from m.exit()
    pending = threads.thread_yield()   # stored: may be driven later
    yield from pending
