"""Positive fixture: L901 (unbounded swallow-and-retry around a net
attempt), L902 (bare recv in a spawned worker), L903 (restart loop
with no backoff, and Supervisor(backoff_base_usec=0))."""
from repro import threads
from repro.errors import SyscallError
from repro.runtime import libc, unistd
from repro.threads.supervisor import Supervisor


def hammer(fd):
    while True:                     # L901: retries forever, failures
        try:                        # swallowed, no budget or deadline
            yield from unistd.connect(fd, 9_000)
        except SyscallError:
            pass


def main():
    def worker(_):
        fd = yield from unistd.socket()
        data = yield from unistd.recv(fd, 64)   # L902: bare recv
        yield from unistd.close(fd)
        return data

    tid = yield from threads.thread_create(worker, 0)
    yield from threads.thread_wait(tid)


def body(_):
    yield from libc.compute(5)


def restart_forever():
    while True:                     # L903: full-speed respawn loop
        tid = yield from threads.thread_create(body, 0)
        yield from threads.thread_wait(tid)


def no_backoff():
    sup = Supervisor(name="s", backoff_base_usec=0)   # L903
    return sup
