"""Positive fixture: L101 (discarded generator) and L102 (yield)."""
from repro import threads
from repro.runtime import libc
from repro.sync import Mutex


def main():
    m = Mutex(name="m")
    m.enter()                      # L101: never driven, lock not taken
    yield m.exit()                 # L102: yields the generator object
    libc.compute(10)               # L101: function form, also discarded
    yield from threads.thread_yield()
