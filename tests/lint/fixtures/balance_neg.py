"""Negative fixture: balanced bracketing, including the decorrelated
tryenter success test the definite (all-paths) semantics must not
flag, and a helper that intentionally returns holding the lock (its
caller releases — resolved through inlining)."""
from repro.runtime import libc
from repro.sync import Mutex


def try_protocol():
    m = Mutex(name="try")
    got = yield from m.tryenter()
    if got:
        yield from libc.compute(5)
        yield from m.exit()         # only on the success path: clean
    yield from libc.compute(1)


def lock_helper(m):
    yield from m.enter()            # caller releases: clean via inline
    yield from libc.compute(1)


def balanced():
    m = Mutex(name="bal")
    yield from lock_helper(m)
    yield from libc.compute(5)
    yield from m.exit()


def loop_balanced():
    m = Mutex(name="loop")
    for _ in range(4):
        yield from m.enter()
        yield from libc.compute(1)
        yield from m.exit()
