"""Negative twin: the full enter-robust idiom (check, repair, release)
stays silent, and a bare enter of a mutex *nobody* ever repairs is not
L801 — that program is not crash-aware, so the robust protocol rules
stand down."""
from repro.runtime import libc
from repro.sync import Mutex


def disciplined():
    m = Mutex(name="neg-rob")
    if (yield from m.enter()):
        m.consistent()              # repaired before any release
    yield from libc.compute(2)
    yield from m.exit()


def negated_test():
    m = Mutex(name="neg-rob2")
    if not (yield from m.enter()):
        yield from libc.compute(1)  # healthy branch
    else:
        m.consistent()
    yield from m.exit()


def tolerated_bare():
    m2 = Mutex(name="never-repaired")
    yield from m2.enter()           # no consistent() anywhere: no L801
    yield from libc.compute(2)
    yield from m2.exit()
