"""Recursion twin: same recursive pump, but the caller releases the
lock before pumping — nothing blocks under a lock."""
from repro.runtime import libc, unistd
from repro.sync import Mutex


def serve(fd):
    m = Mutex(name="recn-m")
    yield from m.enter()
    yield from libc.compute(2)
    yield from m.exit()
    yield from pump(fd, 4)


def pump(fd, n):
    data = yield from unistd.recv(fd, 16)
    if n:
        yield from pump(fd, n - 1)
    return data
