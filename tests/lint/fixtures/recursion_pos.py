"""Recursion-widening fixture: ``pump`` recurses, so its summary gets
the widened top delta (no lock effect assumed) — but its may-block
fact survives widening, and the recv under ``serve``'s lock is still
L701."""
from repro.runtime import unistd
from repro.sync import Mutex


def serve(fd):
    m = Mutex(name="rec-m")
    yield from m.enter()
    yield from pump(fd, 4)
    yield from m.exit()


def pump(fd, n):
    data = yield from unistd.recv(fd, 16)   # blocks inside the lock
    if n:
        yield from pump(fd, n - 1)          # recursion: widened summary
    return data
