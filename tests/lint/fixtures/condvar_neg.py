"""Negative fixture: the paper's canonical monitor — while-loop
re-test around the wait, signal delivered under the mutex."""
from repro import threads
from repro.sync import CondVar, Mutex


def main():
    m = Mutex(name="mon-m")
    cv = CondVar(name="mon-cv")
    state = {"ready": False}

    def waiter(_):
        yield from m.enter()
        while not state["ready"]:
            yield from cv.wait(m)
        yield from m.exit()

    def poker(_):
        yield from m.enter()
        state["ready"] = True
        yield from cv.signal()
        yield from m.exit()

    t1 = yield from threads.thread_create(waiter, 0)
    t2 = yield from threads.thread_create(poker, 0)
    yield from threads.thread_wait(t1)
    yield from threads.thread_wait(t2)
