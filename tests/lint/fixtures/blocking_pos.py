"""Positive fixture: L701 (net syscall under lock), L702 (sleep under
lock), L703 (cv wait holding a lock beyond its paired mutex)."""
from repro.runtime import libc, unistd
from repro.sync import CondVar, Mutex


def serves_under_lock(fd):
    m = Mutex(name="srv-m")
    yield from m.enter()
    data = yield from unistd.recv(fd, 64)   # L701: recv holding srv-m
    yield from m.exit()
    return data


def sleeps_under_lock():
    m = Mutex(name="nap-m")
    yield from m.enter()
    yield from unistd.sleep_usec(1_000.0)   # L702: sleep holding nap-m
    yield from m.exit()


def waits_holding_extra(flag):
    m = Mutex(name="wl-m")
    extra = Mutex(name="wl-extra")
    cv = CondVar(name="wl-cv")
    yield from extra.enter()
    yield from m.enter()
    while not flag:
        yield from cv.wait(m)               # L703: wl-extra stays held
    yield from libc.compute(1)
    yield from m.exit()
    yield from extra.exit()
