"""Negative fixture: fork with no locks held, and fork1() (duplicate
only the forking LWP) which is exempt by design."""
from repro.runtime import unistd
from repro.sync import Mutex


def main():
    m = Mutex(name="parent-lock")
    yield from m.enter()
    yield from m.exit()
    pid = yield from unistd.fork()      # nothing held: clean
    if pid == 0:
        yield from unistd.exit(0)
    yield from unistd.waitpid(pid)
    yield from m.enter()
    pid2 = yield from unistd.fork1()    # fork1 is always exempt
    if pid2 == 0:
        yield from unistd.exit(0)
    yield from m.exit()
    yield from unistd.waitpid(pid2)
