"""Negative fixture: same shape, but every access holds the counter
mutex — and the main thread's post-join read is sequential, not a
race."""
from repro import threads
from repro.runtime import libc, mapped
from repro.sync import Mutex


def main():
    region = yield from mapped.map_anon_shared(4096)
    yield from region.cell_store(0, 0)
    m = Mutex(name="counter")

    def worker(_i):
        yield from m.enter()
        value = yield from region.cell_load(0)
        yield from libc.compute(5)
        yield from region.cell_store(0, value + 1)
        yield from m.exit()

    tids = []
    for i in range(3):
        tid = yield from threads.thread_create(
            worker, i, flags=threads.THREAD_WAIT)
        tids.append(tid)
    for tid in tids:
        yield from threads.thread_wait(tid)
    total = yield from region.cell_load(0)   # post-join: sequential
    assert total == 3, total
