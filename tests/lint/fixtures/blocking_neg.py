"""Negative twin: blocking ops outside the lock, the bounded
recv_with_deadline variant under a lock, and a wait holding only its
own mutex must all stay silent."""
from repro.errors import SyscallError
from repro.runtime import libc, unistd
from repro.sync import CondVar, Mutex
from repro.threads import retry


def serves_outside_lock(fd):
    m = Mutex(name="ok-m")
    yield from m.enter()
    yield from libc.compute(3)
    yield from m.exit()
    data = yield from unistd.recv(fd, 64)   # no lock held: fine
    return data


def deadline_under_lock(fd):
    m = Mutex(name="dl-m")
    yield from m.enter()
    try:
        data = yield from retry.recv_with_deadline(fd, 64, 1_000.0)
    except SyscallError:
        data = b""
    yield from m.exit()
    return data


def sleeps_outside_lock():
    m = Mutex(name="zz-m")
    yield from m.enter()
    yield from libc.compute(3)
    yield from m.exit()
    yield from unistd.sleep_usec(1_000.0)


def waits_clean(flag):
    m = Mutex(name="wc-m")
    cv = CondVar(name="wc-cv")
    yield from m.enter()
    while not flag:
        yield from cv.wait(m)               # only its own mutex held
    yield from m.exit()
