"""Positive fixture: L501 — fork() while a lock is held."""
from repro.runtime import unistd
from repro.sync import Mutex


def main():
    m = Mutex(name="parent-lock")
    yield from m.enter()
    pid = yield from unistd.fork()  # L501: child inherits locked lock
    if pid == 0:
        yield from unistd.exit(0)
    yield from m.exit()
    yield from unistd.waitpid(pid)
