"""The four network fault rules (repro.sim.faults) against real sockets.

Each rule is exercised at probability 1.0 for visible behavior, then the
whole composed plan is serialized, rebuilt, and replayed to an identical
trace digest — the property every CI repro bundle depends on.
"""

import pytest

from repro.api import Simulator
from repro.errors import Errno, SyscallError
from repro.kernel.signals import SIG_IGN, Sig
from repro.runtime import unistd
from repro.sim.faults import (AcceptStall, ConnDrop, FaultPlan, PacketDelay,
                              PeerReset)
from repro.sim.trace import DigestSink
from repro.threads import api as threads
from tests.conftest import run_program

PORT = 5800


def _listener(port=PORT, backlog=4):
    lfd = yield from unistd.socket()
    yield from unistd.bind(lfd, port)
    yield from unistd.listen(lfd, backlog)
    return lfd


class TestConnDrop:
    def test_refuse_mode(self):
        def main():
            yield from _listener()
            fd = yield from unistd.socket()
            with pytest.raises(SyscallError) as exc:
                yield from unistd.connect(fd, PORT)
            assert exc.value.errno == Errno.ECONNREFUSED

        plan = FaultPlan([ConnDrop(port=PORT, mode="refuse")])
        run_program(main, faults=plan)

    def test_timeout_mode_waits_out_the_handshake(self):
        stamps = {}

        def main():
            yield from _listener()
            fd = yield from unistd.socket()
            stamps["start"] = yield from unistd.gettimeofday()
            with pytest.raises(SyscallError) as exc:
                yield from unistd.connect(fd, PORT)
            assert exc.value.errno == Errno.ETIMEDOUT
            stamps["end"] = yield from unistd.gettimeofday()

        plan = FaultPlan([ConnDrop(port=PORT, mode="timeout",
                                   timeout_usec=4_000.0)])
        run_program(main, faults=plan)
        assert (stamps["end"] - stamps["start"]) / 1000.0 >= 4_000.0

    def test_other_ports_unaffected(self):
        def main():
            yield from _listener(port=PORT + 1)
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT + 1)

        plan = FaultPlan([ConnDrop(port=PORT, mode="refuse")])
        run_program(main, faults=plan)


class TestAcceptStall:
    def test_stall_delays_the_accept(self):
        stamps = {}

        def main():
            lfd = yield from _listener()
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            stamps["start"] = yield from unistd.gettimeofday()
            yield from unistd.accept(lfd)
            stamps["end"] = yield from unistd.gettimeofday()

        plan = FaultPlan([AcceptStall(port=PORT, stall_usec=3_000.0)])
        run_program(main, faults=plan)
        assert (stamps["end"] - stamps["start"]) / 1000.0 >= 3_000.0
        # The connection still lands: a stall is pressure, not loss.


class TestPacketDelay:
    def test_transfer_latency_added(self):
        def run(plan):
            stamps = {}

            def main():
                lfd = yield from _listener()
                fd = yield from unistd.socket()
                yield from unistd.connect(fd, PORT)
                conn = yield from unistd.accept(lfd)
                stamps["start"] = yield from unistd.gettimeofday()
                yield from unistd.send(fd, b"x" * 64)
                yield from unistd.recv(conn, 64)
                stamps["end"] = yield from unistd.gettimeofday()

            run_program(main, faults=plan, seed=3)
            return (stamps["end"] - stamps["start"]) / 1000.0

        base = run(None)
        delayed = run(FaultPlan([PacketDelay(op="*", max_usec=2_000.0)]))
        assert delayed > base


class TestPeerReset:
    def test_send_reset_mid_stream(self):
        def main():
            yield from unistd.sigaction(int(Sig.SIGPIPE), SIG_IGN)
            lfd = yield from _listener()
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            conn = yield from unistd.accept(lfd)
            with pytest.raises(SyscallError) as exc:
                yield from unistd.send(fd, b"doomed")
            assert exc.value.errno == Errno.ECONNRESET
            # The other endpoint observes the same reset.
            with pytest.raises(SyscallError) as exc:
                yield from unistd.recv(conn, 16)
            assert exc.value.errno == Errno.ECONNRESET

        plan = FaultPlan([PeerReset(op="send")])
        sim, _ = run_program(main, faults=plan)
        assert sim.kernel.net.resets == 1

    def test_pattern_selects_one_side(self):
        # Pattern matches only server-side endpoints; the client's send
        # is untouched, the server's reply triggers the reset.
        def main():
            yield from unistd.sigaction(int(Sig.SIGPIPE), SIG_IGN)
            lfd = yield from _listener()
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            conn = yield from unistd.accept(lfd)
            yield from unistd.send(fd, b"fine")
            with pytest.raises(SyscallError) as exc:
                yield from unistd.send(conn, b"doomed")
            assert exc.value.errno == Errno.ECONNRESET

        plan = FaultPlan([PeerReset(op="send", pattern=f"sock:{PORT}#*")])
        run_program(main, faults=plan)


class TestComposedReplay:
    """Serialized net-fault plans replay to identical trace digests."""

    PLAN = FaultPlan([
        ConnDrop(port=PORT, mode="refuse", probability=0.3),
        AcceptStall(port=PORT, stall_usec=500.0, probability=0.4),
        PacketDelay(op="*", max_usec=300.0, probability=0.5),
        PeerReset(op="send", probability=0.1),
    ])

    def _digest(self, faults_dict: dict, seed: int) -> str:
        stats = {"ok": 0, "failed": 0}

        def echo_main():
            yield from unistd.sigaction(int(Sig.SIGPIPE), SIG_IGN)
            lfd = yield from _listener()

            def server(_):
                for _ in range(6):
                    try:
                        conn = yield from unistd.accept(lfd)
                        data = yield from unistd.recv(conn, 16)
                        if data:
                            yield from unistd.send(conn, data)
                        yield from unistd.close(conn)
                    except SyscallError:
                        pass

            tid = yield from threads.thread_create(
                server, None,
                flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)
            for i in range(6):
                fd = yield from unistd.socket()
                try:
                    yield from unistd.connect(fd, PORT)
                    yield from unistd.send(fd, b"ping")
                    yield from unistd.recv(fd, 16)
                    stats["ok"] += 1
                except SyscallError:
                    stats["failed"] += 1
                    # The server's accept loop still expects a turn:
                    # feed it a fresh connect so it never hangs.
                    fd2 = yield from unistd.socket()
                    try:
                        yield from unistd.connect(fd2, PORT)
                    except SyscallError:
                        pass
                yield from unistd.close(fd)
            yield from unistd.close(lfd)

        sink = DigestSink()
        sim = Simulator(ncpus=2, seed=seed, trace=True, trace_sink=sink,
                        trace_store=False,
                        faults=FaultPlan.from_dict(faults_dict))
        sim.spawn(echo_main)
        sim.run(check_deadlock=False, max_events=200_000)
        return sink.hexdigest()

    def test_round_trip_replays_bit_for_bit(self):
        data = self.PLAN.to_dict()
        assert FaultPlan.from_dict(data).to_dict() == data
        for seed in (1, 2):
            assert self._digest(data, seed) == self._digest(data, seed)

    def test_different_seeds_draw_different_faults(self):
        data = self.PLAN.to_dict()
        assert self._digest(data, 1) != self._digest(data, 2)
