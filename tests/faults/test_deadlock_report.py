"""Tests for the wait-for-graph hang diagnostics.

A hang used to die with a bare "no events left" complaint.  Now the
DeadlockError carries a report naming every blocked thread, the resource
it waits on, who holds it, since when — and the cycle, when there is one.
"""

import pytest

from repro.errors import DeadlockError
from repro import threads
from repro.runtime import libc
from repro.sync import Mutex
from tests.conftest import run_program


class TestAbbaDeadlock:
    def _run_abba(self):
        """Two threads acquiring mutexes A and B in opposite orders, with
        yields placed so both take their first lock before either takes
        its second: the textbook AB/BA deadlock."""
        a = Mutex(name="A")
        b = Mutex(name="B")

        def t1(_):
            yield from a.enter()
            yield from threads.thread_yield()
            yield from b.enter()

        def t2(_):
            yield from b.enter()
            yield from threads.thread_yield()
            yield from a.enter()

        def main():
            tid1 = yield from threads.thread_create(
                t1, None, flags=threads.THREAD_WAIT)
            tid2 = yield from threads.thread_create(
                t2, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid1)
            yield from threads.thread_wait(tid2)

        with pytest.raises(DeadlockError) as exc:
            run_program(main)
        return str(exc.value)

    def test_report_names_threads_mutexes_and_edges(self):
        report = self._run_abba()
        # Both mutexes by name, with hold/wait edges.
        assert "mutex 'A'" in report
        assert "mutex 'B'" in report
        assert "held by" in report
        # Both deadlocked threads by name (main is thread-1; the two
        # workers are created next).
        assert "thread-2" in report
        assert "thread-3" in report
        # The cycle itself is called out, with wait durations.
        assert "deadlock cycle detected:" in report
        assert "waiting" in report and "since t=" in report

    def test_cycle_contains_exactly_the_abba_pair(self):
        report = self._run_abba()
        cycle = report.split("deadlock cycle detected:", 1)[1]
        lines = [l for l in cycle.strip().splitlines() if l.strip()]
        assert len(lines) == 2
        text = "\n".join(lines)
        assert "mutex 'A'" in text and "mutex 'B'" in text
        # main (thread-1) waits on thread-exit, not in the cycle.
        assert "thread-1" not in text

    def test_original_complaint_preserved(self):
        report = self._run_abba()
        # The engine's original complaint still leads the message, so
        # pre-existing matchers keep working.
        assert "hang diagnosis" in report


class TestDiningPhilosophers:
    N = 5

    def _philosophers(self, naive: bool):
        forks = [Mutex(name=f"fork{i}") for i in range(self.N)]

        def philosopher(i):
            left, right = forks[i], forks[(i + 1) % self.N]
            yield from libc.compute(100)  # think
            if naive:
                # Everyone grabs the left fork first: circular wait.
                yield from left.enter()
                yield from threads.thread_yield()  # fatal window
                yield from right.enter()
            else:
                while True:
                    yield from left.enter()
                    got = yield from right.tryenter()
                    if got:
                        break
                    yield from left.exit()
                    yield from threads.thread_yield()
            yield from libc.compute(200)  # eat
            yield from right.exit()
            yield from left.exit()

        def main():
            tids = []
            for i in range(self.N):
                tid = yield from threads.thread_create(
                    philosopher, i, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        return main

    def test_naive_five_way_cycle_reported(self):
        with pytest.raises(DeadlockError) as exc:
            run_program(self._philosophers(naive=True))
        report = str(exc.value)
        assert "deadlock cycle detected:" in report
        for i in range(self.N):
            assert f"mutex 'fork{i}'" in report

    def test_tryenter_variant_completes(self):
        run_program(self._philosophers(naive=False))


class TestLostWakeup:
    def test_no_cycle_reported_as_lost_wakeup(self):
        """A thread waiting on a condvar nobody signals: blocked, but no
        cycle — the report must say so rather than claim a deadlock."""
        from repro.sync import CondVar

        m = Mutex(name="m")
        cv = CondVar(name="never-signaled")

        def waiter(_):
            yield from m.enter()
            yield from cv.wait(m)

        def main():
            tid = yield from threads.thread_create(
                waiter, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        with pytest.raises(DeadlockError) as exc:
            run_program(main)
        report = str(exc.value)
        assert "condvar 'never-signaled'" in report
        assert "deadlock cycle detected:" not in report
        assert "no thread-level cycle found" in report


class TestDiagnoseHang:
    def test_empty_after_clean_run(self):
        def main():
            yield from threads.thread_yield()

        sim, _ = run_program(main)
        assert sim.engine.diagnose_hang() == ""

    def test_live_snapshot_of_blocked_threads(self):
        """diagnose_hang() works mid-run too: stop the clock while a
        thread holds a lock another wants."""
        m = Mutex(name="contended")
        state = {}

        def holder(_):
            yield from m.enter()
            from repro.runtime import unistd
            yield from unistd.sleep_usec(10_000)
            yield from m.exit()

        def second(_):
            yield from m.enter()
            yield from m.exit()

        def main():
            # Two pool LWPs, so `second` reaches the mutex while the
            # holder's kernel sleep has one LWP blocked.
            yield from threads.thread_setconcurrency(2)
            t1 = yield from threads.thread_create(
                holder, None, flags=threads.THREAD_WAIT)
            t2 = yield from threads.thread_create(
                second, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(t1)
            yield from threads.thread_wait(t2)
            state["done"] = True

        from repro.api import Simulator
        sim = Simulator(ncpus=2)
        sim.spawn(main)
        sim.run(until_usec=5_000, check_deadlock=False)
        report = sim.engine.diagnose_hang()
        assert "mutex 'contended'" in report
        assert "held by" in report
        sim.run()  # finishes cleanly
        assert state.get("done")
