"""Tests for the deterministic fault-injection plans (repro.sim.faults)."""

import pytest

from repro import (FaultPlan, LwpCrash, PageFaultStorm, Simulator,
                   SyscallFault, TimerJitter)
from repro.errors import Errno, SimulationError, SyscallError
from repro.hw.context import Activity
from repro.hw.isa import Syscall
from repro.runtime import unistd
from repro.sim.faults import FaultRule
from repro.workloads import window_system
from tests.conftest import run_program


def _getpid_outcomes(n: int, results: list):
    """Program: call getpid ``n`` times, record True per injected EAGAIN."""
    for _ in range(n):
        try:
            yield from unistd.getpid()
            results.append(False)
        except SyscallError as err:
            assert err.errno == Errno.EAGAIN
            results.append(True)


class TestSyscallFault:
    def test_every_nth_injection(self):
        outcomes = []
        plan = FaultPlan([SyscallFault("getpid", "EAGAIN", every=3)])
        run_program(_getpid_outcomes, 9, outcomes, faults=plan)
        assert outcomes == [False, False, True] * 3

    def test_skip_and_max_count(self):
        outcomes = []
        plan = FaultPlan([SyscallFault("getpid", Errno.EAGAIN,
                                       probability=1.0, skip=2,
                                       max_count=1)])
        run_program(_getpid_outcomes, 6, outcomes, faults=plan)
        assert outcomes == [False, False, True, False, False, False]

    def test_probability_draws_are_seed_deterministic(self):
        def run(seed):
            outcomes = []
            plan = FaultPlan([SyscallFault("getpid", "EAGAIN",
                                           probability=0.5)])
            run_program(_getpid_outcomes, 40, outcomes,
                        faults=plan, seed=seed)
            return outcomes

        first = run(seed=7)
        assert run(seed=7) == first
        assert any(first) and not all(first)  # 0.5 actually injects some
        assert run(seed=8) != first

    def test_untargeted_calls_unaffected(self):
        got = {}

        def main():
            got["pid"] = yield from unistd.getpid()

        plan = FaultPlan([SyscallFault("lwp_create", "EAGAIN")])
        run_program(main, faults=plan)
        assert got["pid"] == 1

    def test_injection_counted_and_traced(self):
        plan = FaultPlan([SyscallFault("getpid", "EAGAIN", every=2)])
        sim, _ = run_program(_getpid_outcomes, 4, [], faults=plan,
                             trace=True)
        assert sim.kernel.faults_injected["getpid"] == 2
        assert plan.injections == 2
        assert sim.tracer.count(category="fault") == 2

    def test_bad_rule_parameters_rejected(self):
        with pytest.raises(SimulationError):
            SyscallFault("getpid", "EAGAIN", every=0)
        with pytest.raises(SimulationError):
            SyscallFault("getpid", "EAGAIN", probability=1.5)
        with pytest.raises(SimulationError):
            TimerJitter(-1.0)


class TestSerialization:
    def test_round_trip_all_rule_kinds(self):
        from repro.sim.faults import (AcceptStall, ConnDrop, CrashStorm,
                                      PacketDelay, PeerReset)
        plan = FaultPlan([
            SyscallFault("lwp_create", "EAGAIN", probability=0.25,
                         max_count=10, skip=3),
            SyscallFault("brk", "ENOMEM", every=5),
            PageFaultStorm(2_000.0, pattern="file:*"),
            TimerJitter(500.0, probability=0.9),
            LwpCrash(10_000.0, pid=1, lwp_id=2),
            CrashStorm(5_000.0, 2_000.0, 4, target="worker-*", pid=1),
            ConnDrop(port=7000, mode="timeout", timeout_usec=5_000.0,
                     probability=0.5, skip=1),
            AcceptStall(port=None, stall_usec=1_500.0, every=4),
            PacketDelay(op="recv", max_usec=750.0, probability=0.3),
            PeerReset(op="send", pattern="sock:7000#*", max_count=2),
        ])
        data = plan.to_dict()
        rebuilt = FaultPlan.from_dict(data)
        assert rebuilt.to_dict() == data
        # Every rule kind in the registry is covered by this round trip.
        from repro.sim.faults import _RULE_KINDS
        assert {r["kind"] for r in data["rules"]} == set(_RULE_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            FaultRule.from_dict({"kind": "cosmic-ray"})

    def test_plan_attaches_once(self):
        plan = FaultPlan([SyscallFault("getpid", "EAGAIN")])
        Simulator(faults=plan)
        with pytest.raises(SimulationError):
            Simulator(faults=plan)
        with pytest.raises(SimulationError):
            plan.add(SyscallFault("brk", "ENOMEM"))


class TestTimerJitter:
    def _timed_sleep(self, plan, seed=0):
        got = {}

        def main():
            start = yield from unistd.gettimeofday()
            yield from unistd.sleep_usec(100.0)
            end = yield from unistd.gettimeofday()
            got["elapsed_ns"] = end - start

        run_program(main, faults=plan, seed=seed)
        return got["elapsed_ns"]

    def test_jitter_stretches_sleeps(self):
        baseline = self._timed_sleep(None)
        jittered = self._timed_sleep(FaultPlan([TimerJitter(500.0)]))
        assert jittered > baseline

    def test_jitter_is_seed_deterministic(self):
        a = self._timed_sleep(FaultPlan([TimerJitter(500.0)]), seed=3)
        b = self._timed_sleep(FaultPlan([TimerJitter(500.0)]), seed=3)
        assert a == b


class TestPageFaultStorm:
    def test_storm_evicts_and_refaults(self):
        from repro.runtime import mapped

        got = {}
        npages, pagesize = 8, 4096

        def main():
            region = yield from mapped.map_shared_file(
                "/tmp/storm.dat", length=npages * pagesize)
            # Fault the pages in, then linger past the storm.
            for i in range(npages):
                yield from region.write(i * pagesize, bytes([i + 1]))
            got["resident_before"] = len(region.mobj.resident)
            yield from unistd.sleep_usec(300_000.0)
            got["resident_after"] = len(region.mobj.resident)
            # Touch again: every page must refault after the eviction.
            data = []
            for i in range(npages):
                chunk = yield from region.read(i * pagesize, 1)
                data.append(chunk[0])
            got["data"] = data

        # Well after the initial (disk-paced) fault-in completes: eight
        # major faults take ~150ms of virtual time.
        storm = PageFaultStorm(250_000.0, pattern="*storm*")
        plan = FaultPlan([storm])
        run_program(main, faults=plan)
        # (Background page replacement may have trimmed residency
        # already, so compare against what was actually resident.)
        assert got["resident_before"] > 0
        assert got["resident_after"] == 0
        assert got["data"] == [i + 1 for i in range(npages)]
        assert storm.evicted >= 1


class TestLwpCrash:
    def test_targeted_crash_kills_lwp_and_wakes_joiner(self):
        got = {}

        def victim_body():
            yield from unistd.sleep_usec(50_000.0)
            got["survived"] = True  # pragma: no cover - must not happen

        def main():
            activity = Activity(victim_body(), name="victim")
            lwp_id = yield Syscall("lwp_create", activity)
            got["lwp_id"] = lwp_id
            yield Syscall("lwp_wait", lwp_id)
            got["joined"] = True

        crash = LwpCrash(5_000.0, pid=1, lwp_id=2)
        run_program(main, faults=FaultPlan([crash]))
        assert got["lwp_id"] == 2
        assert got.get("joined")
        assert "survived" not in got
        assert crash.victim_name is not None


class TestWindowSystemDegradation:
    """The acceptance scenario: 50% of lwp_create calls fail with EAGAIN,
    yet the 1:1 window-system benchmark completes (degraded), and the
    same seed replays to the identical event trace."""

    def _run(self, plan):
        main, results = window_system.build(
            n_widgets=12, n_events=48, event_cost_usec=20.0,
            bound_threads=True, event_spacing_usec=50.0)
        sim, _ = run_program(main, faults=plan, seed=11, ncpus=2,
                             trace=True)
        return sim, results

    def test_completes_degraded_and_replays_identically(self):
        plan = FaultPlan([SyscallFault("lwp_create", "EAGAIN",
                                       probability=0.5)])
        sim, results = self._run(plan)
        assert results["processed"] == 48
        assert sim.kernel.faults_injected["lwp_create"] > 0
        lib = results["lib"]
        assert lib["lwp_create_retries"] > 0

        # Replay from the serialized plan: bit-identical trace.
        replay_plan = FaultPlan.from_dict(plan.to_dict())
        sim2, results2 = self._run(replay_plan)
        assert results2["processed"] == 48
        assert sim2.tracer.records == sim.tracer.records
        assert sim2.now_usec == sim.now_usec
