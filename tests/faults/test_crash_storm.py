"""CrashStorm fault rule: targeting, count, determinism, termination.

The storm is the chaos-gate workhorse, so its discipline matters: it
must only ever kill LWPs whose *riding thread* matches the target glob,
land exactly ``count`` kills, pick identically under identical seeds,
and stop re-arming once the world has exited.
"""

from repro import CrashStorm, FaultPlan, threads
from repro.hw.isa import GetContext
from repro.runtime import libc, unistd
from tests.conftest import run_program


def _spin(_):
    while True:
        yield from libc.compute(200.0)


def _pool(names):
    """Generator: create one bound, renamed spinner per name."""
    ctx = yield GetContext()
    for name in names:
        tid = yield from threads.thread_create(
            _spin, None, flags=threads.THREAD_BIND_LWP)
        ctx.process.threadlib.threads[tid].name = name


class _CrashLog:
    def __init__(self):
        self.names = []

    def on_sync(self, ctx, op, sv, detail):
        if op == "thread-crash":
            self.names.append(getattr(ctx.thread, "name", None))


def _run(storm, seed=7, run_usec=30_000.0):
    from repro.api import Simulator
    log = _CrashLog()
    sim = Simulator(ncpus=4, seed=seed, faults=FaultPlan([storm]))
    sim.engine.sync_listeners.append(log)

    def main():
        yield from _pool(["worker-0", "worker-1", "worker-2",
                          "bystander-0"])
        yield from libc.compute(run_usec)
        yield from unistd.exit(0)

    sim.spawn(main)
    sim.run(max_events=2_000_000)
    return storm, log


class TestTargeting:
    def test_glob_spares_non_matching_threads(self):
        storm = CrashStorm(start_usec=2_000.0, interval_usec=2_000.0,
                           count=3, target="worker-*")
        storm, log = _run(storm)
        assert storm.killed == 3
        assert len(log.names) == 3
        assert all(name.startswith("worker-") for name in log.names)

    def test_count_is_honored_exactly(self):
        storm = CrashStorm(start_usec=2_000.0, interval_usec=1_000.0,
                           count=2, target="worker-*")
        storm, log = _run(storm)
        assert storm.killed == 2
        assert len(log.names) == 2


class TestDeterminism:
    def test_identical_seeds_pick_identical_victims(self):
        def storm():
            return CrashStorm(start_usec=2_000.0, interval_usec=2_000.0,
                              count=3, target="worker-*")

        _, first = _run(storm(), seed=42)
        _, second = _run(storm(), seed=42)
        assert first.names == second.names
        assert len(first.names) == 3


class TestTermination:
    def test_storm_stops_rearming_after_world_exit(self):
        # Far more ticks than the run can host: the storm must notice
        # the empty world and stop, or the engine would spin on
        # fault-crash-storm timers forever.
        storm = CrashStorm(start_usec=2_000.0, interval_usec=500.0,
                           count=1_000, target="worker-*")
        storm, log = _run(storm, run_usec=10_000.0)
        assert storm.killed < 1_000
        assert storm.killed == len(log.names)

    def test_tick_with_no_matching_victim_is_skipped(self):
        observed = {}

        def main():
            # No worker-* thread ever exists; every tick skips.
            yield from libc.compute(10_000.0)
            observed["done"] = True
            yield from unistd.exit(0)

        storm = CrashStorm(start_usec=1_000.0, interval_usec=1_000.0,
                           count=5, target="worker-*")
        run_program(main, ncpus=2, faults=FaultPlan([storm]))
        assert observed["done"] is True
        assert storm.killed == 0
        assert storm.victims == []
