"""Graceful degradation under LWP exhaustion (rlimit or injected).

The robustness contract: running out of LWPs must never crash a process.
Bound creation retries with backoff and then falls back to unbound (or
raises a typed error under the "raise" policy); pool growth is
best-effort; the SIGWAITING handler survives and re-arms; micro-tasking
runs leftover slices serially on the master.
"""

import pytest

from repro import FaultPlan, LwpExhausted, SyscallFault, threads
from repro.hw.isa import Charge, GetContext
from repro.kernel.fs.file import O_RDONLY
from repro.kernel.syscalls.misc_calls import RLIMIT_NLWPS
from repro.models import kernel_only, microtasking
from repro.runtime import unistd
from repro.sim.clock import usec
from tests.conftest import run_program


def _lib():
    ctx = yield GetContext()
    return ctx.process.threadlib


class TestRlimit:
    def test_rlimit_caps_lwp_creation(self):
        got = {}

        def sleeper(_):
            # Pin the LWP well past the backoff window (~6.2ms), so the
            # limit stays saturated for the whole retry sequence.
            yield from unistd.sleep_usec(50_000)

        def main():
            yield from unistd.setrlimit(RLIMIT_NLWPS, 2)
            got["limit"] = yield from unistd.getrlimit(RLIMIT_NLWPS)
            lib = yield from _lib()
            lib.lwp_exhaust_policy = "raise"
            # LWP 1 (main) exists; one more fits under the limit.
            t1 = yield from kernel_only.thread_create(
                sleeper, flags=threads.THREAD_WAIT)
            with pytest.raises(LwpExhausted):
                yield from kernel_only.thread_create(
                    sleeper, flags=threads.THREAD_WAIT)
            got["retries"] = lib.lwp_create_retries
            yield from threads.thread_wait(t1)
            got["lwps"] = len((yield GetContext()).process.live_lwps())

        run_program(main, check_deadlock=False)
        assert got["limit"] == 2
        assert got["retries"] >= 1
        assert got["lwps"] <= 2

    def test_raise_policy_rolls_back_bookkeeping(self):
        got = {}

        def main():
            yield from unistd.setrlimit(RLIMIT_NLWPS, 1)
            lib = yield from _lib()
            lib.lwp_exhaust_policy = "raise"
            before = dict(created=lib.threads_created,
                          known=len(lib.threads))
            with pytest.raises(LwpExhausted):
                yield from kernel_only.thread_create(lambda _: None)
            got["created_delta"] = lib.threads_created - before["created"]
            got["known_delta"] = len(lib.threads) - before["known"]

        run_program(main, check_deadlock=False)
        assert got["created_delta"] == 0
        assert got["known_delta"] == 0


class TestBoundFallback:
    def test_bound_create_falls_back_to_unbound(self):
        """Default policy: when no LWP can be had, the thread still runs
        — unbound, on the existing pool."""
        ran = []

        def worker(i):
            # Stay alive past the backoff window so the limit remains
            # saturated while later creations retry.
            yield from unistd.sleep_usec(30_000)
            ran.append(i)

        def main():
            yield from unistd.setrlimit(RLIMIT_NLWPS, 3)
            lib = yield from _lib()
            tids = []
            for i in range(6):
                tid = yield from kernel_only.thread_create(
                    worker, i, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)
            snap = lib.snapshot()
            got.update(snap)

        got = {}
        run_program(main, check_deadlock=False)
        assert sorted(ran) == list(range(6))
        assert got["bound_fallbacks"] >= 1
        assert got["lwp_create_retries"] >= 1

    def test_fallback_thread_is_unbound_and_well_formed(self):
        got = {}

        def worker(_):
            ctx = yield GetContext()
            got["bound"] = ctx.thread.bound
            got["lwp_is_pool"] = ctx.lwp.bound_thread is None

        def main():
            yield from unistd.setrlimit(RLIMIT_NLWPS, 1)
            tid = yield from kernel_only.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        run_program(main, check_deadlock=False)
        assert got["bound"] is False
        assert got["lwp_is_pool"] is True


class TestSetConcurrency:
    def test_partial_growth_under_rlimit(self):
        got = {}

        def main():
            yield from unistd.setrlimit(RLIMIT_NLWPS, 3)
            lib = yield from _lib()
            yield from threads.thread_setconcurrency(6)
            got["pool"] = len(lib.pool_lwps)
            got["failures"] = lib.pool_grow_failures

        run_program(main, ncpus=2, check_deadlock=False)
        assert got["pool"] == 3  # main's LWP + 2 more, then the cap
        assert got["failures"] == 1


class TestSigwaitingSurvival:
    def test_handler_survives_injected_eagain(self):
        """SIGWAITING fires while every lwp_create fails: the handler
        must absorb the failure, re-arm, and let the process finish once
        input arrives — not die of an unhandled SyscallError."""
        got = {}

        def blocked_reader(_):
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            yield from unistd.read(fd, 10)

        def compute(_):
            yield Charge(usec(3_000))
            got["computed"] = True

        def main():
            lib = yield from _lib()
            yield from threads.thread_create(blocked_reader, None)
            yield from threads.thread_yield()  # reader takes the LWP
            yield from threads.thread_create(compute, None)
            yield from unistd.sleep_usec(400_000)
            got["failures"] = lib.sigwaiting_failures
            got["grown"] = lib.lwps_grown_by_sigwaiting
            got["done"] = True

        from repro.api import Simulator
        plan = FaultPlan([SyscallFault("lwp_create", "EAGAIN")])
        sim = Simulator(ncpus=2, faults=plan)
        sim.spawn(main)
        sim.type_input(b"x", at_usec=200_000)  # eventually release reader
        sim.run(check_deadlock=False)
        assert got.get("done"), "process died instead of degrading"
        assert got["failures"] >= 1
        assert got["grown"] == 0
        # The compute thread ran once the reader's LWP came back.
        assert got.get("computed")

    def test_handler_rearms_after_transient_exhaustion(self):
        """First starvation hits injected EAGAINs; once the faults stop
        (max_count), a second starvation grows the pool again — proof
        the handler re-armed instead of wedging."""
        got = {}

        def blocked_reader(which):
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            yield from unistd.read(fd, 10)
            got[f"reader{which}"] = True

        def main():
            lib = yield from _lib()
            # Episode 1: the reader takes the only LWP and blocks; the
            # growth attempt eats all three injected EAGAINs.
            yield from threads.thread_create(blocked_reader, 1)
            yield from threads.thread_yield()
            got["failures_ep1"] = lib.sigwaiting_failures
            # Episode 2 (after input releases reader 1): injections are
            # spent, so this starvation grows the pool.
            yield from threads.thread_create(blocked_reader, 2)
            yield from threads.thread_yield()
            got["failures"] = lib.sigwaiting_failures
            got["grown"] = lib.lwps_grown_by_sigwaiting
            got["done"] = True

        from repro.api import Simulator
        # Exactly one SIGWAITING growth attempt's worth of failures
        # (3 tries), then injection stops.
        plan = FaultPlan([SyscallFault("lwp_create", "EAGAIN",
                                       max_count=3)])
        sim = Simulator(ncpus=2, faults=plan)
        sim.spawn(main)
        sim.type_input(b"x", at_usec=100_000)  # release reader 1
        sim.type_input(b"y", at_usec=400_000)  # release reader 2
        sim.run(check_deadlock=False)
        assert got.get("done")
        assert got["failures_ep1"] >= 1
        assert got["grown"] >= 1  # the re-armed handler succeeded later
        assert got.get("reader1") and got.get("reader2")


class TestMicrotasking:
    def test_parallel_for_degrades_serially(self):
        got = {}

        def main():
            yield from unistd.setrlimit(RLIMIT_NLWPS, 2)
            total = yield from microtasking.parallel_sum(
                list(range(10)), chunk_cost_usec=5.0, n_lwps=4)
            got["total"] = total

        run_program(main, ncpus=4, check_deadlock=False)
        assert got["total"] == sum(range(10))
