"""Adaptive-mutex spin policy versus a crashed owner LWP.

The adaptive policy spins only while the owner is on a CPU.  When a
fault plan reclaims the owner's LWP mid-hold (``LwpCrash``), the kernel
clears ``lwp.cpu`` on termination, so ``Mutex._owner_running()`` must go
False and contenders must fall through to blocking — a contender that
kept spinning against a dead owner would burn virtual time forever.

Since the crash-reclaim walk landed, the crashed holder's lock is no
longer orphaned: the contender acquires it with ``EOWNERDEAD`` (and
without a multi-millisecond spin against the corpse).
"""

from repro import FaultPlan, LwpCrash, threads
from repro.errors import Errno
from repro.runtime import libc, unistd
from repro.sync import Mutex, SYNC_ADAPTIVE
from tests.conftest import run_program


class TestAdaptiveSpinAfterOwnerCrash:
    def _run(self):
        observed = {}
        m = Mutex(SYNC_ADAPTIVE, name="adaptive")

        def holder(_):
            yield from m.enter()
            # Hold across the crash point; this thread's LWP dies at
            # t=10ms and never releases.
            yield from libc.compute(500_000)
            yield from m.exit()

        def main():
            yield from threads.thread_create(
                holder, None, flags=threads.THREAD_BIND_LWP)
            yield from libc.compute(20_000)   # crash already happened
            # Probe the spin policy against the corpse *before* the
            # acquire hands us the lock (after which we are the owner).
            observed["owner_running"] = m._owner_running()
            spins_before = m.spins
            ok = yield from m.timedenter(10_000)
            observed["ok"] = ok
            observed["spins"] = m.spins - spins_before
            observed["owner_dead"] = m.owner_dead
            # The crashed holder is gone; end the process explicitly
            # rather than wait on a dead thread.
            yield from unistd.exit(0)

        plan = FaultPlan([LwpCrash(10_000.0, pid=1, lwp_id=2)])
        run_program(main, ncpus=2, faults=plan)
        return observed

    def test_contender_inherits_owner_dead_lock(self):
        observed = self._run()
        # The reclaim walk hands the lock over: the timed acquire
        # succeeds, flagged EOWNERDEAD so the taker knows the protected
        # state is suspect...
        assert observed["ok"] is Errno.EOWNERDEAD
        assert observed["owner_dead"] is True
        # ...and it gets there by sleeping/acquiring, not by polling a
        # dead owner.  A 10ms adaptive spin would cost thousands of
        # poll iterations.
        assert observed["spins"] < 100, observed

    def test_owner_not_considered_running_after_crash(self):
        observed = self._run()
        assert observed["owner_running"] is False
