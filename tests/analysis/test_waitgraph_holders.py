"""Wait-for-graph coverage for semaphore units and rwlock holders.

The hang report originally resolved holders for mutexes and condition
variables only; a deadlock through a semaphore or a reader/writer lock
showed the waiters but not who was sitting on the resource.  These pin
the per-primitive holder attribution.
"""

import pytest

from repro.errors import DeadlockError
from repro import threads
from repro.sync import Mutex, RwLock, RW_READER, RW_WRITER, Semaphore
from tests.conftest import run_program


class TestSemaphoreHolders:
    def _run(self):
        m = Mutex(name="gate")
        s = Semaphore(1, name="units")

        def worker(_):
            yield from s.p()                  # take the only unit
            yield from threads.thread_yield()
            yield from m.enter()              # blocks: main holds gate

        def main():
            yield from m.enter()
            yield from threads.thread_create(worker, None)
            yield from threads.thread_yield()
            yield from s.p()                  # blocks: worker holds unit

        with pytest.raises(DeadlockError) as exc:
            run_program(main)
        return str(exc.value)

    def test_report_names_semaphore_and_holder(self):
        report = self._run()
        assert "semaphore 'units'" in report
        # thread-2 (the worker) holds the unit main waits for.
        assert "semaphore 'units' held by thread-2" in report

    def test_cycle_runs_through_the_semaphore(self):
        report = self._run()
        cycle = report.split("deadlock cycle detected:", 1)[1]
        assert "semaphore 'units'" in cycle
        assert "mutex 'gate'" in cycle


class TestRwlockHolders:
    def _run(self, first, second):
        m = Mutex(name="gate")
        rw = RwLock(name="rw")

        def worker(_):
            yield from rw.enter(first)        # hold the rwlock
            yield from threads.thread_yield()
            yield from m.enter()              # blocks: main holds gate

        def main():
            yield from m.enter()
            yield from threads.thread_create(worker, None)
            yield from threads.thread_yield()
            yield from rw.enter(second)       # blocks on the worker

        with pytest.raises(DeadlockError) as exc:
            run_program(main)
        return str(exc.value)

    def test_reader_holder_blocks_writer(self):
        report = self._run(RW_READER, RW_WRITER)
        assert "rwlock(write) 'rw' held by thread-2" in report

    def test_writer_holder_blocks_reader(self):
        report = self._run(RW_WRITER, RW_READER)
        assert "rwlock(read) 'rw' held by thread-2" in report
