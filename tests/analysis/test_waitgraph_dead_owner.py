"""Hang reports name dead lock owners as such.

A thread that *exits normally* while holding a mutex (a plain bug — no
crash, so the owner-death reclaim walk never runs) leaves the lock
orphaned.  Anyone who then blocks on it hangs forever, and the wait-for
graph must say why in a way a human can act on: the holder is rendered
``thread-N (dead)``, not as a live thread that might still release.
"""

import pytest

from repro import threads
from repro.errors import DeadlockError
from repro.sync import Mutex
from tests.conftest import run_program


class TestDeadOwnerRendering:
    def _run(self):
        m = Mutex(name="orphan")

        def worker(_):
            yield from m.enter()
            # Exits holding the lock: never released, never reclaimed.

        def main():
            yield from threads.thread_create(worker, None)
            yield from threads.thread_yield()
            yield from m.enter()              # hangs forever

        with pytest.raises(DeadlockError) as exc:
            run_program(main)
        return str(exc.value)

    def test_holder_is_marked_dead(self):
        report = self._run()
        assert "thread-2 (dead)" in report
        assert "mutex 'orphan'" in report

    def test_live_holders_are_not_marked_dead(self):
        gate = Mutex(name="gate")
        m = Mutex(name="held")

        def worker(_):
            yield from m.enter()
            yield from threads.thread_yield()
            yield from gate.enter()           # blocks: main holds gate

        def main():
            yield from gate.enter()
            yield from threads.thread_create(worker, None)
            yield from threads.thread_yield()
            yield from m.enter()              # blocks: worker holds m

        with pytest.raises(DeadlockError) as exc:
            run_program(main)
        report = str(exc.value)
        assert "mutex 'held'" in report
        assert "(dead)" not in report
