"""Tests for trace post-processing."""

import pytest

from repro.analysis import tracetools
from repro.api import Simulator
from repro.hw.isa import Charge
from repro.runtime import unistd
from repro.sim.trace import Tracer
from repro import threads
from repro.sim.clock import usec


def traced_run(main, ncpus=1):
    sim = Simulator(ncpus=ncpus, trace=True)
    sim.spawn(main)
    sim.run()
    return sim


class TestIntervals:
    def test_single_process_one_interval_per_dispatch(self):
        def main():
            yield Charge(usec(1_000))

        sim = traced_run(main)
        ivs = tracetools.lwp_intervals(sim.tracer)
        assert ivs
        assert all(iv.cpu == "cpu-0" for iv in ivs)

    def test_busy_time_tracks_compute(self):
        def main():
            yield Charge(usec(5_000))

        sim = traced_run(main)
        busy = tracetools.busy_ns_by_lwp(sim.tracer,
                                         until_ns=sim.engine.now_ns)
        assert sum(busy.values()) >= usec(5_000)

    def test_sleep_gap_not_busy(self):
        def main():
            yield Charge(usec(1_000))
            yield from unistd.sleep_usec(50_000)
            yield Charge(usec(1_000))

        sim = traced_run(main)
        busy = tracetools.busy_ns_by_lwp(sim.tracer,
                                         until_ns=sim.engine.now_ns)
        total = sum(busy.values())
        assert total < usec(10_000)  # the 50ms sleep is off-CPU


class TestSyscallLatencies:
    def test_nanosleep_latency_measured(self):
        def main():
            yield from unistd.sleep_usec(20_000)

        sim = traced_run(main)
        lat = tracetools.syscall_latencies(sim.tracer)
        assert "nanosleep" in lat
        assert lat["nanosleep"]["mean"] >= usec(20_000)

    def test_trivial_syscall_cheap(self):
        def main():
            yield from unistd.getpid()

        sim = traced_run(main)
        lat = tracetools.syscall_latencies(sim.tracer)
        assert lat["getpid"]["mean"] <= usec(100)


class TestThreadSwitches:
    def test_switches_recorded(self):
        def main():
            def t(_):
                yield from threads.thread_yield()

            tid = yield from threads.thread_create(
                t, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        sim = traced_run(main)
        switches = tracetools.thread_switches(sim.tracer)
        assert switches
        times = [t for t, *_ in switches]
        assert times == sorted(times)


class TestGantt:
    def test_renders_rows_per_cpu(self):
        def burner():
            yield Charge(usec(3_000))

        sim = Simulator(ncpus=2, trace=True)
        sim.spawn(burner)
        sim.spawn(burner)
        sim.run()
        chart = tracetools.gantt(sim.tracer)
        assert "cpu-0" in chart and "cpu-1" in chart

    def test_empty_trace(self):
        assert "no dispatch" in tracetools.gantt(Tracer(enabled=True))
