"""Percentile edge cases (the float-rounding bug class, pinned).

``int(math.ceil(p / 100.0 * n)) - 1`` computes 99/100.0 * 100 as
99.00000000000001, ceils to 100, and indexes the 100th element where the
99th belongs — an off-by-one that only appears for specific (p, n)
pairs.  The fixed implementation multiplies before dividing; these tests
pin the exact ranks so a regression is loud.
"""

import pytest

from repro.analysis.metrics import percentile, percentile_weighted


class TestPercentile:
    def test_p99_of_100_is_the_99th_sample(self):
        xs = list(range(1, 101))  # 1..100
        assert percentile(xs, 99) == 99

    def test_known_float_hazard_pairs(self):
        # Every (p, n) pair where p/100.0*n overshoots the integer it
        # mathematically equals; multiply-first arithmetic is immune.
        for p, n in ((29, 100), (57, 100), (58, 100), (7, 1000)):
            xs = list(range(1, n + 1))
            assert percentile(xs, p) == p * n // 100

    def test_p0_returns_minimum(self):
        assert percentile([5.0, 1.0, 9.0], 0) == 1.0
        assert percentile([5.0, 1.0, 9.0], -10) == 1.0

    def test_p100_returns_maximum(self):
        assert percentile([5.0, 1.0, 9.0], 100) == 9.0
        assert percentile([5.0, 1.0, 9.0], 250) == 9.0

    def test_empty_returns_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_sample_any_p(self):
        for p in (0, 1, 50, 99, 100):
            assert percentile([7.0], p) == 7.0

    def test_median_of_two(self):
        assert percentile([1.0, 2.0], 50) == 1.0
        assert percentile([1.0, 2.0], 51) == 2.0

    def test_input_not_mutated(self):
        xs = [3.0, 1.0, 2.0]
        percentile(xs, 50)
        assert xs == [3.0, 1.0, 2.0]


class TestPercentileWeighted:
    def test_matches_expanded_samples(self):
        pairs = [(10, 3), (20, 5), (30, 2)]
        expanded = [10.0] * 3 + [20.0] * 5 + [30.0] * 2
        for p in (0, 10, 50, 90, 99, 100):
            assert percentile_weighted(pairs, p) == percentile(expanded, p)

    def test_unsorted_pairs_accepted(self):
        assert percentile_weighted([(30, 1), (10, 1), (20, 1)], 0) == 10

    def test_zero_count_pairs_ignored(self):
        assert percentile_weighted([(5, 0), (9, 2)], 50) == 9

    def test_empty_returns_zero(self):
        assert percentile_weighted([], 50) == 0.0
        assert percentile_weighted([(5, 0)], 50) == 0.0

    def test_p99_of_100_weighted(self):
        pairs = [(v, 1) for v in range(1, 101)]
        assert percentile_weighted(pairs, 99) == 99
