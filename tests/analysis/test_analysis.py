"""Tests for the analysis layer: tables, metrics, experiment runners."""

import pytest

from repro.analysis.metrics import (mean, percentile, speedup, stdev,
                                    summarize)
from repro.analysis.report import Row, Table, format_dict


class TestMetrics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_stdev(self):
        assert stdev([5, 5, 5]) == 0.0
        assert stdev([1]) == 0.0
        assert stdev([0, 10]) == pytest.approx(5.0)

    def test_percentile(self):
        xs = list(range(1, 101))
        assert percentile(xs, 50) == 50
        assert percentile(xs, 99) == 99
        assert percentile(xs, 100) == 100
        assert percentile([], 50) == 0.0

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["n"] == 4
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == 2.5

    def test_speedup(self):
        assert speedup(10, 2) == 5
        assert speedup(1, 0) == float("inf")


class TestRow:
    def test_deviation(self):
        assert Row("x", 100, 110).deviation == pytest.approx(0.10)
        assert Row("x", None, 110).deviation is None
        assert Row("x", 0, 1).deviation is None


class TestTable:
    def _table(self, measured):
        return Table("T", [
            Row("small", 50, measured[0]),
            Row("large", 300, measured[1]),
        ])

    def test_render_contains_rows_and_ratios(self):
        text = self._table([51, 310]).render()
        assert "small" in text and "large" in text
        assert "6.00" in text or "6.0" in text  # paper ratio 300/50

    def test_max_deviation(self):
        t = self._table([55, 300])
        assert t.max_deviation() == pytest.approx(0.10)

    def test_shape_holds_within_tolerance(self):
        assert self._table([52, 310]).shape_holds(0.10)

    def test_shape_fails_on_big_deviation(self):
        assert not self._table([100, 300]).shape_holds(0.10)

    def test_shape_fails_on_order_flip(self):
        t = Table("T", [Row("a", 50, 300), Row("b", 300, 50)])
        assert not t.shape_holds(10.0)

    def test_rows_without_paper_values_ignored_by_shape(self):
        t = Table("T", [Row("a", 50, 50), Row("extra", None, 999)])
        assert t.shape_holds(0.01)

    def test_format_dict(self):
        text = format_dict("cfg", {"alpha": 1, "beta": 2.5})
        assert "alpha" in text and "2.50" in text


class TestExperimentRunnersSmoke:
    """Small-n smoke runs of every experiment runner (full-size runs live
    in benchmarks/)."""

    def test_fig5_runner(self):
        from repro.analysis.experiments import fig5_table, run_fig5
        r = run_fig5(n=5)
        assert r["ratio"] > 10
        assert fig5_table(r).rows

    def test_fig6_runner(self):
        from repro.analysis.experiments import fig6_table, run_fig6
        r = run_fig6(n=10)
        assert r["unbound_sync"] < r["bound_sync"]
        assert len(fig6_table(r).rows) == 4

    def test_abl2_runner(self):
        from repro.analysis.experiments import run_abl2
        r = run_abl2(rows=16, n_lwps=2, ncpus=2, sweep=(1, 2))
        assert set(r["sweep"]) == {1, 2}

    def test_abl4_runner(self):
        from repro.analysis.experiments import run_abl4
        r = run_abl4(lwp_counts=(1, 2))
        assert r["fork"][2] > r["fork1"][2]

    def test_abl5_runner(self):
        from repro.analysis.experiments import run_abl5
        r = run_abl5(iters=10)
        assert r["spin"]["usec"] <= r["default"]["usec"]


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "abl5" in out

    def test_single_experiment(self, capsys):
        from repro.__main__ import main
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "PASS" in out
