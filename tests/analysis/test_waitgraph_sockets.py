"""Socket-wait attribution in the hang report.

An LWP parked in ``accept``/``recv`` used to show only its raw wait
channel; the report now carries the network-side story from
``kernel.net.annotate_channel`` — which port, connection state, peer
endpoint and owning pid, bytes buffered — so a hung server names its
culprit instead of just its symptom.
"""

import pytest

from repro.errors import DeadlockError
from repro.runtime import unistd
from tests.conftest import run_program

PORT = 6200


class TestSocketAnnotations:
    def test_hung_accept_names_port_and_backlog(self):
        def main():
            lfd = yield from unistd.socket()
            yield from unistd.bind(lfd, PORT)
            yield from unistd.listen(lfd, 4)
            yield from unistd.accept(lfd)    # nobody ever connects

        with pytest.raises(DeadlockError) as exc:
            run_program(main)
        report = str(exc.value)
        assert f"listening on port {PORT}" in report
        assert "backlog 0/4" in report
        assert "0 accepted" in report

    def test_hung_recv_names_the_peer(self):
        def main():
            lfd = yield from unistd.socket()
            yield from unistd.bind(lfd, PORT)
            yield from unistd.listen(lfd, 4)
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            yield from unistd.accept(lfd)
            yield from unistd.recv(fd, 16)   # peer never sends

        with pytest.raises(DeadlockError) as exc:
            run_program(main)
        report = str(exc.value)
        assert "established connection" in report
        assert f"peer sock:{PORT}#c1" in report
        assert "0B buffered" in report

    def test_non_socket_hangs_are_unannotated(self):
        from repro.sync import Mutex

        def main():
            m = Mutex(name="m")
            yield from m.enter()
            yield from m.enter()             # self-deadlock

        with pytest.raises(DeadlockError) as exc:
            run_program(main)
        assert "[" not in str(exc.value).split("===")[0]
