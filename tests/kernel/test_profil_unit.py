"""Unit tests for profiling buffers and LWP/stack bookkeeping helpers."""

import pytest

from repro.kernel.lwp import Lwp, LwpState, SchedClass
from repro.kernel.profil import ProfilingBuffer, ProfilingState
from repro.threads.stack import DEFAULT_STACK_SIZE, Stack, StackAllocator


class TestProfilingBuffer:
    def test_record_accumulates(self):
        buf = ProfilingBuffer()
        buf.record("hot", 100)
        buf.record("hot", 50)
        buf.record("cold", 10)
        assert buf.samples["hot"] == 150
        assert buf.total_ns == 160

    def test_top_orders_by_heat(self):
        buf = ProfilingBuffer()
        buf.record("a", 10)
        buf.record("b", 99)
        assert buf.top(1) == [("b", 99)]

    def test_top_ties_deterministic(self):
        buf = ProfilingBuffer()
        buf.record("b", 10)
        buf.record("a", 10)
        assert buf.top(2) == [("a", 10), ("b", 10)]


class TestProfilingState:
    def _lwp(self):
        class FakeProc:
            pid = 1
        lwp = Lwp(1, FakeProc(), activity=None)
        return lwp

    def test_disabled_state_records_nothing(self):
        buf = ProfilingBuffer()
        state = ProfilingState(buf)
        state.enabled = False
        state.accumulate(self._lwp(), 100)
        assert buf.total_ns == 0

    def test_inherit_shares_buffer(self):
        state = ProfilingState(ProfilingBuffer())
        child = state.inherit()
        assert child.buffer is state.buffer
        assert child.enabled

    def test_keyed_by_activity_name(self):
        from repro.hw.context import Activity

        def gen():
            yield

        lwp = self._lwp()
        lwp.current_activity = Activity(gen(), name="worker-activity")
        buf = ProfilingBuffer()
        ProfilingState(buf).accumulate(lwp, 77)
        assert buf.samples["worker-activity"] == 77


class TestStackAllocator:
    def test_default_allocation_counts_bytes(self):
        alloc = StackAllocator()
        stack = alloc.allocate()
        assert stack.size == DEFAULT_STACK_SIZE
        assert alloc.allocated_bytes == DEFAULT_STACK_SIZE

    def test_cache_roundtrip(self):
        alloc = StackAllocator()
        stack = alloc.allocate()
        alloc.release(stack)
        assert alloc.cached_count == 1
        again = alloc.allocate()
        assert again is stack
        assert alloc.cache_hits == 1

    def test_custom_size_not_cached(self):
        alloc = StackAllocator()
        big = alloc.allocate(stack_size=1 << 20)
        alloc.release(big)
        assert alloc.cached_count == 0
        assert alloc.allocated_bytes == 0  # returned to the heap

    def test_caller_supplied_never_cached(self):
        alloc = StackAllocator()
        user = alloc.allocate(stack_addr=0x1000, stack_size=4096)
        assert user.caller_supplied
        alloc.release(user)
        assert alloc.cached_count == 0

    def test_caller_stack_requires_size(self):
        with pytest.raises(ValueError):
            StackAllocator().allocate(stack_addr=0x1000)

    def test_cache_limit_respected(self):
        alloc = StackAllocator(cache_limit=2)
        stacks = [alloc.allocate() for _ in range(4)]
        for s in stacks:
            alloc.release(s)
        assert alloc.cached_count == 2


class TestLwpUnit:
    def _lwp(self):
        class FakeProc:
            pid = 9
        return Lwp(3, FakeProc(), activity=None)

    def test_name_and_repr(self):
        lwp = self._lwp()
        assert lwp.name == "lwp-9.3"
        assert "lwp-9.3" in repr(lwp)

    def test_effective_priority_by_class(self):
        lwp = self._lwp()
        lwp.priority = 10
        ts = lwp.effective_priority
        lwp.sched_class = SchedClass.REALTIME
        assert lwp.effective_priority > ts

    def test_accounting_splits_user_system(self):
        lwp = self._lwp()
        lwp.account(100, kernel=False)
        lwp.account(40, kernel=True)
        assert lwp.user_ns == 100
        assert lwp.system_ns == 40
        assert lwp.cpu_ns == 140

    def test_indefinite_block_flag(self):
        lwp = self._lwp()
        assert not lwp.is_blocked_indefinitely()
        lwp.state = LwpState.SLEEPING
        lwp.sleep_indefinite = True
        assert lwp.is_blocked_indefinitely()

    def test_preemptible_by_class(self):
        lwp = self._lwp()
        assert lwp.preemptible
        lwp.sched_class = SchedClass.REALTIME
        assert not lwp.preemptible
