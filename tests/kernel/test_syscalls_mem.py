"""Tests for mmap/munmap/brk/sbrk/msync through the syscall interface."""

import pytest

from repro.errors import Errno, SyscallError
from repro.hw.isa import GetContext
from repro.kernel.fs.file import O_CREAT, O_RDWR
from repro.kernel.vm import MAP_PRIVATE, MAP_SHARED
from repro.runtime import unistd
from tests.conftest import run_program


class TestMmap:
    def test_anonymous_mapping(self):
        got = []

        def main():
            vaddr = yield from unistd.mmap(8192)
            got.append(vaddr)
            ctx = yield GetContext()
            mobj, off = ctx.process.aspace.resolve(vaddr + 100)
            assert off == 100

        run_program(main)
        assert got[0] > 0

    def test_shared_file_mapping_aliases_content(self):
        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            yield from unistd.write(fd, b"0123456789")
            vaddr = yield from unistd.mmap(10, MAP_SHARED, fd=fd)
            ctx = yield GetContext()
            mobj, off = ctx.process.aspace.resolve(vaddr)
            assert mobj.read_bytes(off, 10) == b"0123456789"
            # Writes through the mapping reach the file.
            mobj.write_bytes(off, b"X")
            yield from unistd.lseek(fd, 0)
            assert (yield from unistd.read(fd, 1)) == b"X"

        run_program(main)

    def test_private_file_mapping_is_snapshot(self):
        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            yield from unistd.write(fd, b"original")
            vaddr = yield from unistd.mmap(8, MAP_PRIVATE, fd=fd)
            ctx = yield GetContext()
            mobj, off = ctx.process.aspace.resolve(vaddr)
            mobj.write_bytes(off, b"MUTATED!")
            yield from unistd.lseek(fd, 0)
            # The file is untouched.
            assert (yield from unistd.read(fd, 8)) == b"original"

        run_program(main)

    def test_mmap_grows_small_file(self):
        got = []

        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            yield from unistd.write(fd, b"ab")
            yield from unistd.mmap(4096, MAP_SHARED, fd=fd)
            st = yield from unistd.stat("/tmp/f")
            got.append(st["size"])

        run_program(main)
        assert got[0] >= 4096

    def test_mmap_of_fifo_rejected(self):
        caught = []

        def main():
            yield from unistd.mkfifo("/tmp/p")
            fd = yield from unistd.open("/tmp/p", O_RDWR)
            try:
                yield from unistd.mmap(4096, MAP_SHARED, fd=fd)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EINVAL]

    def test_munmap_then_access_faults(self):
        caught = []

        def main():
            vaddr = yield from unistd.mmap(4096)
            yield from unistd.munmap(vaddr)
            ctx = yield GetContext()
            try:
                ctx.process.aspace.resolve(vaddr)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EFAULT]

    def test_munmap_unmapped_rejected(self):
        caught = []

        def main():
            try:
                yield from unistd.munmap(0x7777_0000)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EINVAL]


class TestBrk:
    def test_sbrk_returns_old_break(self):
        got = []

        def main():
            old = yield from unistd.sbrk(4096)
            got.append(old)
            newer = yield from unistd.sbrk(0)
            got.append(newer)

        run_program(main)
        assert got[1] == got[0] + 4096

    def test_brk_sets_absolute(self):
        def main():
            base = yield from unistd.sbrk(0)
            result = yield from unistd.brk(base + 10_000)
            assert result == base + 10_000

        run_program(main)

    def test_heap_memory_usable_for_cells(self):
        """Heap cells model ordinary (private) data — the home of
        non-shared synchronization variables."""
        def main():
            base = yield from unistd.sbrk(64)
            ctx = yield GetContext()
            heap, off = ctx.process.aspace.resolve(base)
            assert heap.load_cell(off) == 0  # zero-initialized
            heap.store_cell(off, "mutex-state")
            assert heap.load_cell(off) == "mutex-state"

        run_program(main)


class TestMsync:
    def test_msync_costs_a_disk_trip(self):
        got = []

        def main():
            from repro.runtime import mapped
            region = yield from mapped.map_shared_file("/tmp/f", 4096)
            t0 = yield from unistd.gettimeofday()
            yield from unistd.msync(region.vaddr)
            t1 = yield from unistd.gettimeofday()
            got.append(t1 - t0)

        run_program(main)
        assert got[0] >= 16_000_000  # the modeled disk latency

    def test_msync_unmapped_rejected(self):
        caught = []

        def main():
            try:
                yield from unistd.msync(0x7777_0000)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EINVAL]
