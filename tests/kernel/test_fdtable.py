"""Tests for descriptor tables and open-file sharing semantics."""

import pytest

from repro.errors import Errno, SyscallError
from repro.hw.memory import PhysicalMemory
from repro.kernel.fs.file import FdTable, O_RDWR, OpenFile
from repro.kernel.fs.vfs import RegularFile


def open_file():
    return OpenFile(RegularFile("f", PhysicalMemory()), O_RDWR)


class TestAllocation:
    def test_lowest_free_descriptor(self):
        t = FdTable()
        assert t.allocate(open_file()) == 0
        assert t.allocate(open_file()) == 1

    def test_reuses_closed_slot(self):
        t = FdTable()
        t.allocate(open_file())
        t.allocate(open_file())
        t.close(0)
        assert t.allocate(open_file()) == 0

    def test_get_bad_fd(self):
        t = FdTable()
        with pytest.raises(SyscallError) as exc:
            t.get(3)
        assert exc.value.errno == Errno.EBADF

    def test_close_bad_fd(self):
        with pytest.raises(SyscallError):
            FdTable().close(0)


class TestDup:
    def test_dup_shares_offset(self):
        """The paper's seek-position hazard: dup'ed descriptors share the
        open-file object including its offset."""
        t = FdTable()
        fd = t.allocate(open_file())
        fd2 = t.dup(fd)
        t.get(fd).offset = 42
        assert t.get(fd2).offset == 42

    def test_dup2_targets_slot(self):
        t = FdTable()
        fd = t.allocate(open_file())
        assert t.dup(fd, at=7) == 7
        assert t.get(7) is t.get(fd)

    def test_dup2_closes_existing_target(self):
        t = FdTable()
        a = t.allocate(open_file())
        b = t.allocate(open_file())
        old = t.get(b)
        t.dup(a, at=b)
        assert old.refcount == 0
        assert t.get(b) is t.get(a)

    def test_refcounts(self):
        t = FdTable()
        fd = t.allocate(open_file())
        of = t.get(fd)
        t.dup(fd)
        assert of.refcount == 2
        t.close(fd).unref()
        assert of.refcount == 1


class TestForkCopy:
    def test_child_shares_open_files(self):
        t = FdTable()
        fd = t.allocate(open_file())
        child = t.fork_copy()
        assert child.get(fd) is t.get(fd)
        assert t.get(fd).refcount == 2

    def test_child_descriptor_set_matches(self):
        t = FdTable()
        t.allocate(open_file())
        t.allocate(open_file())
        t.close(0)
        child = t.fork_copy()
        assert child.descriptors() == t.descriptors() == [1]


class TestDrain:
    def test_drain_removes_all(self):
        t = FdTable()
        t.allocate(open_file())
        t.allocate(open_file())
        files = t.drain()
        assert len(files) == 2
        assert len(t) == 0


class TestOpenFileFlags:
    def test_readable_writable(self):
        from repro.kernel.fs.file import O_RDONLY, O_WRONLY
        node = RegularFile("f", PhysicalMemory())
        assert OpenFile(node, O_RDONLY).readable
        assert not OpenFile(node, O_RDONLY).writable
        assert OpenFile(node, O_WRONLY).writable
        assert not OpenFile(node, O_WRONLY).readable
        both = OpenFile(node, O_RDWR)
        assert both.readable and both.writable
