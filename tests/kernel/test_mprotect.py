"""Tests for mprotect and protection-violation traps."""

import pytest

from repro.errors import Errno, SyscallError
from repro.kernel.signals import Sig
from repro.kernel.vm import PROT_READ, PROT_WRITE
from repro.runtime import mapped, unistd
from repro import threads
from tests.conftest import run_program


class TestMprotect:
    def test_write_to_readonly_mapping_faults(self):
        caught = []

        def main():
            from repro.kernel.signals import SIG_IGN
            # Keep the process alive to observe the error.
            yield from unistd.sigaction(int(Sig.SIGSEGV), SIG_IGN)
            region = yield from mapped.map_anon_shared(4096)
            yield from region.mprotect(PROT_READ)
            try:
                yield from region.write(0, b"nope")
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EFAULT]

    def test_default_disposition_kills_process(self):
        def main():
            region = yield from mapped.map_anon_shared(4096)
            yield from region.mprotect(PROT_READ)
            yield from region.write(0, b"boom")

        sim, proc = run_program(main, check_deadlock=False)
        assert proc.exit_status == 128 + int(Sig.SIGSEGV)

    def test_segv_is_a_trap_to_the_causing_thread(self):
        """Only the faulting thread handles the SIGSEGV."""
        handled_by = []

        def handler(sig):
            me = yield from threads.thread_get_id()
            handled_by.append(me)

        def faulter(region):
            try:
                yield from region.write(0, b"x")
            except SyscallError:
                pass

        def innocent(_):
            for _ in range(3):
                yield from threads.thread_yield()

        def main():
            yield from unistd.sigaction(int(Sig.SIGSEGV), handler)
            region = yield from mapped.map_anon_shared(4096)
            yield from region.mprotect(PROT_READ)
            a = yield from threads.thread_create(
                faulter, region, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                innocent, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        run_program(main)
        assert handled_by == [2]

    def test_restore_write_access(self):
        def main():
            region = yield from mapped.map_anon_shared(4096)
            yield from region.mprotect(PROT_READ)
            yield from region.mprotect(PROT_READ | PROT_WRITE)
            yield from region.write(0, b"fine now")
            data = yield from region.read(0, 8)
            assert data == b"fine now"

        sim, proc = run_program(main)
        assert proc.exit_status == 0

    def test_mprotect_unmapped_rejected(self):
        caught = []

        def main():
            try:
                yield from unistd.syscall("mprotect", 0xDEAD0000,
                                          PROT_READ)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EINVAL]
