"""Tests for select() multi-descriptor waiting and /proc as real files."""

import pytest

from repro.api import Simulator
from repro.errors import Errno, SyscallError
from repro.kernel.fs.file import O_NONBLOCK, O_RDONLY, O_WRONLY
from repro.runtime import unistd
from repro import threads
from tests.conftest import run_program


class TestSelect:
    def test_timeout_returns_empty(self):
        got = []

        def main():
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            t0 = yield from unistd.gettimeofday()
            r = yield from unistd.select([fd], timeout_ns=3_000_000)
            t1 = yield from unistd.gettimeofday()
            got.append((r, t1 - t0 >= 3_000_000))

        run_program(main)
        assert got == [([], True)]

    def test_wakes_on_tty_input(self):
        got = []

        def main():
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            r = yield from unistd.select([fd])
            got.append(r == [fd])

        sim = Simulator()
        sim.spawn(main)
        sim.type_input(b"x", at_usec=10_000)
        sim.run()
        assert got == [True]
        assert sim.now_usec >= 10_000

    def test_multiple_fds_first_ready_wins(self):
        got = []

        def writer():
            fd = yield from unistd.open("/tmp/b", O_WRONLY)
            yield from unistd.sleep_usec(5_000)
            yield from unistd.write(fd, b"data")
            yield from unistd.close(fd)

        def main():
            yield from unistd.mkfifo("/tmp/a")
            yield from unistd.mkfifo("/tmp/b")
            pid_b = yield from unistd.fork1(writer)
            afd = yield from unistd.open("/tmp/a",
                                         O_RDONLY | O_NONBLOCK)
            bfd = yield from unistd.open("/tmp/b", O_RDONLY)
            # Keep /tmp/a writable so it is not EOF-ready.
            awfd = yield from unistd.open("/tmp/a",
                                          O_WRONLY | O_NONBLOCK)
            r = yield from unistd.select([afd, bfd])
            got.append(r == [bfd])
            yield from unistd.waitpid(pid_b)

        run_program(main)
        assert got == [True]

    def test_zero_timeout_is_probe(self):
        got = []

        def main():
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            r = yield from unistd.select([fd], timeout_ns=0)
            got.append(r)

        run_program(main)
        assert got == [[]]

    def test_regular_file_always_ready(self):
        got = []

        def main():
            fd = yield from unistd.creat("/tmp/f")
            r = yield from unistd.select([fd])
            got.append(r == [fd])

        run_program(main)
        assert got == [True]

    def test_select_sleep_is_indefinite_for_sigwaiting(self):
        """A select with no timeout counts as an indefinite wait, so
        SIGWAITING can rescue starved threads behind it."""
        from repro.hw.isa import Charge, GetContext
        from repro.sim.clock import usec
        got = {}

        def selector(_):
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            yield from unistd.select([fd])

        def compute(_):
            yield Charge(usec(500))
            got["done"] = yield from unistd.gettimeofday()

        def main():
            yield from threads.thread_create(selector, None)
            tid = yield from threads.thread_create(
                compute, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        sim = Simulator(ncpus=2)
        sim.spawn(main)
        sim.type_input(b"x", at_usec=500_000)
        sim.run(check_deadlock=False)
        assert got["done"] < 100_000_000  # freed long before the input


class TestProcFiles:
    def test_read_own_status(self):
        got = []

        def main():
            me = yield from unistd.getpid()
            fd = yield from unistd.open(f"/proc/{me}/status", O_RDONLY)
            got.append((yield from unistd.read(fd, 4096)).decode())

        run_program(main)
        assert "pid:\t1" in got[0]
        assert "lwp 1:" in got[0]

    def test_read_other_process_lwps(self):
        got = []

        def sleeper():
            yield from unistd.sleep_usec(50_000)

        def main():
            pid = yield from unistd.fork1(sleeper)
            yield from unistd.sleep_usec(5_000)
            fd = yield from unistd.open(f"/proc/{pid}/lwps", O_RDONLY)
            got.append((yield from unistd.read(fd, 4096)).decode())
            yield from unistd.waitpid(pid)

        run_program(main)
        assert "sleeping" in got[0]

    def test_status_reflects_live_state(self):
        """/proc regenerates on read: LWP counts change between reads."""
        got = []

        def idler(_):
            yield from unistd.sleep_usec(30_000)

        def main():
            me = yield from unistd.getpid()
            fd = yield from unistd.open(f"/proc/{me}/status", O_RDONLY)
            first = (yield from unistd.read(fd, 4096)).decode()
            yield from threads.thread_create(
                idler, None, flags=threads.THREAD_BIND_LWP)
            yield from unistd.sleep_usec(5_000)
            fd2 = yield from unistd.open(f"/proc/{me}/status", O_RDONLY)
            second = (yield from unistd.read(fd2, 4096)).decode()
            got.append((first, second))
            yield from unistd.sleep_usec(50_000)

        run_program(main, ncpus=2, check_deadlock=False)
        first, second = got[0]
        assert "nlwp:\t1" in first
        assert "nlwp:\t2" in second

    def test_unknown_pid_enoent(self):
        caught = []

        def main():
            try:
                yield from unistd.open("/proc/999/status", O_RDONLY)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.ENOENT]

    def test_proc_files_read_only(self):
        caught = []

        def main():
            me = yield from unistd.getpid()
            fd = yield from unistd.open(f"/proc/{me}/status", O_RDONLY)
            try:
                yield from unistd.write(fd, b"hack")
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EBADF]
