"""Tests for anonymous pipes."""

import pytest

from repro.errors import Errno, SyscallError
from repro.runtime import unistd
from repro import threads
from tests.conftest import run_program


class TestPipe:
    def test_roundtrip_between_threads(self):
        got = []

        def main():
            rfd, wfd = yield from unistd.pipe()

            def writer(_):
                yield from unistd.write(wfd, b"hello")
                yield from unistd.close(wfd)

            tid = yield from threads.thread_create(
                writer, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            got.append((yield from unistd.read(rfd, 100)))
            got.append((yield from unistd.read(rfd, 100)))  # EOF
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got == [b"hello", b""]

    def test_pipe_across_fork(self):
        got = []

        def child():
            # Inherited descriptors; write into the pipe.
            yield from unistd.write(1, b"from child")
            yield from unistd.close(1)

        def main():
            rfd, wfd = yield from unistd.pipe()
            assert (rfd, wfd) == (0, 1)
            pid = yield from unistd.fork1(child)
            yield from unistd.close(wfd)  # parent's copy of write end
            got.append((yield from unistd.read(rfd, 100)))
            yield from unistd.waitpid(pid)

        run_program(main)
        assert got == [b"from child"]

    def test_read_end_cannot_write(self):
        caught = []

        def main():
            rfd, wfd = yield from unistd.pipe()
            try:
                yield from unistd.write(rfd, b"x")
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EBADF]

    def test_pipe_not_seekable(self):
        caught = []

        def main():
            rfd, wfd = yield from unistd.pipe()
            try:
                yield from unistd.lseek(rfd, 0)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.ESPIPE]

    def test_bounded_buffer_backpressure(self):
        """A writer stalls when the pipe fills; the reader drains it."""
        from repro.kernel.fs.vfs import Fifo
        got = {}

        def main():
            rfd, wfd = yield from unistd.pipe()
            payload = b"x" * (Fifo.CAPACITY + 100)

            def writer(_):
                n = yield from unistd.write(wfd, payload)
                got["written"] = n

            tid = yield from threads.thread_create(
                writer, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from unistd.sleep_usec(5_000)  # writer fills and blocks
            received = b""
            while len(received) < len(payload):
                received += yield from unistd.read(rfd, 4096)
            got["read"] = len(received)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got["written"] == got["read"] == 8192 + 100
