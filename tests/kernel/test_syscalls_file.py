"""Tests for file system calls, including the paper's shared-state
hazards (shared offsets, close-for-everyone, one cwd per process)."""

import pytest

from repro.errors import Errno, SyscallError
from repro.hw.isa import Syscall
from repro.kernel.fs.file import (O_APPEND, O_CREAT, O_NONBLOCK, O_RDONLY,
                                  O_RDWR, O_TRUNC, O_WRONLY, SEEK_CUR,
                                  SEEK_END)
from repro.runtime import unistd
from repro import threads
from tests.conftest import run_program


class TestOpenCloseReadWrite:
    def test_create_write_read_roundtrip(self):
        got = []

        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            n = yield from unistd.write(fd, b"hello world")
            got.append(n)
            yield from unistd.lseek(fd, 0)
            got.append((yield from unistd.read(fd, 100)))
            yield from unistd.close(fd)

        run_program(main)
        assert got == [11, b"hello world"]

    def test_read_only_fd_rejects_write(self):
        caught = []

        def main():
            yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            fd = yield from unistd.open("/tmp/f", O_RDONLY)
            try:
                yield from unistd.write(fd, b"x")
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EBADF]

    def test_o_trunc(self):
        sizes = []

        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            yield from unistd.write(fd, b"hello")
            yield from unistd.close(fd)
            fd = yield from unistd.open("/tmp/f",
                                        O_RDWR | O_TRUNC)
            st = yield from unistd.stat("/tmp/f")
            sizes.append(st["size"])

        run_program(main)
        assert sizes == [0]

    def test_o_append(self):
        got = []

        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            yield from unistd.write(fd, b"aaa")
            fd2 = yield from unistd.open("/tmp/f", O_WRONLY | O_APPEND)
            yield from unistd.write(fd2, b"bbb")
            yield from unistd.lseek(fd, 0)
            got.append((yield from unistd.read(fd, 10)))

        run_program(main)
        assert got == [b"aaabbb"]

    def test_close_bad_fd(self):
        caught = []

        def main():
            try:
                yield from unistd.close(42)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EBADF]

    def test_errno_set_in_tls_on_failure(self):
        """The canonical TLS example: errno lands in thread-local
        storage."""
        errnos = []

        def main():
            from repro.runtime import libc
            try:
                yield from unistd.open("/missing", 0)
            except SyscallError:
                pass
            errnos.append((yield from libc.errno()))

        run_program(main)
        assert errnos == [int(Errno.ENOENT)]


class TestSeekSharing:
    def test_shared_offset_between_threads(self):
        """The paper's warning: another thread can move the seek pointer
        between your seek and your read."""
        got = []

        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            yield from unistd.write(fd, b"0123456789")

            def mover(_):
                yield from unistd.lseek(fd, 5)

            yield from unistd.lseek(fd, 0)
            tid = yield from threads.thread_create(
                mover, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            got.append((yield from unistd.read(fd, 3)))

        run_program(main)
        assert got == [b"567"]  # not b"012": the mover won

    def test_seek_cur_and_end(self):
        offs = []

        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            yield from unistd.write(fd, b"abcdef")
            offs.append((yield from unistd.lseek(fd, -2, SEEK_END)))
            offs.append((yield from unistd.lseek(fd, 1, SEEK_CUR)))

        run_program(main)
        assert offs == [4, 5]

    def test_negative_seek_rejected(self):
        caught = []

        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            try:
                yield from unistd.lseek(fd, -1)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EINVAL]

    def test_close_closes_for_all_threads(self):
        """"if one thread closes a file, it is closed for all threads"."""
        caught = []

        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)

            def closer(_):
                yield from unistd.close(fd)

            tid = yield from threads.thread_create(
                closer, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            try:
                yield from unistd.read(fd, 1)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EBADF]


class TestCwd:
    def test_chdir_affects_whole_process(self):
        """"There is only one working directory for each process."""
        got = []

        def main():
            yield from unistd.mkdir("/work")
            yield from unistd.open("/work/data", O_CREAT)

            def chdirer(_):
                yield from unistd.chdir("/work")

            tid = yield from threads.thread_create(
                chdirer, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            st = yield from unistd.stat("data")  # relative: resolves now
            got.append(st["kind"])

        run_program(main)
        assert got == ["file"]

    def test_chdir_to_file_rejected(self):
        caught = []

        def main():
            yield from unistd.open("/tmp/f", O_CREAT)
            try:
                yield from unistd.chdir("/tmp/f")
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.ENOTDIR]


class TestTty:
    def test_read_blocks_until_input(self):
        got = []

        def main():
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            got.append((yield from unistd.read(fd, 10)))

        from repro.api import Simulator
        sim = Simulator()
        sim.spawn(main)
        sim.type_input(b"keys", at_usec=5_000)
        sim.run()
        assert got == [b"keys"]
        assert sim.now_usec >= 5_000

    def test_nonblock_read_eagain(self):
        caught = []

        def main():
            fd = yield from unistd.open("/dev/tty",
                                        O_RDONLY | O_NONBLOCK)
            try:
                yield from unistd.read(fd, 10)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EAGAIN]

    def test_tty_write_collects_output(self):
        def main():
            fd = yield from unistd.open("/dev/tty", O_WRONLY)
            yield from unistd.write(fd, b"display me")

        sim, _ = run_program(main)
        assert bytes(sim.tty().output) == b"display me"


class TestFifo:
    def test_fifo_roundtrip_between_processes(self):
        got = []

        def writer():
            fd = yield from unistd.open("/tmp/p", O_WRONLY)
            yield from unistd.write(fd, b"ping")
            yield from unistd.close(fd)

        def main():
            yield from unistd.mkfifo("/tmp/p")
            pid = yield from unistd.fork1(writer)
            fd = yield from unistd.open("/tmp/p", O_RDONLY)
            got.append((yield from unistd.read(fd, 10)))
            got.append((yield from unistd.read(fd, 10)))  # EOF after close
            yield from unistd.waitpid(pid)

        run_program(main)
        assert got == [b"ping", b""]

    def test_fifo_open_blocks_for_peer(self):
        """Classic FIFO semantics: open(O_WRONLY) waits for a reader."""
        order = []

        def writer():
            fd = yield from unistd.open("/tmp/p", O_WRONLY)
            order.append("writer-open")
            yield from unistd.write(fd, b"x")

        def main():
            yield from unistd.mkfifo("/tmp/p")
            pid = yield from unistd.fork1(writer)
            yield from unistd.sleep_usec(20_000)
            order.append("reader-opening")
            fd = yield from unistd.open("/tmp/p", O_RDONLY)
            yield from unistd.read(fd, 1)
            yield from unistd.waitpid(pid)

        run_program(main)
        assert order == ["reader-opening", "writer-open"]

    def test_write_to_readerless_fifo_epipe(self):
        caught = []

        def main():
            from repro.kernel.signals import SIG_IGN, Sig
            # Default SIGPIPE action would kill the process; ignore it to
            # observe the EPIPE error, like every real daemon does.
            yield from unistd.sigaction(int(Sig.SIGPIPE), SIG_IGN)
            yield from unistd.mkfifo("/tmp/p")
            fd = yield from unistd.open("/tmp/p", O_RDWR)
            # Simulate the read side vanishing: drop it to 0 readers.
            # (open O_RDWR counted one reader; close removes it.)
            fd2 = yield from unistd.open("/tmp/p",
                                         O_WRONLY | O_NONBLOCK)
            yield from unistd.close(fd)
            try:
                yield from unistd.write(fd2, b"x")
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EPIPE]

    def test_write_to_readerless_fifo_fatal_by_default(self):
        """Without a handler, SIGPIPE's default action kills the whole
        process — all threads, per the paper's default-action rule."""
        def main():
            yield from unistd.mkfifo("/tmp/p")
            fd = yield from unistd.open("/tmp/p", O_RDWR)
            fd2 = yield from unistd.open("/tmp/p",
                                         O_WRONLY | O_NONBLOCK)
            yield from unistd.close(fd)
            yield from unistd.write(fd2, b"x")

        from repro.kernel.signals import Sig
        sim, proc = run_program(main, check_deadlock=False)
        assert proc.exit_status == 128 + int(Sig.SIGPIPE)


class TestMisc:
    def test_dup_shares_offset_via_syscalls(self):
        got = []

        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            yield from unistd.write(fd, b"abcdef")
            fd2 = yield from unistd.dup(fd)
            yield from unistd.lseek(fd, 2)
            got.append((yield from unistd.read(fd2, 2)))

        run_program(main)
        assert got == [b"cd"]

    def test_unlink_then_stat_fails(self):
        caught = []

        def main():
            yield from unistd.open("/tmp/f", O_CREAT)
            yield from unistd.unlink("/tmp/f")
            try:
                yield from unistd.stat("/tmp/f")
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.ENOENT]

    def test_ftruncate_and_fsync(self):
        sizes = []

        def main():
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            yield from unistd.write(fd, b"abcdef")
            yield from unistd.ftruncate(fd, 2)
            yield from unistd.fsync(fd)
            st = yield from unistd.stat("/tmp/f")
            sizes.append(st["size"])

        run_program(main)
        assert sizes == [2]

    def test_dev_null(self):
        got = []

        def main():
            fd = yield from unistd.open("/dev/null", O_RDWR)
            got.append((yield from unistd.write(fd, b"void")))
            got.append((yield from unistd.read(fd, 10)))

        run_program(main)
        assert got == [4, b""]
