"""Direct unit tests for the Kernel object's plumbing."""

import pytest

from repro.errors import Errno, SyscallError
from repro.hw.isa import WaitChannel
from repro.hw.machine import Machine
from repro.kernel.kernel import build_kernel
from repro.kernel.process import ProcState


@pytest.fixture
def kernel():
    return build_kernel(Machine(ncpus=1))


class TestProcessTable:
    def test_create_assigns_increasing_pids(self, kernel):
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        assert b.pid == a.pid + 1

    def test_child_inherits_ids(self, kernel):
        parent = kernel.create_process("p")
        parent.ruid = parent.euid = 7
        child = kernel.create_process("c", parent=parent)
        assert child.euid == 7
        assert child in parent.children

    def test_process_by_pid_unknown(self, kernel):
        with pytest.raises(SyscallError) as exc:
            kernel.process_by_pid(404)
        assert exc.value.errno == Errno.ESRCH

    def test_active_processes_filter(self, kernel):
        proc = kernel.create_process("p")
        assert proc in kernel.active_processes()
        proc.state = ProcState.ZOMBIE
        assert proc not in kernel.active_processes()


class TestChannels:
    def test_wakeup_one_empty_returns_none(self, kernel):
        chan = WaitChannel("empty")
        assert kernel.wakeup_one(chan) is None

    def test_wakeup_all_empty_returns_zero(self, kernel):
        assert kernel.wakeup_all(WaitChannel("empty")) == 0

    def test_shared_channel_identity(self, kernel):
        a = kernel.shared_channel(("obj", 0))
        b = kernel.shared_channel(("obj", 0))
        c = kernel.shared_channel(("obj", 8))
        assert a is b
        assert a is not c

    def test_channel_fifo_and_remove(self):
        chan = WaitChannel("x")
        chan.add("L1")
        chan.add("L2")
        assert chan.remove("L1")
        assert not chan.remove("L1")
        assert chan.pop_first() == "L2"
        assert chan.pop_first() is None


class TestReaping:
    def test_reap_accumulates_child_usage(self, kernel):
        parent = kernel.create_process("p")
        child = kernel.create_process("c", parent=parent)
        from repro.hw.context import Activity

        def idle():
            yield

        lwp = kernel.create_lwp(child, Activity(idle()), runnable=False)
        lwp.user_ns = 5_000
        lwp.system_ns = 1_000
        child.state = ProcState.ZOMBIE
        child.exit_status = 9
        pid, status = kernel.reap(parent, child)
        assert (pid, status) == (child.pid, 9)
        assert parent.child_user_ns == 5_000
        assert parent.child_system_ns == 1_000
        assert child not in parent.children

    def test_exit_process_idempotent(self, kernel):
        proc = kernel.create_process("p")
        kernel.exit_process(proc, 1)
        first_status = proc.exit_status
        kernel.exit_process(proc, 2)  # no effect
        assert proc.exit_status == first_status


class TestDiagnostics:
    def test_idle_complaint_names_sleepers(self, kernel):
        from repro.hw.context import Activity
        from repro.kernel.lwp import LwpState

        proc = kernel.create_process("p")

        def idle():
            yield

        lwp = kernel.create_lwp(proc, Activity(idle()), runnable=False)
        lwp.state = LwpState.SLEEPING
        lwp.channel = WaitChannel("somewhere")
        complaint = kernel._idle_complaint()
        assert complaint is not None
        assert "somewhere" in complaint

    def test_no_complaint_when_everything_exited(self, kernel):
        proc = kernel.create_process("p")
        kernel.exit_process(proc, 0)
        assert kernel._idle_complaint() is None

    def test_syscall_counts_accumulate(self, kernel):
        class L:
            name = "fake"

        kernel.note_syscall(L(), "read")
        kernel.note_syscall(L(), "read")
        assert kernel.syscall_counts["read"] == 2


class TestUnparkHelper:
    def test_unpark_sets_permit_for_non_parked(self, kernel):
        from repro.hw.context import Activity

        proc = kernel.create_process("p")

        def idle():
            yield

        lwp = kernel.create_lwp(proc, Activity(idle()), runnable=False)
        assert kernel.unpark_lwp(lwp) is False
        assert lwp.park_permit
