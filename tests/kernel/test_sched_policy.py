"""Tests for the pluggable scheduling-class framework.

Covers the SchedPolicy implementations (CFS/MLFQ/SJF/HRR) as pure
queue-discipline units, the SchedClassTable arbitration, the priocntl
class-change protocol (error paths + requeue semantics), the GangGroup
fixes (per-kernel ids, class reset on remove), and the SchedulerChoice
perturbation rule end-to-end.
"""

import pytest

from repro.api import Simulator
from repro.errors import SimulationError, SyscallError
from repro.hw.context import Activity, as_generator
from repro.hw.isa import Charge, Syscall
from repro.kernel.lwp import SchedClass
from repro.kernel.sched.policy import (CfsPolicy, GangPolicy, HrrPolicy,
                                       MlfqPolicy, RealtimePolicy,
                                       SchedClassTable, SjfPolicy,
                                       TimesharePolicy)
from repro.kernel.syscalls.lwp_calls import (PC_GETPARMS, PC_JOIN_GANG,
                                             PC_LEAVE_GANG, PC_SETCLASS)
from repro.sim.clock import usec
from repro.sim.schedule import SchedulePlan, SchedulerChoice
from tests.conftest import run_program


class FakeProc:
    def __init__(self, pid):
        self.pid = pid


class FakeLwp:
    """Just enough LWP for policy unit tests."""

    def __init__(self, lwp_id, prio=30, pid=1, sched_class=SchedClass.CFS):
        self.lwp_id = lwp_id
        self.priority = prio
        self.effective_priority = prio
        self.name = f"lwp-{pid}.{lwp_id}"
        self.bound_cpu = None
        self.sched_class = sched_class
        self.sched_state = None
        self.process = FakeProc(pid)


def everyone(_lwp):
    return True


class TestCfsPolicy:
    def test_least_vruntime_first(self):
        pol = CfsPolicy()
        a, b = FakeLwp(1), FakeLwp(2)
        pol.enqueue(a)
        pol.enqueue(b)
        assert pol.peek(everyone) is a  # tie broken by lwp_id
        pol.take(a)
        pol.on_offcpu(a, 5_000)
        pol.enqueue(a)
        assert pol.peek(everyone) is b  # b has run less

    def test_new_arrival_starts_at_min_vruntime(self):
        pol = CfsPolicy()
        a = FakeLwp(1)
        pol.enqueue(a)
        pol.take(a)
        pol.on_offcpu(a, 9_000)
        pol.enqueue(a)
        # A brand-new LWP must not be able to starve the queue from
        # vruntime 0, nor be starved: it starts at the floor.
        c = FakeLwp(3)
        pol.enqueue(c)
        assert c.sched_state["vruntime"] == pol._min_vruntime

    def test_offcpu_without_state_is_noop(self):
        pol = CfsPolicy()
        a = FakeLwp(1)
        pol.on_offcpu(a, 1_000)  # never enqueued: no state, no crash
        assert a.sched_state is None


class TestSjfPolicy:
    def test_shortest_estimated_burst_first(self):
        pol = SjfPolicy()
        hog, sprinter = FakeLwp(1), FakeLwp(2)
        for lwp, span in ((hog, 8_000_000), (sprinter, 10_000)):
            pol.enqueue(lwp)
            pol.take(lwp)
            pol.on_offcpu(lwp, span)
        pol.enqueue(hog)
        pol.enqueue(sprinter)
        assert pol.peek(everyone) is sprinter

    def test_burst_estimate_is_exponential_average(self):
        pol = SjfPolicy()
        a = FakeLwp(1)
        pol.enqueue(a)
        est0 = a.sched_state["burst_ns"]
        pol.take(a)
        pol.on_offcpu(a, 3_000_000)
        assert a.sched_state["burst_ns"] == (est0 + 3_000_000) // 2


class TestMlfqPolicy:
    def test_expiry_demotes_and_wakeup_boosts(self):
        pol = MlfqPolicy()
        a = FakeLwp(1)
        pol.enqueue(a)
        assert a.sched_state["level"] == 0
        pol.on_quantum_expired(a)
        assert a.sched_state["level"] == 1
        for _ in range(10):
            pol.on_quantum_expired(a)
        assert a.sched_state["level"] == MlfqPolicy.LEVELS - 1
        pol.on_wakeup(a)
        assert a.sched_state["level"] == 0

    def test_quantum_doubles_per_level(self):
        pol = MlfqPolicy()
        a = FakeLwp(1)
        pol.enqueue(a)
        base = 1_000
        assert pol.quantum_ns(a, base) == base
        pol.on_quantum_expired(a)
        assert pol.quantum_ns(a, base) == base * 2

    def test_higher_level_queue_goes_first(self):
        pol = MlfqPolicy()
        hog, fresh = FakeLwp(1), FakeLwp(2)
        pol.enqueue(hog)
        pol.take(hog)
        pol.on_quantum_expired(hog)   # hog sinks to level 1
        pol.enqueue(hog)
        pol.enqueue(fresh)            # fresh joins level 0
        assert pol.peek(everyone) is fresh

    def test_periodic_boost_repromotes(self):
        pol = MlfqPolicy()
        hog = FakeLwp(1)
        pol.enqueue(hog)
        pol.take(hog)
        for _ in range(MlfqPolicy.LEVELS):
            pol.on_quantum_expired(hog)
        pol.enqueue(hog)
        # Churn enqueues until the deterministic boost clock fires.
        filler = FakeLwp(2)
        for _ in range(MlfqPolicy.BOOST_EVERY):
            pol.enqueue(filler)
            pol.take(filler)
        assert hog.sched_state["level"] == 0


class TestHrrPolicy:
    def test_groups_share_round_robin(self):
        pol = HrrPolicy()
        # Process 1 floods; process 2 has a single LWP.
        a1, a2, a3 = (FakeLwp(i, pid=1) for i in (1, 2, 3))
        b1 = FakeLwp(1, pid=2)
        for lwp in (a1, a2, a3, b1):
            pol.enqueue(lwp)
        picked = []
        while len(pol):
            lwp = pol.peek(everyone)
            pol.take(lwp)
            picked.append(lwp)
        # Group 1 gets QUOTA picks, then group 2 gets its turn: the
        # single-LWP process is not crowded out until the flood drains.
        assert picked.index(b1) == HrrPolicy.QUOTA

    def test_remove_drops_empty_group(self):
        pol = HrrPolicy()
        a = FakeLwp(1, pid=7)
        pol.enqueue(a)
        assert pol.remove(a)
        assert len(pol) == 0
        assert pol.peek(everyone) is None


class TestSchedClassTable:
    def test_duplicate_class_rejected(self):
        with pytest.raises(SimulationError):
            SchedClassTable([TimesharePolicy(), TimesharePolicy()])

    def test_unknown_class_name_rejected(self):
        table = SchedClassTable.default()
        with pytest.raises(SimulationError):
            table.class_for_name("FIFO")

    def test_unregistered_class_name_rejected(self):
        table = SchedClassTable([TimesharePolicy()])
        with pytest.raises(SimulationError):
            table.class_for_name("CFS")

    def test_pick_prefers_higher_band(self):
        table = SchedClassTable.default()
        ts = FakeLwp(1, prio=59, sched_class=SchedClass.TIMESHARE)
        rt = FakeLwp(2, prio=0, sched_class=SchedClass.REALTIME)
        rt.effective_priority = 200
        ts.effective_priority = 59
        table.insert(ts)
        table.insert(rt)
        assert table.pick(everyone) is rt
        assert table.pick(everyone) is ts

    def test_remove_finds_lwp_after_class_change(self):
        table = SchedClassTable.default()
        lwp = FakeLwp(1, sched_class=SchedClass.TIMESHARE)
        table.insert(lwp)
        lwp.sched_class = SchedClass.MLFQ  # changed while queued
        assert table.remove(lwp)
        assert len(table) == 0


class TestPriocntlClassChange:
    def test_esrch_for_unknown_lwp(self):
        caught = []

        def main():
            try:
                yield Syscall("priocntl", PC_SETCLASS, 999,
                              SchedClass.CFS)
            except SyscallError as err:
                caught.append(err.errno.name)

        run_program(main)
        assert caught == ["ESRCH"]

    def test_einval_for_non_class_argument(self):
        caught = []

        def main():
            try:
                yield Syscall("priocntl", PC_SETCLASS, 0, "CFS")
            except SyscallError as err:
                caught.append(err.errno.name)

        run_program(main)
        assert caught == ["EINVAL"]

    def test_einval_for_unregistered_class(self):
        caught = []

        def main():
            try:
                yield Syscall("priocntl", PC_SETCLASS, 0, SchedClass.CFS)
            except SyscallError as err:
                caught.append(err.errno.name)

        sim = Simulator(ncpus=1)
        sim.kernel.dispatcher.table = SchedClassTable(
            [TimesharePolicy(), RealtimePolicy(), GangPolicy()])
        sim.spawn(main)
        sim.run()
        assert caught == ["EINVAL"]

    def test_change_to_new_class_and_back(self):
        seen = {}

        def main():
            yield Syscall("priocntl", PC_SETCLASS, 0, SchedClass.MLFQ)
            seen["mlfq"] = yield Syscall("priocntl", PC_GETPARMS)
            yield Syscall("priocntl", PC_SETCLASS, 0,
                          SchedClass.TIMESHARE)
            seen["ts"] = yield Syscall("priocntl", PC_GETPARMS)

        run_program(main)
        assert seen["mlfq"]["class"] is SchedClass.MLFQ
        assert seen["ts"]["class"] is SchedClass.TIMESHARE

    def test_runnable_lwp_is_requeued_under_new_class(self):
        """Class change of a queued LWP moves it to the new class's
        queue (the handoff protocol), dropping the old state blob."""
        seen = {}

        def burn():
            yield Charge(usec(5_000))

        def main():
            # One CPU: the created LWP stays RUNNABLE behind main.
            lwp_id = yield Syscall(
                "lwp_create", Activity(as_generator(burn), name="burn"))
            target = sim.kernel.processes[1].lwps[lwp_id]
            table = sim.kernel.dispatcher.table
            seen["before"] = sim.kernel.dispatcher.table.for_class(
                SchedClass.CFS).queued()
            yield Syscall("priocntl", PC_SETCLASS, lwp_id, SchedClass.CFS)
            seen["state"] = target.state.value
            seen["after"] = table.for_class(SchedClass.CFS).queued()
            seen["ts_queue"] = table.for_class(
                SchedClass.TIMESHARE).queued()
            seen["target"] = target

        sim = Simulator(ncpus=1)
        sim.spawn(main)
        sim.run()
        assert seen["before"] == []
        assert seen["state"] == "runnable"
        assert seen["after"] == [seen["target"]]
        assert seen["target"] not in seen["ts_queue"]


class TestGangFixes:
    def test_gang_remove_resets_class(self):
        """Regression: a departing member must not stay GANG-classed."""
        seen = {}

        def main():
            gang = yield Syscall("priocntl", PC_JOIN_GANG)
            seen["joined"] = (yield Syscall("priocntl", PC_GETPARMS))
            gang.remove(sim.kernel.processes[1].lwps[1])
            seen["left"] = (yield Syscall("priocntl", PC_GETPARMS))

        sim = Simulator(ncpus=1)
        sim.spawn(main)
        sim.run()
        assert seen["joined"]["class"] is SchedClass.GANG
        assert seen["left"]["class"] is SchedClass.TIMESHARE

    def test_leave_gang_still_resets_class(self):
        seen = {}

        def main():
            yield Syscall("priocntl", PC_JOIN_GANG)
            yield Syscall("priocntl", PC_LEAVE_GANG)
            seen["parms"] = yield Syscall("priocntl", PC_GETPARMS)

        run_program(main)
        assert seen["parms"]["class"] is SchedClass.TIMESHARE

    def test_gang_ids_are_per_kernel(self):
        """Two engines in one host process must hand out the same gang
        ids (a class-level counter would leak across them)."""
        def observed():
            seen = {}

            def main():
                gang = yield Syscall("priocntl", PC_JOIN_GANG)
                seen["gang_id"] = gang.gang_id

            run_program(main)
            return seen["gang_id"]

        assert observed() == observed() == 1


class TestSchedulerChoice:
    def test_dict_roundtrip(self):
        plan = SchedulePlan([SchedulerChoice("MLFQ")])
        rebuilt = SchedulePlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == {
            "rules": [{"kind": "scheduler", "sched_class": "MLFQ"}]}

    def test_override_rehomes_default_class(self):
        seen = {}

        def main():
            seen["parms"] = yield Syscall("priocntl", PC_GETPARMS)

        sim = Simulator(ncpus=1,
                        schedule=SchedulePlan([SchedulerChoice("CFS")]))
        sim.spawn(main)
        sim.run()
        assert seen["parms"]["class"] is SchedClass.CFS

    def test_explicit_realtime_wins_over_override(self):
        seen = {}

        def rt_main():
            seen["parms"] = yield Syscall("priocntl", PC_GETPARMS)

        def main():
            yield Syscall(
                "lwp_create", Activity(as_generator(rt_main), name="rt"),
                SchedClass.REALTIME)
            yield Charge(usec(1_000))

        sim = Simulator(ncpus=2,
                        schedule=SchedulePlan([SchedulerChoice("SJF")]))
        sim.spawn(main)
        sim.run(check_deadlock=False)
        assert seen["parms"]["class"] is SchedClass.REALTIME

    def test_unknown_class_fails_loudly(self):
        def main():
            yield Charge(usec(1))

        sim = Simulator(
            ncpus=1, schedule=SchedulePlan([SchedulerChoice("FIFO")]))
        with pytest.raises(SimulationError):
            sim.spawn(main)
