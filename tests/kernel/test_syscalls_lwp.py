"""Tests for the LWP system calls the threads library builds on."""

import pytest

from repro.errors import Errno, SyscallError
from repro.hw.context import Activity, Mode
from repro.hw.isa import Charge, Syscall
from repro.runtime import unistd
from repro.sim.clock import usec
from tests.conftest import run_program


def _raw_lwp_body(results, tag):
    """A root generator for a raw LWP (no threads library involvement)."""
    def body():
        yield Charge(usec(100))
        results.append(tag)
    return body()


class TestLwpCreate:
    def test_create_returns_new_id(self):
        got = {}
        results = []

        def main():
            got["self"] = yield Syscall("lwp_self")
            act = Activity(_raw_lwp_body(results, "worker"), name="w")
            got["new"] = yield Syscall("lwp_create", act)
            yield from unistd.sleep_usec(1_000)

        run_program(main, check_deadlock=False)
        assert got["new"] != got["self"]
        assert results == ["worker"]

    def test_create_charges_lwp_cost(self):
        def main():
            act = Activity(_raw_lwp_body([], "w"), name="w")
            t0 = yield Syscall("gettimeofday")
            yield Syscall("lwp_create", act, runnable=False)
            t1 = yield Syscall("gettimeofday")
            times.append((t1 - t0) / 1000)

        times = []
        run_program(main, check_deadlock=False)
        assert times[0] >= 2241  # the calibrated kernel service time

    def test_created_suspended_does_not_run(self):
        results = []

        def main():
            act = Activity(_raw_lwp_body(results, "never"), name="w")
            yield Syscall("lwp_create", act, runnable=False)
            yield from unistd.sleep_usec(5_000)

        run_program(main, check_deadlock=False)
        assert results == []

    def test_lwp_continue_starts_suspended(self):
        results = []

        def main():
            act = Activity(_raw_lwp_body(results, "late"), name="w")
            lwp_id = yield Syscall("lwp_create", act, runnable=False)
            yield from unistd.sleep_usec(1_000)
            yield Syscall("lwp_continue", lwp_id)
            yield from unistd.sleep_usec(1_000)

        run_program(main, check_deadlock=False)
        assert results == ["late"]


class TestParkUnpark:
    def test_unpark_wakes_parked(self):
        log = []

        def parker():
            def body():
                log.append("parking")
                yield Syscall("lwp_park")
                log.append("unparked")
            return body()

        def main():
            act = Activity(parker(), name="p")
            lwp_id = yield Syscall("lwp_create", act)
            yield from unistd.sleep_usec(2_000)
            yield Syscall("lwp_unpark", lwp_id)
            yield from unistd.sleep_usec(2_000)

        run_program(main, check_deadlock=False, ncpus=2)
        assert log == ["parking", "unparked"]

    def test_permit_absorbs_unpark_before_park(self):
        """The unpark-before-park race: the permit makes the later park
        return immediately."""
        log = []

        def late_parker():
            def body():
                yield Syscall("nanosleep", usec(5_000))
                t0 = yield Syscall("gettimeofday")
                yield Syscall("lwp_park")  # permit pending: no block
                t1 = yield Syscall("gettimeofday")
                log.append((t1 - t0) / 1000)
            return body()

        def main():
            act = Activity(late_parker(), name="p")
            lwp_id = yield Syscall("lwp_create", act)
            yield Syscall("lwp_unpark", lwp_id)  # before the park
            yield from unistd.sleep_usec(20_000)

        run_program(main, check_deadlock=False, ncpus=2)
        assert len(log) == 1
        # No dispatch wait: just syscall + service costs (well under 1ms).
        assert log[0] < 1_000

    def test_unpark_unknown_lwp(self):
        caught = []

        def main():
            try:
                yield Syscall("lwp_unpark", 99)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.ESRCH]


class TestLwpWaitExit:
    def test_lwp_wait_returns_exited_id(self):
        got = {}

        def worker():
            def body():
                yield Charge(usec(50))
                yield Syscall("lwp_exit")
            return body()

        def main():
            lwp_id = yield Syscall("lwp_create", Activity(worker()))
            got["waited"] = yield Syscall("lwp_wait", lwp_id)

        run_program(main, ncpus=2, check_deadlock=False)
        assert got["waited"] == 2  # the created LWP

    def test_lwp_wait_any(self):
        got = {}

        def worker():
            def body():
                yield Syscall("lwp_exit")
            return body()

        def main():
            yield Syscall("lwp_create", Activity(worker()))
            got["waited"] = yield Syscall("lwp_wait", 0)

        run_program(main, ncpus=2, check_deadlock=False)
        assert got["waited"] == 2


class TestUsync:
    def test_expected_value_check_avoids_sleep(self):
        """Futex semantics: if the cell changed, usync_block returns 1
        without sleeping."""
        got = []

        def main():
            from repro.hw.isa import GetContext
            ctx = yield GetContext()
            mobj = ctx.kernel.machine.memory.allocate(4096, resident=True)
            mobj.store_cell(0, 99)
            result = yield Syscall("usync_block", mobj, 0, 0)  # expect 0
            got.append(result)

        run_program(main)
        assert got == [1]

    def test_wake_returns_count(self):
        got = []

        def main():
            from repro.hw.isa import GetContext
            ctx = yield GetContext()
            mobj = ctx.kernel.machine.memory.allocate(4096, resident=True)
            n = yield Syscall("usync_wake", mobj, 0, 5)
            got.append(n)  # nobody sleeping

        run_program(main)
        assert got == [0]
