"""Tests for the /proc debugger interface."""

from repro.hw.isa import Charge, Syscall
from repro.kernel.fs import procfs
from repro.runtime import unistd
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


class TestStatusDict:
    def test_reports_lwps_only(self):
        """"a kernel process model interface can provide access only to
        kernel-supported threads of control, namely LWPs"."""
        got = {}

        def idler(_):
            yield from unistd.sleep_usec(10_000)

        def main():
            # 5 unbound threads but only the pool LWP(s) underneath.
            for _ in range(5):
                yield from threads.thread_create(idler, None)
            status = yield from unistd.proc_status()
            got["status"] = status
            yield from unistd.sleep_usec(20_000)

        run_program(main, check_deadlock=False)
        status = got["status"]
        assert status["nlwp"] < 5
        assert len(status["lwps"]) == status["nlwp"]

    def test_cross_process_status(self):
        got = {}

        def sleeper():
            yield from unistd.sleep_usec(50_000)

        def main():
            pid = yield from unistd.fork1(sleeper)
            yield from unistd.sleep_usec(5_000)
            got["status"] = yield from unistd.proc_status(pid)
            yield from unistd.waitpid(pid)

        run_program(main)
        assert got["status"]["state"] == "active"
        assert got["status"]["lwps"][0]["state"] == "sleeping"

    def test_lwp_fields(self):
        got = {}

        def main():
            yield Charge(usec(1_000))
            got["status"] = yield from unistd.proc_status()

        run_program(main)
        lwp = got["status"]["lwps"][0]
        assert lwp["sched_class"] == "TS"
        assert lwp["user_usec"] >= 1_000
        assert lwp["state"] == "running"


class TestDebuggerView:
    def test_view_joins_kernel_and_library(self):
        """Debugger sees threads via library cooperation, LWPs via
        /proc."""
        got = {}

        def idler(_):
            yield from unistd.sleep_usec(10_000)

        def main():
            from repro.hw.isa import GetContext
            for _ in range(3):
                yield from threads.thread_create(idler, None)
            ctx = yield GetContext()
            got["view"] = procfs.debugger_view(ctx.process)
            yield from unistd.sleep_usec(20_000)

        run_program(main, check_deadlock=False)
        view = got["view"]
        assert len(view["threads"]) == 4  # main + 3
        assert view["nlwp"] >= 1
        main_thread = view["threads"][0]
        assert main_thread["lwp"] is not None  # currently riding an LWP

    def test_status_text_renders(self):
        got = {}

        def main():
            from repro.hw.isa import GetContext
            ctx = yield GetContext()
            got["text"] = procfs.status_text(ctx.process)

        run_program(main)
        assert "nlwp:\t1" in got["text"]
        assert "lwp 1:" in got["text"]
