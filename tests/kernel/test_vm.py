"""Tests for address spaces, mappings, brk, and fork duplication."""

import pytest

from repro.errors import SyscallError
from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.kernel.vm import AddressSpace, MAP_SHARED


def fresh_aspace(name="t"):
    return AddressSpace(PhysicalMemory(), name=name)


class TestBrk:
    def test_initial_brk_at_heap_base(self):
        a = fresh_aspace()
        assert a.brk_addr == AddressSpace.HEAP_BASE

    def test_sbrk_returns_old_break(self):
        a = fresh_aspace()
        old = a.sbrk(4096)
        assert old == AddressSpace.HEAP_BASE
        assert a.brk_addr == old + 4096

    def test_heap_addresses_resolve_after_growth(self):
        a = fresh_aspace()
        base = a.sbrk(8192)
        mobj, off = a.resolve(base + 100)
        assert off == 100

    def test_brk_below_base_rejected(self):
        a = fresh_aspace()
        with pytest.raises(SyscallError):
            a.set_brk(AddressSpace.HEAP_BASE - 1)

    def test_heap_pages_resident(self):
        a = fresh_aspace()
        a.sbrk(PAGE_SIZE * 2)
        mobj, _ = a.resolve(AddressSpace.HEAP_BASE)
        assert mobj.is_resident(0) and mobj.is_resident(1)


class TestMappings:
    def test_map_object_and_resolve(self):
        a = fresh_aspace()
        mobj = a.memory.allocate(PAGE_SIZE)
        m = a.map_object(mobj, PAGE_SIZE, shared=True)
        got, off = a.resolve(m.vaddr + 12)
        assert got is mobj and off == 12

    def test_unmapped_address_faults(self):
        a = fresh_aspace()
        with pytest.raises(SyscallError):
            a.resolve(0xDEAD0000)

    def test_regions_rounded_to_pages(self):
        a = fresh_aspace()
        mobj = a.memory.allocate(100)
        m = a.map_object(mobj, 100, shared=False)
        assert m.length == PAGE_SIZE

    def test_distinct_regions_do_not_overlap(self):
        a = fresh_aspace()
        m1 = a.map_object(a.memory.allocate(PAGE_SIZE), PAGE_SIZE, True)
        m2 = a.map_object(a.memory.allocate(PAGE_SIZE), PAGE_SIZE, True)
        assert m1.end <= m2.vaddr or m2.end <= m1.vaddr

    def test_unmap(self):
        a = fresh_aspace()
        m = a.map_object(a.memory.allocate(PAGE_SIZE), PAGE_SIZE, True)
        a.unmap(m.vaddr)
        with pytest.raises(SyscallError):
            a.resolve(m.vaddr)

    def test_cannot_unmap_heap(self):
        a = fresh_aspace()
        with pytest.raises(SyscallError):
            a.unmap(AddressSpace.HEAP_BASE)

    def test_unaligned_file_offset_rejected(self):
        a = fresh_aspace()
        mobj = a.memory.allocate(PAGE_SIZE * 2)
        with pytest.raises(SyscallError):
            a.map_object(mobj, PAGE_SIZE, shared=True, obj_offset=100)


class TestForkCopy:
    def test_heap_contents_copied(self):
        a = fresh_aspace()
        base = a.sbrk(4096)
        heap, off = a.resolve(base)
        heap.store_cell(off, "parent-data")
        child = a.fork_copy(name="child")
        cheap, coff = child.resolve(base)
        assert cheap.load_cell(coff) == "parent-data"
        # And they are now independent.
        cheap.store_cell(coff, "child-data")
        assert heap.load_cell(off) == "parent-data"

    def test_shared_mapping_aliases_same_object(self):
        a = fresh_aspace()
        mobj = a.memory.allocate(PAGE_SIZE)
        m = a.map_object(mobj, PAGE_SIZE, shared=True)
        child = a.fork_copy()
        got, _ = child.resolve(m.vaddr)
        assert got is mobj

    def test_private_mapping_copied(self):
        a = fresh_aspace()
        mobj = a.memory.allocate(PAGE_SIZE, resident=True)
        mobj.store_cell(0, 1)
        m = a.map_object(mobj, PAGE_SIZE, shared=False)
        child = a.fork_copy()
        got, _ = child.resolve(m.vaddr)
        assert got is not mobj
        assert got.load_cell(0) == 1

    def test_brk_preserved(self):
        a = fresh_aspace()
        a.sbrk(12345)
        child = a.fork_copy()
        assert child.brk_addr == a.brk_addr

    def test_fork1_lock_hazard_reproduced(self):
        """The paper's fork1 pitfall: a held (private-memory) lock is
        copied in the held state, with no owner in the child."""
        a = fresh_aspace()
        base = a.sbrk(64)
        heap, off = a.resolve(base)
        heap.store_cell(off, 1)  # "locked" flag set by some thread
        child = a.fork_copy()
        cheap, coff = child.resolve(base)
        assert cheap.load_cell(coff) == 1  # locked, ownerless


class TestStats:
    def test_resident_pages_and_mapped_bytes(self):
        a = fresh_aspace()
        a.sbrk(PAGE_SIZE)
        assert a.resident_pages >= 1
        assert a.mapped_bytes >= PAGE_SIZE
