"""Tests for kernel signal delivery: handlers, masks, traps vs
interrupts, process pending, default actions, counted delivery."""

import pytest

from repro.errors import Errno, SyscallError
from repro.hw.isa import Charge, Syscall
from repro.kernel.signals import (SIG_BLOCK, SIG_DFL, SIG_IGN, SIG_UNBLOCK,
                                  Sig, Sigset)
from repro.runtime import unistd
from repro.sim.clock import usec
from tests.conftest import run_program


class TestHandlers:
    def test_handler_runs_on_kill(self):
        hits = []

        def handler(sig):
            hits.append(sig)
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            me = yield from unistd.getpid()
            yield from unistd.kill(me, int(Sig.SIGUSR1))
            yield from unistd.sleep_usec(100)

        run_program(main)
        assert hits == [int(Sig.SIGUSR1)]

    def test_handler_may_be_plain_function(self):
        hits = []

        def handler(sig):
            hits.append(sig)

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR2), handler)
            me = yield from unistd.getpid()
            yield from unistd.kill(me, int(Sig.SIGUSR2))
            yield from unistd.sleep_usec(100)

        run_program(main)
        assert hits == [int(Sig.SIGUSR2)]

    def test_sigaction_returns_previous(self):
        got = []

        def h1(sig):
            yield

        def main():
            old = yield from unistd.sigaction(int(Sig.SIGUSR1), h1)
            got.append(old)
            old = yield from unistd.sigaction(int(Sig.SIGUSR1), SIG_IGN)
            got.append(old)

        run_program(main)
        assert got == [SIG_DFL, h1]

    def test_ignored_signal_dropped(self):
        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), SIG_IGN)
            me = yield from unistd.getpid()
            yield from unistd.kill(me, int(Sig.SIGUSR1))
            yield from unistd.sleep_usec(100)

        sim, proc = run_program(main)
        assert proc.exit_status == 0

    def test_cannot_catch_sigkill(self):
        caught = []

        def main():
            try:
                yield from unistd.sigaction(int(Sig.SIGKILL), SIG_IGN)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EINVAL]


class TestDefaultActions:
    def test_sigterm_kills_process(self):
        def victim():
            yield from unistd.pause()

        def main():
            pid = yield from unistd.fork1(victim)
            yield from unistd.sleep_usec(1_000)
            yield from unistd.kill(pid, int(Sig.SIGTERM))
            got.append((yield from unistd.waitpid(pid)))

        got = []
        run_program(main)
        assert got[0][1] == 128 + int(Sig.SIGTERM)

    def test_sigkill_unconditional(self):
        def victim():
            # Even "catching" SIGKILL is impossible; it just dies.
            while True:
                yield Charge(usec(1_000))

        def main():
            pid = yield from unistd.fork1(victim)
            yield from unistd.sleep_usec(2_000)
            yield from unistd.kill(pid, int(Sig.SIGKILL))
            got.append((yield from unistd.waitpid(pid)))

        got = []
        run_program(main)
        assert got[0][1] == 128 + int(Sig.SIGKILL)

    def test_stop_and_continue(self):
        progress = []

        def victim():
            for i in range(20):
                yield Charge(usec(500))
                progress.append((yield from unistd.gettimeofday()))

        def main():
            pid = yield from unistd.fork1(victim)
            yield from unistd.sleep_usec(1_200)
            yield from unistd.kill(pid, int(Sig.SIGSTOP))
            yield from unistd.sleep_usec(20_000)   # stopped window
            yield from unistd.kill(pid, int(Sig.SIGCONT))
            yield from unistd.waitpid(pid)

        run_program(main, ncpus=2)
        gaps = [b - a for a, b in zip(progress, progress[1:])]
        # There must be one huge gap (the stopped window).
        assert max(gaps) >= usec(15_000)

    def test_sigchld_ignored_by_default(self):
        def kid():
            return
            yield

        def main():
            pid = yield from unistd.fork1(kid)
            yield from unistd.waitpid(pid)

        sim, proc = run_program(main)
        assert proc.exit_status == 0


class TestMasks:
    def test_masked_signal_pends_then_delivers(self):
        hits = []

        def handler(sig):
            hits.append("handled")
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            yield from unistd.sigprocmask(SIG_BLOCK,
                                          Sigset([Sig.SIGUSR1]))
            me = yield from unistd.getpid()
            yield from unistd.kill(me, int(Sig.SIGUSR1))
            yield from unistd.sleep_usec(500)
            hits.append("before-unmask")
            yield from unistd.sigprocmask(SIG_UNBLOCK,
                                          Sigset([Sig.SIGUSR1]))
            yield from unistd.sleep_usec(100)

        run_program(main)
        assert hits == ["before-unmask", "handled"]

    def test_sigprocmask_returns_old(self):
        got = []

        def main():
            old = yield from unistd.sigprocmask(
                SIG_BLOCK, Sigset([Sig.SIGUSR1]))
            got.append(Sig.SIGUSR1 in old)
            old = yield from unistd.sigprocmask(
                SIG_BLOCK, Sigset([Sig.SIGUSR2]))
            got.append(Sig.SIGUSR1 in old)

        run_program(main)
        assert got == [False, True]

    def test_sigpending_reports(self):
        got = []

        def handler(sig):
            yield

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            yield from unistd.sigprocmask(SIG_BLOCK,
                                          Sigset([Sig.SIGUSR1]))
            me = yield from unistd.getpid()
            yield from unistd.kill(me, int(Sig.SIGUSR1))
            yield from unistd.sleep_usec(100)
            pending = yield from unistd.syscall("sigpending")
            got.append(Sig.SIGUSR1 in pending)

        run_program(main)
        assert got == [True]

    def test_handler_masks_own_signal_during_run(self):
        order = []

        def handler(sig):
            order.append("enter")
            # Re-raising during the handler must not recurse.
            me = yield from unistd.getpid()
            yield from unistd.kill(me, int(Sig.SIGUSR1))
            yield Charge(usec(10))
            order.append("exit")

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            me = yield from unistd.getpid()
            yield from unistd.kill(me, int(Sig.SIGUSR1))
            yield from unistd.sleep_usec(1_000)

        run_program(main)
        # Second delivery happens only after the first handler returned.
        assert order[:2] == ["enter", "exit"]


class TestInterruption:
    def test_signal_interrupts_sleep_with_eintr(self):
        caught = []

        def handler(sig):
            yield Charge(usec(1))

        def sleeper():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            try:
                yield from unistd.nanosleep(usec(1_000_000))
            except SyscallError as err:
                caught.append(err.errno)

        def main():
            pid = yield from unistd.fork1(sleeper)
            yield from unistd.sleep_usec(5_000)
            yield from unistd.kill(pid, int(Sig.SIGUSR1))
            yield from unistd.waitpid(pid)

        run_program(main)
        assert caught == [Errno.EINTR]

    def test_pause_returns_on_signal(self):
        resumed = []

        def handler(sig):
            yield Charge(usec(1))

        def pauser():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            try:
                yield from unistd.pause()
            except SyscallError as err:
                resumed.append(err.errno)

        def main():
            pid = yield from unistd.fork1(pauser)
            yield from unistd.sleep_usec(5_000)
            yield from unistd.kill(pid, int(Sig.SIGUSR1))
            yield from unistd.waitpid(pid)

        run_program(main)
        assert resumed == [Errno.EINTR]

    def test_restart_handler_resumes_sleep(self):
        """SA_RESTART: the interrupted nanosleep completes in full."""
        hits = []
        got = {}

        def handler(sig):
            hits.append(sig)
            yield Charge(usec(1))

        def sleeper():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler,
                                        restart=True)
            t0 = yield from unistd.gettimeofday()
            yield from unistd.nanosleep(usec(50_000))
            t1 = yield from unistd.gettimeofday()
            got["slept_usec"] = (t1 - t0) / 1000

        def main():
            pid = yield from unistd.fork1(sleeper)
            yield from unistd.sleep_usec(10_000)
            yield from unistd.kill(pid, int(Sig.SIGUSR1))
            yield from unistd.waitpid(pid)

        run_program(main)
        assert hits  # the handler did run
        assert got["slept_usec"] >= 50_000  # and the sleep completed


class TestCountedDelivery:
    def test_delivered_never_exceeds_sent(self):
        """"the number of signals received by the process is less than or
        equal to the number sent"."""
        hits = []

        def handler(sig):
            hits.append(1)
            yield Charge(usec(5))

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            me = yield from unistd.getpid()
            for _ in range(5):
                yield from unistd.kill(me, int(Sig.SIGUSR1))
            yield from unistd.sleep_usec(5_000)

        sim, proc = run_program(main)
        sent = proc.signals.sent_count[Sig.SIGUSR1]
        delivered = proc.signals.delivered_count[Sig.SIGUSR1]
        assert sent == 5
        assert delivered <= sent
        assert len(hits) == delivered

    def test_kill_bad_pid_esrch(self):
        caught = []

        def main():
            try:
                yield from unistd.kill(999, int(Sig.SIGUSR1))
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.ESRCH]
