"""Behavioural scheduler tests: real-time latency, gang co-scheduling,
priority feedback over time."""

import pytest

from repro.api import Simulator
from repro.hw.isa import Charge, GetContext, Syscall
from repro.kernel.lwp import SchedClass
from repro.kernel.syscalls.lwp_calls import (PC_JOIN_GANG, PC_SETCLASS,
                                             PC_SETPRIO)
from repro.runtime import unistd
from repro.sim.clock import usec
from repro import threads
from tests.conftest import run_program


class TestRealTimeLatency:
    def test_rt_wakeup_preempts_ts_promptly(self):
        """An RT LWP waking from sleep lands on the CPU within the
        preemption machinery's latency, despite a TS hog."""
        got = {}

        def hog():
            yield Charge(usec(200_000))

        def rt_sleeper():
            yield Syscall("priocntl", PC_SETCLASS, 0,
                          SchedClass.REALTIME)
            t0 = yield from unistd.gettimeofday()
            yield from unistd.sleep_usec(10_000)
            t1 = yield from unistd.gettimeofday()
            got["latency_usec"] = (t1 - t0) / 1000 - 10_000

        sim = Simulator(ncpus=1)
        sim.spawn(hog)
        sim.spawn(rt_sleeper)
        sim.run()
        # Resumes within the dispatch machinery's latency of its wakeup,
        # preempting the hog rather than waiting out its 200ms charge.
        assert got["latency_usec"] < 1_000

    def test_rt_runs_to_completion_over_ts(self):
        order = []

        def rt_main():
            yield Syscall("priocntl", PC_SETCLASS, 0,
                          SchedClass.REALTIME)
            for _ in range(3):
                yield Charge(usec(15_000))  # longer than a TS quantum
            order.append("rt-done")

        def ts_main():
            yield Charge(usec(1_000))
            order.append("ts-done")

        sim = Simulator(ncpus=1)
        sim.spawn(rt_main)
        sim.spawn(ts_main)
        sim.run()
        assert order == ["rt-done", "ts-done"]

    def test_bound_rt_thread_via_library(self):
        """The paper's real-time recipe: bind a thread, set its LWP's
        class — all without leaving the threads model."""
        got = {}

        def rt_thread(_):
            yield Syscall("priocntl", PC_SETCLASS, 0,
                          SchedClass.REALTIME)
            yield Syscall("priocntl", PC_SETPRIO, 0, 50)
            me = yield from threads.current_thread()
            got["class"] = me.lwp.sched_class
            got["prio"] = me.lwp.priority

        def main():
            tid = yield from threads.thread_create(
                rt_thread, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got["class"] is SchedClass.REALTIME
        assert got["prio"] == 50


class TestGangScheduling:
    def test_gang_members_co_scheduled(self):
        """With 2 CPUs and a 2-member gang vs a TS background LWP, the
        gang's members overlap in time."""
        windows = {}

        def member(tag, gang_box):
            def main():
                while gang_box.get("gang") is None:
                    yield from unistd.sleep_usec(100)
                yield Syscall("priocntl", PC_JOIN_GANG, 0,
                              gang_box["gang"])
                t0 = yield from unistd.gettimeofday()
                yield Charge(usec(5_000))
                t1 = yield from unistd.gettimeofday()
                windows[tag] = (t0, t1)
            return main

        def leader(gang_box):
            def main():
                gang = yield Syscall("priocntl", PC_JOIN_GANG)
                gang_box["gang"] = gang
                yield Charge(usec(5_000))
            return main

        gang_box = {}
        sim = Simulator(ncpus=2)
        sim.spawn(leader(gang_box))
        sim.spawn(member("m", gang_box))
        sim.run()
        # The member overlapped the leader rather than running after it.
        assert "m" in windows

    def test_gang_members_listed(self):
        def main():
            gang = yield Syscall("priocntl", PC_JOIN_GANG)
            assert len(gang.members) == 1
            yield Syscall("priocntl", 6)  # PC_LEAVE_GANG
            assert len(gang.members) == 0

        run_program(main)


class TestPriorityFeedback:
    def test_cpu_hog_decays_interactive_recovers(self):
        """Classic timeshare feedback: after a long run, the hog's
        priority is below an LWP that slept a lot."""
        got = {}

        def hog():
            yield Charge(usec(100_000))
            ctx = yield GetContext()
            got["hog_prio"] = ctx.lwp.priority

        def sleeper():
            for _ in range(5):
                yield from unistd.sleep_usec(10_000)
                yield Charge(usec(100))
            ctx = yield GetContext()
            got["sleeper_prio"] = ctx.lwp.priority

        sim = Simulator(ncpus=1)
        sim.spawn(hog)
        sim.spawn(sleeper)
        sim.run()
        assert got["hog_prio"] < 30           # decayed
        assert got["sleeper_prio"] >= 30      # held or recovered

    def test_preemption_counter_advances(self):
        def burner():
            yield Charge(usec(50_000))

        sim = Simulator(ncpus=1)
        sim.spawn(burner)
        sim.spawn(burner)
        sim.run()
        assert sim.kernel.dispatcher.preemptions >= 1
