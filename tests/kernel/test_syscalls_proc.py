"""Tests for process lifecycle syscalls: fork, fork1, exec, exit, wait,
and the single-uid-per-process rule."""

import pytest

from repro.errors import Errno, SyscallError
from repro.hw.isa import Charge, Syscall
from repro.kernel.process import ProcState
from repro.runtime import unistd
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


class TestIdentity:
    def test_getpid_getppid(self):
        got = {}

        def child():
            got["child_pid"] = yield from unistd.getpid()
            got["child_ppid"] = yield from unistd.getppid()

        def main():
            got["pid"] = yield from unistd.getpid()
            cpid = yield from unistd.fork1(child)
            got["fork_ret"] = cpid
            yield from unistd.waitpid(cpid)

        run_program(main)
        assert got["fork_ret"] == got["child_pid"]
        assert got["child_ppid"] == got["pid"]

    def test_setuid_affects_whole_process(self):
        """"There is only one set of user and group IDs for each
        process."""
        got = []

        def main():
            yield from unistd.syscall("setuid", 7)

            def peeker(_):
                got.append((yield from unistd.syscall("getuid")))

            tid = yield from threads.thread_create(
                peeker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == [7]

    def test_unprivileged_setuid_rejected(self):
        caught = []

        def main():
            yield from unistd.syscall("setuid", 7)
            try:
                yield from unistd.syscall("setuid", 0)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EPERM]


class TestForkSemantics:
    def test_fork1_creates_single_lwp_child(self):
        got = {}

        def child():
            ctx = yield from _ctx()
            got["child_lwps"] = len(ctx.process.live_lwps())

        def main():
            # Grow this process to 3 LWPs first.
            yield from threads.thread_setconcurrency(3)
            pid = yield from unistd.fork1(child)
            yield from unistd.waitpid(pid)

        run_program(main)
        assert got["child_lwps"] == 1

    def test_fork_duplicates_lwp_count(self):
        """"fork() ... creates the same LWPs in the same states"
        (our substitution: same count, available in the child's pool)."""
        got = {}

        def child():
            ctx = yield from _ctx()
            got["child_lwps"] = len(ctx.process.live_lwps())

        def main():
            yield from threads.thread_setconcurrency(3)
            pid = yield from unistd.fork(child)
            yield from unistd.waitpid(pid)

        run_program(main, ncpus=2)
        assert got["child_lwps"] == 3

    def test_fork_costs_more_than_fork1(self):
        """The reason fork1 exists: full fork pays per-LWP duplication."""
        times = {}

        def child():
            return
            yield

        def make(key, call):
            def main():
                yield from threads.thread_setconcurrency(6)
                t0 = yield from unistd.gettimeofday()
                pid = yield from call(child)
                t1 = yield from unistd.gettimeofday()
                times[key] = t1 - t0
                yield from unistd.waitpid(pid)
            return main

        run_program(make("fork", unistd.fork))
        run_program(make("fork1", unistd.fork1))
        assert times["fork"] > times["fork1"]

    def test_child_address_space_is_snapshot(self):
        got = {}
        shared_box = {"value": "parent"}

        def child():
            # Python-level state is shared between simulated processes in
            # our model only through explicit shared memory; closures act
            # as the *copied* address space here, so mutate via sbrk heap.
            ctx = yield from _ctx()
            heap, off = ctx.process.aspace.resolve(
                ctx.process.aspace.HEAP_BASE)
            got["child_sees"] = heap.load_cell(off)
            heap.store_cell(off, "child-wrote")

        def main():
            ctx = yield from _ctx()
            base = ctx.process.aspace.sbrk(64)
            heap, off = ctx.process.aspace.resolve(base)
            heap.store_cell(off, "parent-wrote")
            pid = yield from unistd.fork1(child)
            yield from unistd.waitpid(pid)
            got["parent_sees"] = heap.load_cell(off)

        run_program(main)
        assert got["child_sees"] == "parent-wrote"
        assert got["parent_sees"] == "parent-wrote"  # isolated from child

    def test_fork_interrupts_other_lwps_syscalls(self):
        """"Calling fork() may cause interruptible system calls to return
        EINTR when the calls are made by any LWP (thread) other than the
        one calling fork()."""
        caught = []

        def sleeper(_):
            try:
                yield from unistd.nanosleep(usec(1_000_000))
            except SyscallError as err:
                caught.append(err.errno)

        def child():
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                sleeper, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from unistd.sleep_usec(1_000)
            pid = yield from unistd.fork(child)
            yield from unistd.waitpid(pid)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert caught == [Errno.EINTR]

    def test_fd_shared_offset_across_fork(self):
        got = []

        def child():
            # Inherited descriptor: same open-file object, same offset.
            data = yield from unistd.read(0, 3)
            got.append(("child", data))

        def main():
            from repro.kernel.fs.file import O_CREAT, O_RDWR
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            assert fd == 0
            yield from unistd.write(fd, b"abcdef")
            yield from unistd.lseek(fd, 0)
            pid = yield from unistd.fork1(child)
            yield from unistd.waitpid(pid)
            got.append(("parent", (yield from unistd.read(fd, 3))))

        run_program(main)
        assert got == [("child", b"abc"), ("parent", b"def")]


class TestExit:
    def test_exit_status_propagates(self):
        got = []

        def child():
            yield from unistd.exit(42)

        def main():
            pid = yield from unistd.fork1(child)
            got.append((yield from unistd.waitpid(pid)))

        run_program(main)
        assert got[0][1] == 42

    def test_exit_destroys_all_lwps(self):
        def spinner(_):
            while True:
                yield Charge(usec(100))
                yield from threads.thread_yield()

        def main():
            yield from threads.thread_create(
                spinner, None, flags=threads.THREAD_BIND_LWP)
            yield from unistd.sleep_usec(500)
            yield from unistd.exit(0)

        sim, proc = run_program(main)
        assert proc.state in (ProcState.ZOMBIE, ProcState.REAPED)
        assert not proc.live_lwps()

    def test_waitpid_wnohang(self):
        got = []

        def kid():
            yield from unistd.sleep_usec(20_000)
            yield from unistd.exit(5)

        def main():
            pid = yield from unistd.fork1(kid)
            # Child still running: WNOHANG returns (0, 0) immediately.
            got.append((yield from unistd.waitpid(pid, nohang=True)))
            yield from unistd.sleep_usec(50_000)
            got.append((yield from unistd.waitpid(pid, nohang=True)))

        run_program(main)
        assert got[0] == (0, 0)
        assert got[1][1] == 5

    def test_waitpid_no_children_echild(self):
        caught = []

        def main():
            try:
                yield from unistd.waitpid(-1)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.ECHILD]

    def test_waitpid_specific_child(self):
        got = []

        def kid(tag):
            yield from unistd.exit(tag)

        def main():
            pid1 = yield from unistd.fork1(kid, 1)
            pid2 = yield from unistd.fork1(kid, 2)
            got.append((yield from unistd.waitpid(pid2)))
            got.append((yield from unistd.waitpid(pid1)))

        run_program(main)
        assert got[0] == (got[0][0], 2)
        assert got[1] == (got[1][0], 1)

    def test_child_rusage_rolled_into_parent(self):
        got = {}

        def kid():
            yield Charge(usec(5_000))

        def main():
            pid = yield from unistd.fork1(kid)
            yield from unistd.waitpid(pid)
            got["children"] = yield from unistd.getrusage(-1)

        run_program(main)
        assert got["children"]["user_ns"] >= usec(5_000)


class TestExec:
    def test_exec_replaces_image_with_single_lwp(self):
        got = {}

        def new_image():
            ctx = yield from _ctx()
            got["lwps_after_exec"] = len(ctx.process.live_lwps())
            got["threads_after"] = len(
                ctx.process.threadlib.all_threads())

        def main():
            yield from threads.thread_setconcurrency(4)
            yield from unistd.exec_image(new_image)

        run_program(main)
        assert got["lwps_after_exec"] == 1
        assert got["threads_after"] == 1

    def test_exec_keeps_pid(self):
        got = {}

        def new_image():
            got["after"] = yield from unistd.getpid()

        def main():
            got["before"] = yield from unistd.getpid()
            yield from unistd.exec_image(new_image)

        run_program(main)
        assert got["before"] == got["after"]


def _ctx():
    from repro.hw.isa import GetContext
    ctx = yield GetContext()
    return ctx
