"""Tests for signal sets, actions, and classification."""

import pytest

from repro.kernel.signals import (DEFAULT_DISPOSITION, SIG_BLOCK, SIG_DFL,
                                  SIG_IGN, SIG_SETMASK, SIG_UNBLOCK,
                                  TRAP_SIGNALS, Disposition, Sig, SigAction,
                                  SignalState, Sigset, is_trap)


class TestClassification:
    def test_traps_are_synchronous_faults(self):
        assert is_trap(Sig.SIGSEGV)
        assert is_trap(Sig.SIGFPE)
        assert is_trap(Sig.SIGILL)

    def test_interrupts_are_asynchronous(self):
        assert not is_trap(Sig.SIGINT)
        assert not is_trap(Sig.SIGIO)
        assert not is_trap(Sig.SIGWAITING)

    def test_sigwaiting_default_ignored(self):
        """Paper: "The default handling for SIGWAITING is to ignore it."""
        assert DEFAULT_DISPOSITION[Sig.SIGWAITING] is Disposition.IGNORE

    def test_every_signal_has_a_disposition(self):
        for sig in Sig:
            assert sig in DEFAULT_DISPOSITION


class TestSigset:
    def test_empty_contains_nothing(self):
        ss = Sigset()
        assert Sig.SIGINT not in ss
        assert not ss

    def test_add_discard(self):
        ss = Sigset()
        ss.add(Sig.SIGINT)
        assert Sig.SIGINT in ss
        ss.discard(Sig.SIGINT)
        assert Sig.SIGINT not in ss

    def test_construct_from_iterable(self):
        ss = Sigset([Sig.SIGINT, Sig.SIGTERM])
        assert Sig.SIGINT in ss and Sig.SIGTERM in ss

    def test_copy_is_independent(self):
        a = Sigset([Sig.SIGINT])
        b = a.copy()
        b.add(Sig.SIGTERM)
        assert Sig.SIGTERM not in a

    def test_union_difference(self):
        a = Sigset([Sig.SIGINT])
        b = Sigset([Sig.SIGTERM])
        u = a.union(b)
        assert Sig.SIGINT in u and Sig.SIGTERM in u
        d = u.difference(a)
        assert Sig.SIGINT not in d and Sig.SIGTERM in d

    def test_full_excludes_unblockable(self):
        full = Sigset.full()
        assert Sig.SIGKILL not in full
        assert Sig.SIGSTOP not in full
        assert Sig.SIGINT in full

    def test_apply_block(self):
        base = Sigset([Sig.SIGINT])
        new = base.apply(SIG_BLOCK, Sigset([Sig.SIGTERM]))
        assert Sig.SIGINT in new and Sig.SIGTERM in new

    def test_apply_unblock(self):
        base = Sigset([Sig.SIGINT, Sig.SIGTERM])
        new = base.apply(SIG_UNBLOCK, Sigset([Sig.SIGINT]))
        assert Sig.SIGINT not in new and Sig.SIGTERM in new

    def test_apply_setmask(self):
        base = Sigset([Sig.SIGINT])
        new = base.apply(SIG_SETMASK, Sigset([Sig.SIGTERM]))
        assert Sig.SIGINT not in new and Sig.SIGTERM in new

    def test_apply_never_blocks_kill(self):
        new = Sigset().apply(SIG_BLOCK, Sigset([Sig.SIGKILL, Sig.SIGINT]))
        assert Sig.SIGKILL not in new
        assert Sig.SIGINT in new

    def test_apply_bad_how(self):
        with pytest.raises(ValueError):
            Sigset().apply(99, Sigset())

    def test_signals_sorted(self):
        ss = Sigset([Sig.SIGTERM, Sig.SIGHUP])
        assert ss.signals() == [Sig.SIGHUP, Sig.SIGTERM]

    def test_equality(self):
        assert Sigset([Sig.SIGINT]) == Sigset([Sig.SIGINT])
        assert Sigset([Sig.SIGINT]) != Sigset()


class TestSignalState:
    def test_default_actions(self):
        st = SignalState()
        assert st.action(Sig.SIGINT).is_default()
        assert st.disposition(Sig.SIGINT) is Disposition.EXIT
        assert st.disposition(Sig.SIGSEGV) is Disposition.CORE

    def test_install_handler(self):
        st = SignalState()

        def handler(sig):
            yield

        old = st.set_action(Sig.SIGINT, handler)
        assert old.handler == SIG_DFL
        assert st.action(Sig.SIGINT).is_caught()

    def test_ignore_disposition(self):
        st = SignalState()
        st.set_action(Sig.SIGINT, SIG_IGN)
        assert st.disposition(Sig.SIGINT) is Disposition.IGNORE

    def test_sigkill_cannot_be_caught(self):
        st = SignalState()
        with pytest.raises(ValueError):
            st.set_action(Sig.SIGKILL, SIG_IGN)

    def test_fork_copy_keeps_handlers_drops_pending(self):
        st = SignalState()
        st.set_action(Sig.SIGUSR1, SIG_IGN)
        st.pending.add(Sig.SIGTERM)
        child = st.fork_copy()
        assert child.action(Sig.SIGUSR1).is_ignore()
        assert Sig.SIGTERM not in child.pending

    def test_fork_copy_keeps_restart_flag(self):
        st = SignalState()

        def handler(sig):
            yield

        st.set_action(Sig.SIGUSR1, handler, restart=True)
        assert st.fork_copy().action(Sig.SIGUSR1).restart

    def test_restart_default_false(self):
        assert not SigAction().restart
