"""Tests for the in-memory VFS."""

import pytest

from repro.errors import Errno, SyscallError
from repro.hw.memory import PhysicalMemory
from repro.kernel.fs.vfs import (Directory, Fifo, NullDevice, RegularFile,
                                 TtyDevice, Vfs)


@pytest.fixture
def vfs():
    return Vfs(PhysicalMemory())


class TestLookup:
    def test_root(self, vfs):
        assert vfs.lookup("/") is vfs.root

    def test_standard_nodes(self, vfs):
        assert isinstance(vfs.lookup("/dev/tty"), TtyDevice)
        assert isinstance(vfs.lookup("/dev/null"), NullDevice)
        assert isinstance(vfs.lookup("/tmp"), Directory)

    def test_missing_raises_enoent(self, vfs):
        with pytest.raises(SyscallError) as exc:
            vfs.lookup("/nope")
        assert exc.value.errno == Errno.ENOENT

    def test_file_as_directory_raises_enotdir(self, vfs):
        vfs.create_file("/tmp/f")
        with pytest.raises(SyscallError) as exc:
            vfs.lookup("/tmp/f/deeper")
        assert exc.value.errno == Errno.ENOTDIR

    def test_relative_lookup_uses_cwd(self, vfs):
        tmp = vfs.lookup("/tmp")
        vfs.create_file("/tmp/rel")
        assert vfs.lookup("rel", cwd=tmp).name == "rel"

    def test_dot_segments_ignored(self, vfs):
        assert vfs.lookup("/./tmp/.") is vfs.lookup("/tmp")


class TestCreate:
    def test_create_file(self, vfs):
        node = vfs.create_file("/tmp/a")
        assert isinstance(node, RegularFile)
        assert vfs.lookup("/tmp/a") is node

    def test_create_existing_file_returns_it(self, vfs):
        a = vfs.create_file("/tmp/a")
        assert vfs.create_file("/tmp/a") is a

    def test_create_over_directory_raises(self, vfs):
        vfs.mkdir("/tmp/d")
        with pytest.raises(SyscallError) as exc:
            vfs.create_file("/tmp/d")
        assert exc.value.errno == Errno.EEXIST

    def test_mkdir_nested(self, vfs):
        vfs.mkdir("/a")
        vfs.mkdir("/a/b")
        assert isinstance(vfs.lookup("/a/b"), Directory)

    def test_mkdir_duplicate_raises(self, vfs):
        vfs.mkdir("/a")
        with pytest.raises(SyscallError):
            vfs.mkdir("/a")

    def test_mkfifo(self, vfs):
        node = vfs.mkfifo("/tmp/pipe")
        assert isinstance(node, Fifo)

    def test_unlink(self, vfs):
        vfs.create_file("/tmp/x")
        vfs.unlink("/tmp/x")
        with pytest.raises(SyscallError):
            vfs.lookup("/tmp/x")

    def test_unlink_missing(self, vfs):
        with pytest.raises(SyscallError):
            vfs.unlink("/tmp/ghost")


class TestRegularFile:
    def test_backed_by_memory_object(self, vfs):
        """Files are mappable memory objects — the basis of sync variables
        in files outliving processes."""
        node = vfs.create_file("/tmp/db")
        node.mobj.store_cell(0, "lock-state")
        again = vfs.lookup("/tmp/db")
        assert again.mobj.load_cell(0) == "lock-state"

    def test_read_write_at(self, vfs):
        node = vfs.create_file("/tmp/f")
        node.write_at(0, b"hello")
        assert node.read_at(0, 5) == b"hello"
        assert node.size() == 5

    def test_read_past_eof_empty(self, vfs):
        node = vfs.create_file("/tmp/f")
        assert node.read_at(100, 10) == b""

    def test_truncate_shrinks_and_grows(self, vfs):
        node = vfs.create_file("/tmp/f")
        node.write_at(0, b"abcdef")
        node.truncate(3)
        assert node.size() == 3
        node.truncate(10)
        assert node.size() == 10
        assert node.read_at(3, 7) == b"\x00" * 7


class TestDevices:
    def test_tty_input_buffering(self, vfs):
        tty = vfs.lookup("/dev/tty")
        tty.push_input(b"hi")
        assert bytes(tty.input_buffer) == b"hi"

    def test_inode_numbers_unique(self, vfs):
        a = vfs.create_file("/tmp/a")
        b = vfs.create_file("/tmp/b")
        assert a.ino != b.ino

    def test_kinds(self, vfs):
        assert vfs.lookup("/dev/tty").kind == "tty"
        assert vfs.lookup("/dev/null").kind == "null"
        assert vfs.lookup("/tmp").kind == "dir"
        assert vfs.create_file("/tmp/f").kind == "file"
        assert vfs.mkfifo("/tmp/p").kind == "fifo"
