"""Socket syscall semantics (repro.kernel.net + net_calls).

BSD stream-socket behavior, loopback-only: handshakes complete on the
backlog, EOF is an empty read, RST surfaces as ECONNRESET, and a send
into a closed peer is SIGPIPE-then-EPIPE.  Everything here runs threads
of one process talking to themselves — the network is a kernel-global
port namespace, not an interface.
"""

import pytest

from repro.errors import Errno, SyscallError
from repro.kernel.fs.file import O_NONBLOCK
from repro.kernel.signals import SIG_IGN, Sig
from repro.runtime import unistd
from repro.threads import api as threads
from tests.conftest import run_program

PORT = 5000


def _listener(port=PORT, backlog=4):
    lfd = yield from unistd.socket()
    yield from unistd.bind(lfd, port)
    yield from unistd.listen(lfd, backlog)
    return lfd


class TestHandshake:
    def test_connect_send_accept_recv_round_trip(self):
        got = {}

        def main():
            lfd = yield from _listener()

            def client(_):
                fd = yield from unistd.socket()
                yield from unistd.connect(fd, PORT)
                yield from unistd.send(fd, b"ping")
                got["reply"] = yield from unistd.recv(fd, 16)
                yield from unistd.close(fd)

            tid = yield from threads.thread_create(
                client, None, flags=threads.THREAD_WAIT)
            conn = yield from unistd.accept(lfd)
            got["req"] = yield from unistd.recv(conn, 16)
            yield from unistd.send(conn, b"pong")
            yield from threads.thread_wait(tid)
            yield from unistd.close(conn)
            yield from unistd.close(lfd)

        run_program(main)
        assert got == {"req": b"ping", "reply": b"pong"}

    def test_connect_completes_before_accept(self):
        # BSD semantics: the handshake finishes on the backlog; the
        # client may send before the server ever calls accept.
        got = {}

        def main():
            lfd = yield from _listener()
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            yield from unistd.send(fd, b"early")
            conn = yield from unistd.accept(lfd)
            got["data"] = yield from unistd.recv(conn, 16)

        run_program(main)
        assert got["data"] == b"early"

    def test_bind_in_use_raises_eaddrinuse(self):
        def main():
            yield from _listener()
            fd = yield from unistd.socket()
            with pytest.raises(SyscallError) as exc:
                yield from unistd.bind(fd, PORT)
            assert exc.value.errno == Errno.EADDRINUSE

        run_program(main)

    def test_connect_no_listener_refused(self):
        def main():
            fd = yield from unistd.socket()
            with pytest.raises(SyscallError) as exc:
                yield from unistd.connect(fd, 4999)
            assert exc.value.errno == Errno.ECONNREFUSED

        run_program(main)

    def test_backlog_overflow_refuses_and_counts(self):
        refused = []

        def main():
            yield from _listener(backlog=2)
            for _ in range(4):
                fd = yield from unistd.socket()
                try:
                    yield from unistd.connect(fd, PORT)
                except SyscallError as err:
                    assert err.errno == Errno.ECONNREFUSED
                    refused.append(fd)

        sim, _ = run_program(main)
        assert len(refused) == 2
        assert sim.kernel.net.backlog_drops == 2


class TestTeardown:
    def test_clean_close_is_eof(self):
        got = {}

        def main():
            lfd = yield from _listener()
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            conn = yield from unistd.accept(lfd)
            yield from unistd.send(conn, b"bye")
            yield from unistd.close(conn)
            got["data"] = yield from unistd.recv(fd, 16)
            got["eof"] = yield from unistd.recv(fd, 16)

        run_program(main)
        assert got == {"data": b"bye", "eof": b""}

    def test_close_with_unread_data_resets_peer(self):
        def main():
            lfd = yield from _listener()
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            conn = yield from unistd.accept(lfd)
            yield from unistd.send(fd, b"unread")
            # conn still has 6 buffered bytes: closing answers with RST.
            yield from unistd.close(conn)
            with pytest.raises(SyscallError) as exc:
                yield from unistd.recv(fd, 16)
            assert exc.value.errno == Errno.ECONNRESET

        sim, _ = run_program(main)
        assert sim.kernel.net.resets == 1

    def test_send_to_closed_peer_is_epipe_after_sigpipe(self):
        def main():
            yield from unistd.sigaction(int(Sig.SIGPIPE), SIG_IGN)
            lfd = yield from _listener()
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            conn = yield from unistd.accept(lfd)
            yield from unistd.close(conn)
            with pytest.raises(SyscallError) as exc:
                yield from unistd.send(fd, b"into the void")
            assert exc.value.errno == Errno.EPIPE

        run_program(main)

    def test_sigpipe_default_kills_the_process(self):
        # Without SIG_IGN the same send never returns: SIGPIPE's default
        # disposition terminates the process mid-syscall.
        reached = []

        def main():
            lfd = yield from _listener()
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            conn = yield from unistd.accept(lfd)
            yield from unistd.close(conn)
            try:
                yield from unistd.send(fd, b"x")
            finally:
                reached.append(True)

        sim, proc = run_program(main)
        assert not reached
        assert proc.exit_status == 128 + int(Sig.SIGPIPE)

    def test_closing_listener_aborts_pending_accept(self):
        got = {}

        def main():
            lfd = yield from _listener()

            def acceptor(_):
                try:
                    yield from unistd.accept(lfd)
                except SyscallError as err:
                    got["errno"] = err.errno

            # Bound: the acceptor must actually be parked inside
            # accept() (on its own LWP) when the listener goes away.
            tid = yield from threads.thread_create(
                acceptor, None,
                flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)
            yield from unistd.sleep_usec(500.0)
            yield from unistd.close(lfd)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got["errno"] == Errno.ECONNABORTED


class TestNonBlockingAndSelect:
    def test_nonblock_accept_and_recv_eagain(self):
        def main():
            lfd = yield from unistd.socket(O_NONBLOCK)
            yield from unistd.bind(lfd, PORT)
            yield from unistd.listen(lfd, 4)
            with pytest.raises(SyscallError) as exc:
                yield from unistd.accept(lfd)
            assert exc.value.errno == Errno.EAGAIN

            fd = yield from unistd.socket(O_NONBLOCK)
            yield from unistd.connect(fd, PORT)
            with pytest.raises(SyscallError) as exc:
                yield from unistd.recv(fd, 16)
            assert exc.value.errno == Errno.EAGAIN

        run_program(main)

    def test_select_sees_socket_readiness(self):
        got = {}

        def main():
            lfd = yield from _listener()
            ready = yield from unistd.select([lfd], timeout_ns=1000)
            got["idle"] = list(ready)
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            ready = yield from unistd.select([lfd], timeout_ns=1000)
            got["pending"] = list(ready)
            conn = yield from unistd.accept(lfd)
            yield from unistd.send(fd, b"hi")
            ready = yield from unistd.select([conn], timeout_ns=1000)
            got["readable"] = list(ready)

        run_program(main)
        assert got["idle"] == []
        assert got["pending"] != []
        assert got["readable"] != []

    def test_shutdown_write_delivers_eof_not_reset(self):
        got = {}

        def main():
            lfd = yield from _listener()
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, PORT)
            conn = yield from unistd.accept(lfd)
            yield from unistd.send(fd, b"last")
            yield from unistd.shutdown(fd)   # SHUT_WR
            got["data"] = yield from unistd.recv(conn, 16)
            got["eof"] = yield from unistd.recv(conn, 16)
            # The other direction still works.
            yield from unistd.send(conn, b"back")
            got["reply"] = yield from unistd.recv(fd, 16)

        run_program(main)
        assert got == {"data": b"last", "eof": b"", "reply": b"back"}
