"""Tests for time, interval timers, resource usage/limits, profiling,
poll, and uname."""

import pytest

from repro.errors import Errno, SyscallError
from repro.hw.isa import Charge, Syscall
from repro.kernel.signals import Sig
from repro.kernel.syscalls.misc_calls import (RLIMIT_CPU, RLIMIT_FSIZE,
                                              RUSAGE_LWP, RUSAGE_SELF)
from repro.kernel.syscalls.time_calls import (ITIMER_PROF, ITIMER_REAL,
                                              ITIMER_VIRTUAL)
from repro.runtime import unistd
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


class TestTime:
    def test_gettimeofday_monotonic(self):
        got = []

        def main():
            got.append((yield from unistd.gettimeofday()))
            yield Charge(usec(100))
            got.append((yield from unistd.gettimeofday()))

        run_program(main)
        assert got[1] >= got[0] + usec(100)

    def test_nanosleep_duration(self):
        got = []

        def main():
            t0 = yield from unistd.gettimeofday()
            yield from unistd.nanosleep(usec(12_345))
            t1 = yield from unistd.gettimeofday()
            got.append(t1 - t0)

        run_program(main)
        assert got[0] >= usec(12_345)

    def test_negative_nanosleep_rejected(self):
        caught = []

        def main():
            try:
                yield from unistd.nanosleep(-1)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EINVAL]


class TestIntervalTimers:
    def test_real_timer_sends_sigalrm(self):
        hits = []

        def handler(sig):
            hits.append("alarm")
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGALRM), handler)
            yield from unistd.setitimer(ITIMER_REAL, usec(5_000))
            yield from unistd.sleep_usec(10_000)

        run_program(main)
        assert hits == ["alarm"]

    def test_real_timer_is_per_process(self):
        """"There is only one real-time interval timer per process":
        rearming replaces the previous timer."""
        hits = []

        def handler(sig):
            hits.append(1)
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGALRM), handler)
            yield from unistd.setitimer(ITIMER_REAL, usec(50_000))
            yield from unistd.setitimer(ITIMER_REAL, usec(5_000))
            yield from unistd.sleep_usec(100_000)

        run_program(main)
        assert len(hits) == 1

    def test_virtual_timer_counts_user_time_only(self):
        """ITIMER_VIRTUAL decrements only in LWP user time: sleeping does
        not advance it."""
        hits = []

        def handler(sig):
            hits.append("vtalrm")
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGVTALRM), handler)
            yield from unistd.setitimer(ITIMER_VIRTUAL, usec(3_000))
            yield from unistd.sleep_usec(50_000)  # wall time, no user time
            assert hits == []
            yield Charge(usec(5_000))  # now burn user CPU
            yield from unistd.sleep_usec(100)

        run_program(main)
        assert hits == ["vtalrm"]

    def test_virtual_timer_is_per_lwp(self):
        """Another bound thread's CPU burn must not expire my timer."""
        hits = []

        def handler(sig):
            hits.append("fired")
            yield Charge(usec(1))

        def burner(_):
            yield Charge(usec(20_000))

        def main():
            yield from unistd.sigaction(int(Sig.SIGVTALRM), handler)
            yield from unistd.setitimer(ITIMER_VIRTUAL, usec(5_000))
            tid = yield from threads.thread_create(
                burner, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert hits == []  # only the *other* LWP burned CPU

    def test_prof_timer_counts_system_time_too(self):
        hits = []

        def handler(sig):
            hits.append("prof")
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGPROF), handler)
            yield from unistd.setitimer(ITIMER_PROF, usec(500))
            # System time from repeated syscalls should expire it.
            for _ in range(30):
                yield from unistd.getpid()
            yield Charge(usec(1_000))
            yield from unistd.getpid()

        run_program(main)
        assert hits == ["prof"]

    def test_alarm_wrapper(self):
        hits = []

        def handler(sig):
            hits.append(1)
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGALRM), handler)
            yield from unistd.alarm(0.01)  # 10 ms
            yield from unistd.sleep_usec(20_000)

        run_program(main)
        assert hits == [1]


class TestRusage:
    def test_rusage_self_sums_lwps(self):
        got = {}

        def burner(_):
            yield Charge(usec(4_000))

        def main():
            yield Charge(usec(2_000))
            tid = yield from threads.thread_create(
                burner, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)
            got["self"] = yield from unistd.getrusage(RUSAGE_SELF)

        run_program(main, ncpus=2)
        assert got["self"]["user_ns"] >= usec(6_000)

    def test_rusage_lwp_is_narrower(self):
        got = {}

        def burner(_):
            yield Charge(usec(4_000))

        def main():
            yield Charge(usec(1_000))
            tid = yield from threads.thread_create(
                burner, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)
            got["lwp"] = yield from unistd.getrusage(RUSAGE_LWP)
            got["self"] = yield from unistd.getrusage(RUSAGE_SELF)

        run_program(main, ncpus=2)
        assert got["lwp"]["total_ns"] < got["self"]["total_ns"]


class TestRlimits:
    def test_cpu_limit_sends_sigxcpu(self):
        hits = []

        def handler(sig):
            hits.append("xcpu")
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGXCPU), handler)
            yield from unistd.setrlimit(RLIMIT_CPU, usec(2_000))
            yield Charge(usec(10_000))
            yield from unistd.getpid()  # delivery point

        run_program(main)
        assert hits == ["xcpu"]

    def test_fsize_limit_sends_sigxfsz_and_fails_write(self):
        from repro.kernel.fs.file import O_CREAT, O_RDWR
        hits = []
        caught = []

        def handler(sig):
            hits.append("xfsz")
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGXFSZ), handler)
            yield from unistd.setrlimit(RLIMIT_FSIZE, 4)
            fd = yield from unistd.open("/tmp/f", O_CREAT | O_RDWR)
            try:
                yield from unistd.write(fd, b"too big for limit")
            except SyscallError as err:
                caught.append(err.errno)
            yield from unistd.sleep_usec(100)

        run_program(main)
        assert caught == [Errno.ENOSPC]
        assert hits == ["xfsz"]

    def test_getrlimit_roundtrip(self):
        got = []

        def main():
            # Large enough that it is not consumed (and auto-cleared)
            # during the test itself.
            yield from unistd.setrlimit(RLIMIT_CPU, usec(10 ** 9))
            got.append((yield from unistd.getrlimit(RLIMIT_CPU)))

        run_program(main)
        assert got == [usec(10 ** 9)]


class TestProfiling:
    def test_profiling_accumulates_user_time(self):
        got = {}

        def main():
            buf = yield from unistd.profil()
            yield Charge(usec(3_000))
            got["buf"] = buf

        run_program(main)
        assert got["buf"].total_ns >= usec(3_000)

    def test_shared_buffer_accumulates_both_lwps(self):
        got = {}

        def burner(buf):
            yield from unistd.profil(buf)
            yield Charge(usec(2_000))

        def main():
            buf = yield from unistd.profil()
            yield Charge(usec(2_000))
            tid = yield from threads.thread_create(
                burner, buf,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)
            got["buf"] = buf

        run_program(main, ncpus=2)
        assert got["buf"].total_ns >= usec(4_000)

    def test_disable(self):
        got = {}

        def main():
            buf = yield from unistd.profil()
            yield Charge(usec(1_000))
            before = buf.total_ns
            yield from unistd.profil(enable=False)
            yield Charge(usec(1_000))
            got["delta"] = buf.total_ns - before

        run_program(main)
        assert got["delta"] == 0


class TestPollYieldUname:
    def test_poll_waits_for_tty_input(self):
        from repro.kernel.fs.file import O_RDONLY
        got = []

        def main():
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            got.append((yield from unistd.poll(fd)))

        from repro.api import Simulator
        sim = Simulator()
        sim.spawn(main)
        sim.type_input(b"x", at_usec=3_000)
        sim.run()
        assert got == [1]
        assert sim.now_usec >= 3_000

    def test_uname_reports_ncpus(self):
        got = []

        def main():
            got.append((yield from unistd.uname()))

        run_program(main, ncpus=3)
        assert got[0]["ncpus"] == 3
        assert "SunOS" in got[0]["sysname"]

    def test_sched_yield_is_harmless_alone(self):
        def main():
            yield from unistd.sched_yield()

        sim, proc = run_program(main)
        assert proc.exit_status == 0
