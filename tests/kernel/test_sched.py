"""Tests for the run queue, scheduling classes, and dispatcher policy."""

import pytest

from repro.api import Simulator
from repro.hw.isa import Charge, Syscall
from repro.kernel.lwp import PRIO_MAX, PRIO_MIN, SchedClass
from repro.kernel.sched import classes
from repro.kernel.sched.runqueue import RunQueue
from repro.kernel.syscalls.lwp_calls import (PC_BIND_CPU, PC_GETPARMS,
                                             PC_JOIN_GANG, PC_SETCLASS,
                                             PC_SETPRIO, PC_UNBIND)
from repro.sim.clock import usec
from tests.conftest import run_program


class FakeLwp:
    """Just enough LWP for run-queue unit tests."""

    def __init__(self, prio, name="x"):
        self.effective_priority = prio
        self.bound_cpu = None
        self.name = name


class TestRunQueue:
    def test_picks_highest_priority(self):
        q = RunQueue()
        low, high = FakeLwp(10), FakeLwp(50)
        q.insert(low)
        q.insert(high)
        assert q.pick(lambda l: True) is high

    def test_fifo_within_priority(self):
        q = RunQueue()
        a, b = FakeLwp(10, "a"), FakeLwp(10, "b")
        q.insert(a)
        q.insert(b)
        assert q.pick(lambda l: True) is a
        assert q.pick(lambda l: True) is b

    def test_front_insert(self):
        q = RunQueue()
        a, b = FakeLwp(10), FakeLwp(10)
        q.insert(a)
        q.insert(b, front=True)
        assert q.pick(lambda l: True) is b

    def test_eligibility_filter(self):
        q = RunQueue()
        high, low = FakeLwp(50), FakeLwp(10)
        q.insert(high)
        q.insert(low)
        assert q.pick(lambda l: l is low) is low
        assert len(q) == 1

    def test_remove(self):
        q = RunQueue()
        a = FakeLwp(10)
        q.insert(a)
        assert q.remove(a)
        assert not q.remove(a)
        assert len(q) == 0

    def test_remove_after_priority_change(self):
        q = RunQueue()
        a = FakeLwp(10)
        q.insert(a)
        a.effective_priority = 20  # changed while queued
        assert q.remove(a)

    def test_best_priority(self):
        q = RunQueue()
        assert q.best_priority() is None
        q.insert(FakeLwp(5))
        q.insert(FakeLwp(7))
        assert q.best_priority() == 7

    def test_snapshot_best_first(self):
        q = RunQueue()
        q.insert(FakeLwp(1, "lo"))
        q.insert(FakeLwp(9, "hi"))
        assert [l.name for l in q.snapshot()] == ["hi", "lo"]


class TestSchedClasses:
    def test_rt_outranks_all_ts(self):
        from repro.kernel.lwp import CLASS_BASE
        assert (CLASS_BASE[SchedClass.REALTIME] + PRIO_MIN
                > CLASS_BASE[SchedClass.TIMESHARE] + PRIO_MAX)

    def test_rt_has_no_quantum(self):
        class L:
            sched_class = SchedClass.REALTIME
            priority = 10

        assert classes.quantum_ns(L(), 1000) is None

    def test_ts_low_priority_longer_quantum(self):
        class L:
            sched_class = SchedClass.TIMESHARE
            priority = 0

        class H:
            sched_class = SchedClass.TIMESHARE
            priority = 59

        assert classes.quantum_ns(L(), 1000) > classes.quantum_ns(H(), 1000)

    def test_priority_feedback(self):
        class L:
            sched_class = SchedClass.TIMESHARE
            priority = 30

        lwp = L()
        classes.on_quantum_expired(lwp)
        assert lwp.priority == 29
        classes.on_sleep_return(lwp)
        assert lwp.priority == 30

    def test_feedback_clamped(self):
        class L:
            sched_class = SchedClass.TIMESHARE
            priority = PRIO_MIN

        lwp = L()
        classes.on_quantum_expired(lwp)
        assert lwp.priority == PRIO_MIN

    def test_gang_group_membership(self):
        gang = classes.GangGroup()

        class L:
            sched_class = SchedClass.TIMESHARE
            gang = None

        a = L()
        gang.add(a)
        assert a.gang is gang
        assert a.sched_class is SchedClass.GANG
        gang.remove(a)
        assert a.gang is None


class TestPriocntl:
    def test_setprio_and_getparms(self):
        seen = {}

        def main():
            yield Syscall("priocntl", PC_SETPRIO, 0, 45)
            seen["parms"] = yield Syscall("priocntl", PC_GETPARMS)

        run_program(main)
        assert seen["parms"]["priority"] == 45

    def test_bad_priority_rejected(self):
        from repro.errors import SyscallError
        caught = []

        def main():
            try:
                yield Syscall("priocntl", PC_SETPRIO, 0, 999)
            except SyscallError as err:
                caught.append(err.errno.name)

        run_program(main)
        assert caught == ["EINVAL"]

    def test_realtime_requires_privilege(self):
        from repro.errors import SyscallError
        caught = []

        def main():
            yield Syscall("setuid", 100)
            try:
                yield Syscall("priocntl", PC_SETCLASS, 0,
                              SchedClass.REALTIME)
            except SyscallError as err:
                caught.append(err.errno.name)

        run_program(main)
        assert caught == ["EPERM"]

    def test_root_can_go_realtime(self):
        seen = {}

        def main():
            yield Syscall("priocntl", PC_SETCLASS, 0, SchedClass.REALTIME)
            seen["parms"] = yield Syscall("priocntl", PC_GETPARMS)

        run_program(main)
        assert seen["parms"]["class"] is SchedClass.REALTIME

    def test_cpu_binding(self):
        seen = {}

        def main():
            yield Syscall("priocntl", PC_BIND_CPU, 0, 1)
            seen["parms"] = yield Syscall("priocntl", PC_GETPARMS)
            yield Syscall("priocntl", PC_UNBIND, 0)
            seen["after"] = yield Syscall("priocntl", PC_GETPARMS)

        run_program(main, ncpus=2)
        assert seen["parms"]["bound_cpu"] == 1
        assert seen["after"]["bound_cpu"] is None

    def test_bind_bad_cpu(self):
        from repro.errors import SyscallError
        caught = []

        def main():
            try:
                yield Syscall("priocntl", PC_BIND_CPU, 0, 5)
            except SyscallError as err:
                caught.append(err.errno.name)

        run_program(main, ncpus=2)
        assert caught == ["EINVAL"]


class TestDispatcherBehaviour:
    def test_higher_priority_process_finishes_first(self):
        """An RT LWP preempts a long-running TS LWP on one CPU."""
        order = []

        def ts_burner():
            yield Charge(usec(50_000))
            order.append("ts")

        def rt_sprinter():
            yield Syscall("priocntl", PC_SETCLASS, 0, SchedClass.REALTIME)
            yield Charge(usec(5_000))
            order.append("rt")

        sim = Simulator(ncpus=1)
        sim.spawn(ts_burner)
        sim.spawn(rt_sprinter)
        sim.run()
        assert order == ["rt", "ts"]

    def test_timeslicing_interleaves_equal_priority(self):
        """Two CPU hogs at equal priority must share the CPU via quantum
        round-robin, finishing within one quantum of each other."""
        finish = {}

        def burner(tag):
            def main():
                yield Charge(usec(30_000))
                t = yield Syscall("gettimeofday")
                finish[tag] = t
            return main

        sim = Simulator(ncpus=1)
        sim.spawn(burner("a"))
        sim.spawn(burner("b"))
        sim.run()
        spread = abs(finish["a"] - finish["b"])
        assert spread <= usec(31_000)

    def test_cpu_binding_serializes_bound_work(self):
        """Two processes bound to the same CPU cannot overlap even on a
        2-CPU machine."""
        def bound_burner():
            yield Syscall("priocntl", PC_BIND_CPU, 0, 0)
            yield Charge(usec(10_000))

        sim = Simulator(ncpus=2)
        sim.spawn(bound_burner)
        sim.spawn(bound_burner)
        sim.run()
        assert sim.now_usec >= 20_000

    def test_gang_codispatch(self):
        """Gang members land on CPUs together when space allows."""
        seen = {}

        def leader():
            gang = yield Syscall("priocntl", PC_JOIN_GANG)
            seen["gang"] = gang
            yield Charge(usec(1_000))

        sim = Simulator(ncpus=2)
        sim.spawn(leader)
        sim.run()
        assert seen["gang"].members
