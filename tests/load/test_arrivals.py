"""Determinism and shape of the arrival-process catalogue."""

import pytest

from repro.load.arrivals import ARRIVALS, ArrivalTrace


def _spec(kind, **params):
    return {"kind": kind, "params": params, "clients": 200, "seed": 42,
            "start_usec": 1_000.0}


KINDS = sorted(ARRIVALS)


@pytest.mark.parametrize("kind", KINDS)
def test_same_seed_byte_identical(kind):
    params = {"rate_per_sec": 2_000.0} if kind != "closed" else {}
    a = ArrivalTrace.from_spec(_spec(kind, **params))
    b = ArrivalTrace.from_spec(_spec(kind, **params))
    assert a.to_bytes() == b.to_bytes()
    assert a.digest() == b.digest()


@pytest.mark.parametrize("kind", [k for k in KINDS if k != "uniform"])
def test_different_seed_different_trace(kind):
    """Every stochastic process draws from the seed (uniform pacing is
    deliberately seed-free)."""
    params = {"rate_per_sec": 2_000.0} if kind != "closed" else {}
    a = ArrivalTrace.generate(kind, 200, 1, **params)
    b = ArrivalTrace.generate(kind, 200, 2, **params)
    assert a.arrivals_ns != b.arrivals_ns


@pytest.mark.parametrize("kind", KINDS)
def test_monotone_and_offset(kind):
    """Arrivals are sorted and respect the start offset (the server
    must be listening before the first synthetic SYN)."""
    params = {"rate_per_sec": 2_000.0} if kind != "closed" else {}
    t = ArrivalTrace.generate(kind, 200, 7, start_usec=1_000.0,
                              **params)
    assert len(t.arrivals_ns) == 200
    assert t.arrivals_ns == sorted(t.arrivals_ns)
    assert t.arrivals_ns[0] >= 1_000_000  # >= start_usec, in ns


def test_spec_roundtrip():
    t = ArrivalTrace.generate("burst", 50, 3, rate_per_sec=1_000.0,
                              burst_dwell_usec=2_500.0)
    again = ArrivalTrace.from_spec(t.spec())
    assert again.to_bytes() == t.to_bytes()


def test_unknown_kind_raises():
    with pytest.raises(ValueError, match="unknown arrival process"):
        ArrivalTrace.generate("zipf", 10, 0)


def test_uniform_is_exact_pacing():
    t = ArrivalTrace.generate("uniform", 4, 0, start_usec=0.0,
                              rate_per_sec=1_000.0)
    assert t.arrivals_ns == [1_000_000, 2_000_000, 3_000_000, 4_000_000]


def test_burst_is_denser_than_base():
    """Mean gap of the MMPP sits between the pure base and burst
    rates — the modulation actually modulates."""
    base = ArrivalTrace.generate("poisson", 2_000, 9,
                                 rate_per_sec=1_000.0)
    mmpp = ArrivalTrace.generate("burst", 2_000, 9,
                                 rate_per_sec=1_000.0)
    assert mmpp.arrivals_ns[-1] < base.arrivals_ns[-1]


def test_catalogue_has_docs():
    for kind, (fn, doc) in ARRIVALS.items():
        assert doc and isinstance(doc, str), kind
