"""Bakeoff determinism: byte-identical JSON, --jobs parity, and golden
event-stream digests for a scaled-down run of each architecture."""

import json
import os

import pytest

from repro.load.bakeoff import ARCHITECTURES, run_arch, run_bakeoff, to_json
from repro.load.driver import OUTCOMES, knee

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_bakeoff.json")

SPEC = {"kind": "poisson", "params": {"rate_per_sec": 1_000.0},
        "clients": 60, "seed": 0, "start_usec": 1_000.0}


def test_rerun_byte_identical():
    a = to_json(run_bakeoff(SPEC))
    b = to_json(run_bakeoff(SPEC))
    assert a == b


def test_jobs_parity():
    """--jobs fans across host processes without changing a byte."""
    serial = to_json(run_bakeoff(SPEC))
    fanned = to_json(run_bakeoff(SPEC, jobs=3))
    assert serial == fanned


@pytest.mark.parametrize("arch", ARCHITECTURES)
def test_golden_digest(arch):
    """The full virtual-time event stream of a scaled-down bakeoff run
    is pinned per architecture — kernel, scheduler, or driver changes
    that alter any run's event order show up here."""
    with open(GOLDEN) as fh:
        golden = json.load(fh)
    out = run_arch(arch, SPEC, with_digest=True)
    assert out["digest"] == golden[arch], (
        f"bakeoff event stream for {arch} diverged from golden")


def test_golden_covers_all_architectures():
    with open(GOLDEN) as fh:
        golden = json.load(fh)
    assert set(golden) == set(ARCHITECTURES)


def test_outcomes_account_for_every_arrival():
    for arch in ARCHITECTURES:
        out = run_arch(arch, SPEC)
        assert sum(out["outcomes"].values()) == out["offered"] == 60
        win = out["saturation"]["windows"]
        assert sum(w["arrivals"] for w in win) == 60


def test_summary_schema():
    out = run_arch("pool", SPEC)
    assert set(out["outcomes"]) == set(OUTCOMES)
    for key in ("p50", "p99", "p999", "max", "mean_ns"):
        assert key in out["latency_ns"]
    assert out["latency_ns"]["p50"] <= out["latency_ns"]["p99"] \
        <= out["latency_ns"]["p999"] <= out["latency_ns"]["max"]


def test_closed_loop_deterministic():
    spec = {"kind": "closed", "params": {"think_usec": 500.0},
            "clients": 10, "seed": 4, "start_usec": 1_000.0}
    a = to_json(run_bakeoff(spec, archs=("pool",), closed=(4, 500.0)))
    b = to_json(run_bakeoff(spec, archs=("pool",), closed=(4, 500.0)))
    assert a == b
    r = json.loads(a)["architectures"]["pool"]
    assert sum(r["outcomes"].values()) == 40  # 10 clients x 4 requests


def test_knee_detection():
    ok = {"ok": 90, "busy": 0, "refused": 0, "timeout": 0, "reset": 0,
          "eof": 0, "arrivals": 90}
    bad = {"ok": 50, "busy": 10, "refused": 20, "timeout": 20,
           "reset": 0, "eof": 0, "arrivals": 100}
    assert knee([ok, ok, ok]) is None
    assert knee([ok, bad, bad]) == 1
    # busy is an explicit answer, not a miss
    shed = {"ok": 50, "busy": 50, "refused": 0, "timeout": 0,
            "reset": 0, "eof": 0, "arrivals": 100}
    assert knee([shed, shed]) is None
    # empty windows don't divide by zero
    assert knee([{"arrivals": 0}, bad]) == 1
