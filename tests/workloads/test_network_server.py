"""Overload behavior of the network-server workload.

The acceptance bar from the robustness work: offered load several times
capacity must degrade *gracefully* — no deadlock, no silently lost
request (the ledger balances: admitted == served + explicitly shed),
rejections visible to clients and in the metrics — and every run must
replay bit-for-bit from its serialized schedule plan.
"""

import pytest

from repro.api import Simulator
from repro.explore.explorer import run_one
from repro.workloads import network_server

#: Twelve clients on a 200 us think time against two workers burning
#: 2 ms per request: offered load is well over 4x what the pool can
#: serve, so the admission queue (limit 4) saturates immediately.
OVERLOAD = dict(n_clients=12, requests_per_client=8, n_workers=2,
                service_compute_usec=2_000.0, client_think_usec=200.0,
                admission_limit=4)


def run(main, ncpus=2, seed=0, metrics=False):
    sim = Simulator(ncpus=ncpus, seed=seed, metrics=metrics)
    sim.spawn(main)
    sim.run()
    return sim


class TestGracefulDegradation:
    def test_reject_newest_sheds_explicitly(self):
        main, res = network_server.build(shed="reject-newest", **OVERLOAD)
        sim = run(main, metrics=True)
        # Nothing admitted is ever lost; rejections are explicit.
        assert res["received"] == res["served"]
        assert res["shed"] > 0
        assert res["client_giveups"] + res["client_ok"] == 12 * 8
        counters = sim.metrics.snapshot()["counters"]
        assert counters["server.shed"] == res["shed"]
        assert counters["server.served"] == res["served"]

    def test_shed_oldest_keeps_the_ledger_balanced(self):
        main, res = network_server.build(shed="oldest", **OVERLOAD)
        run(main)
        # Shed-oldest admits everything, then revokes: every admitted
        # request is either served or explicitly shed, never dropped.
        assert res["received"] == res["served"] + res["shed"]
        assert res["shed"] > 0

    def test_thread_per_conn_respects_the_handler_cap(self):
        main, res = network_server.build(mode="thread-per-conn",
                                         **OVERLOAD)
        run(main)
        assert res["received"] == res["served"]
        assert res["client_ok"] > 0

    def test_clients_observe_progress_under_overload(self):
        main, res = network_server.build(shed="reject-newest", **OVERLOAD)
        run(main)
        # Overload means rejections, not starvation: some requests
        # still complete end-to-end, and retries happened.
        assert res["client_ok"] > 0
        assert res["client_retries"] > 0

    def test_underload_serves_everything(self):
        main, res = network_server.build(n_clients=3,
                                         requests_per_client=5,
                                         n_workers=4)
        run(main)
        assert res["client_ok"] == 15
        assert res["shed"] == 0


class TestReplay:
    def test_overload_run_replays_bit_for_bit(self):
        from repro.sim.schedule import RandomPreempt
        plan = {"rules": [RandomPreempt(probability=0.2).to_dict()]}

        def factory():
            return network_server.build(shed="oldest", **OVERLOAD)[0]

        a = run_one(factory, program="netsrv", seed=5,
                    schedule_dict=plan)
        b = run_one(factory, program="netsrv", seed=5,
                    schedule_dict=plan)
        assert not a.failed, a.summary()
        assert a.digest == b.digest
        assert a.events == b.events

    def test_different_seeds_diverge(self):
        def factory():
            return network_server.build(shed="oldest", **OVERLOAD)[0]

        from repro.sim.schedule import RandomPreempt
        plan = {"rules": [RandomPreempt(probability=0.2).to_dict()]}
        a = run_one(factory, program="netsrv", seed=5,
                    schedule_dict=plan)
        b = run_one(factory, program="netsrv", seed=6,
                    schedule_dict=plan)
        assert a.digest != b.digest


class TestEventLoop:
    """The third architecture: a single-LWP select() event loop."""

    def test_serves_everything_underload(self):
        main, res = network_server.build(mode="event-loop", n_clients=3,
                                         requests_per_client=5)
        run(main)
        assert res["received"] == res["served"] == 15
        assert res["client_ok"] == 15
        assert res["shed"] == 0
        # The whole server is one LWP: nothing pool-grown.
        assert res["lwps_grown"] == 0

    def test_single_thread_no_locks(self):
        """An event-loop run emits no lock contention at all — there is
        nothing to contend for."""
        main, res = network_server.build(mode="event-loop", n_clients=2,
                                         requests_per_client=3)
        sim = run(main, metrics=True)
        counters = sim.metrics.snapshot()["counters"]
        assert counters.get("lwp.sleeps", 0) == 0 or res["served"] == 6

    def test_overload_degrades_not_deadlocks(self):
        main, res = network_server.build(
            mode="event-loop", n_clients=12, requests_per_client=8,
            service_compute_usec=2_000.0, client_think_usec=200.0)
        run(main)
        # Inline service head-of-line blocks: clients give up, but the
        # run terminates and everything admitted is accounted for.
        assert res["received"] == res["served"] + res["shed"]
        assert res["client_ok"] + res["client_giveups"] == 12 * 8
        assert res["client_ok"] > 0

    def test_replays_bit_for_bit(self):
        from repro.sim.schedule import RandomPreempt
        plan = {"rules": [RandomPreempt(probability=0.2).to_dict()]}

        def factory():
            return network_server.build(mode="event-loop", n_clients=4,
                                        requests_per_client=4)[0]

        a = run_one(factory, program="evloop", seed=9,
                    schedule_dict=plan)
        b = run_one(factory, program="evloop", seed=9,
                    schedule_dict=plan)
        assert not a.failed, a.summary()
        assert a.digest == b.digest

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            network_server.build(mode="coroutine-farm")
