"""Tests for the reference workloads: they must run to completion and
produce internally consistent results."""

import pytest

from repro.api import Simulator
from repro.workloads import (array_compute, database, network_server,
                             window_system)


def run(main, ncpus=2, seed=0):
    sim = Simulator(ncpus=ncpus, seed=seed)
    sim.spawn(main)
    sim.run()
    return sim


class TestWindowSystem:
    def test_all_events_processed(self):
        main, res = window_system.build(n_widgets=20, n_events=60,
                                        event_spacing_usec=50)
        run(main)
        assert res["processed"] == 60

    def test_mn_uses_fewer_lwps_than_widgets(self):
        main, res = window_system.build(n_widgets=50, n_events=50,
                                        event_spacing_usec=50)
        run(main)
        assert res["footprint"]["lwps"] < 50

    def test_bound_mode_uses_lwp_per_widget(self):
        main, res = window_system.build(n_widgets=10, n_events=20,
                                        bound_threads=True,
                                        event_spacing_usec=50)
        run(main)
        assert res["footprint"]["lwps"] >= 10

    def test_bound_mode_costs_more_kernel_memory(self):
        main_mn, res_mn = window_system.build(n_widgets=30, n_events=30,
                                              event_spacing_usec=50)
        run(main_mn)
        main_b, res_b = window_system.build(n_widgets=30, n_events=30,
                                            bound_threads=True,
                                            event_spacing_usec=50)
        run(main_b)
        assert (res_b["footprint"]["kernel_bytes"]
                > res_mn["footprint"]["kernel_bytes"] * 3)


class TestArrayCompute:
    def test_all_rows_computed(self):
        main, res = array_compute.build(rows=64, n_threads=4, n_lwps=2)
        run(main)
        assert res["threads_done"] == 4

    def test_one_thread_per_lwp_beats_many(self):
        """The paper's claim: threads-per-LWP > 1 wastes switch time."""
        main1, res1 = array_compute.build(rows=64, n_threads=2, n_lwps=2,
                                          bind=True)
        run(main1)
        main8, res8 = array_compute.build(rows=64, n_threads=16,
                                          n_lwps=2)
        run(main8)
        assert res1["elapsed_usec"] < res8["elapsed_usec"]
        assert res1["user_switches"] < res8["user_switches"]

    def test_more_lwps_exploit_more_cpus(self):
        main1, res1 = array_compute.build(rows=64, n_threads=4, n_lwps=1,
                                          yield_between_rows=False)
        sim1 = run(main1, ncpus=4)
        main4, res4 = array_compute.build(rows=64, n_threads=4, n_lwps=4,
                                          yield_between_rows=False)
        sim4 = run(main4, ncpus=4)
        assert res4["elapsed_usec"] < res1["elapsed_usec"] / 2

    def test_bind_requires_matching_counts(self):
        main, res = array_compute.build(rows=8, n_threads=4, n_lwps=2,
                                        bind=True)
        from repro.errors import SimulationError
        with pytest.raises(Exception):
            run(main)


class TestNetworkServer:
    def test_all_requests_served(self):
        main, res = network_server.build(n_clients=3,
                                         requests_per_client=5,
                                         n_workers=2)
        run(main)
        assert res["received"] == 15
        assert res["served"] == 15
        assert res["throughput_per_sec"] > 0

    def test_latency_measured(self):
        main, res = network_server.build(n_clients=2,
                                         requests_per_client=3,
                                         n_workers=2)
        run(main)
        assert res["avg_latency_usec"] > 0


class TestDatabase:
    def test_cross_process_consistency(self):
        main, res = database.build(n_records=8, n_processes=3,
                                   n_threads=2, txns_per_thread=6)
        run(main)
        assert res["consistent"], res
        assert res["committed"] == 3 * 2 * 6
        assert res["locks_left_held"] == 0

    def test_single_process_degenerate(self):
        main, res = database.build(n_records=4, n_processes=1,
                                   n_threads=3, txns_per_thread=4)
        run(main)
        assert res["consistent"]

    def test_deterministic_given_seed(self):
        main1, res1 = database.build(n_records=4, n_processes=2,
                                     n_threads=2, txns_per_thread=4,
                                     seed=5)
        run(main1, seed=5)
        main2, res2 = database.build(n_records=4, n_processes=2,
                                     n_threads=2, txns_per_thread=4,
                                     seed=5)
        run(main2, seed=5)
        assert res1["elapsed_usec"] == res2["elapsed_usec"]
