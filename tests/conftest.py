"""Shared test helpers.

Most tests build a small simulated program (a generator function), run it
to completion with :func:`run_program`, and assert on state collected in
closures or on kernel structures afterwards.
"""

from __future__ import annotations

import pytest

from repro.api import Simulator


def run_program(main, *args, ncpus: int = 1, seed: int = 0, costs=None,
                trace: bool = False, trace_categories=None,
                until_usec=None, check_deadlock: bool = True,
                runtime_factory=None, max_events: int = 2_000_000,
                faults=None):
    """Spawn ``main`` in a fresh Simulator and run to completion.

    Returns ``(sim, process)``.
    """
    sim = Simulator(ncpus=ncpus, seed=seed, costs=costs, trace=trace,
                    trace_categories=trace_categories,
                    threads_runtime_factory=runtime_factory,
                    faults=faults)
    proc = sim.spawn(main, *args)
    sim.run(until_usec=until_usec, check_deadlock=check_deadlock,
            max_events=max_events)
    return sim, proc


@pytest.fixture
def sim():
    """A bare simulator (no process yet), single CPU."""
    return Simulator(ncpus=1)


@pytest.fixture
def sim2():
    """A dual-CPU simulator."""
    return Simulator(ncpus=2)
