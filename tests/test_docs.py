"""Docs-consistency gate as tests (same checks as tools/check_docs.py).

Each check is its own test so a dead link and a drifted CLI block fail
separately; the CI ``docs`` job runs the standalone script, this keeps
plain ``pytest`` honest too.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "tools"))

import check_docs  # noqa: E402


def test_no_dead_relative_links():
    assert check_docs.check_links() == []


def test_cli_blocks_match_live_help():
    assert check_docs.check_cli_blocks() == []


def test_example_inventory_in_sync():
    assert check_docs.check_example_inventory() == []


def test_rule_catalogue_in_sync():
    assert check_docs.check_rule_catalogue() == []


def test_class_catalogue_in_sync():
    assert check_docs.check_class_catalogue() == []


def test_load_cli_flag_reference_in_sync():
    assert check_docs.check_load_cli() == []


def test_arrival_catalogue_in_sync():
    assert check_docs.check_arrival_catalogue() == []
