"""Tests for thread_setconcurrency and SIGWAITING-driven pool growth —
the paper's deadlock-avoidance machinery."""

import pytest

from repro.hw.isa import Charge, GetContext
from repro.kernel.fs.file import O_RDONLY
from repro.runtime import unistd
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


def _lib():
    ctx = yield GetContext()
    return ctx.process.threadlib


class TestSetConcurrency:
    def test_grows_pool(self):
        got = {}

        def main():
            lib = yield from _lib()
            got["before"] = len(lib.pool_lwps)
            yield from threads.thread_setconcurrency(4)
            yield from unistd.sleep_usec(1_000)
            got["after"] = len(lib.pool_lwps)

        run_program(main, ncpus=2, check_deadlock=False)
        assert got["before"] == 1
        assert got["after"] == 4

    def test_shrinks_pool(self):
        got = {}

        def main():
            lib = yield from _lib()
            yield from threads.thread_setconcurrency(4)
            yield from unistd.sleep_usec(5_000)  # extras park
            yield from threads.thread_setconcurrency(2)
            yield from unistd.sleep_usec(10_000)
            got["after"] = len(lib.pool_lwps)

        run_program(main, ncpus=2, check_deadlock=False)
        assert got["after"] == 2

    def test_zero_means_automatic(self):
        def main():
            yield from threads.thread_setconcurrency(0)

        sim, proc = run_program(main)
        assert proc.exit_status == 0

    def test_negative_rejected(self):
        from repro.errors import ThreadError

        def main():
            with pytest.raises(ThreadError):
                yield from threads.thread_setconcurrency(-1)

        run_program(main)

    def test_bound_lwps_not_counted(self):
        """"The number of LWPs permanently bound to threads is not
        included in n."""
        got = {}

        def bound_idler(_):
            yield from unistd.sleep_usec(20_000)

        def main():
            lib = yield from _lib()
            yield from threads.thread_create(
                bound_idler, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_setconcurrency(2)
            yield from unistd.sleep_usec(1_000)
            got["pool"] = len(lib.pool_lwps)

        run_program(main, ncpus=2, check_deadlock=False)
        assert got["pool"] == 2  # the bound LWP is extra

    def test_concurrency_enables_real_parallelism(self):
        """With concurrency == ncpus, compute-bound threads overlap."""
        def burner(_):
            yield Charge(usec(20_000))

        def make_main(nlwps):
            def main():
                yield from threads.thread_setconcurrency(nlwps)
                tids = []
                for _ in range(2):
                    tid = yield from threads.thread_create(
                        burner, None, flags=threads.THREAD_WAIT)
                    tids.append(tid)
                for tid in tids:
                    yield from threads.thread_wait(tid)
            return main

        sim1, _ = run_program(make_main(1), ncpus=2)
        sim2, _ = run_program(make_main(2), ncpus=2)
        assert sim2.now_usec < sim1.now_usec * 0.7


class TestSigwaitingGrowth:
    def test_pool_grows_when_threads_starve(self):
        """All LWPs block indefinitely in the kernel while runnable
        threads wait: SIGWAITING must add an LWP so they can run."""
        got = {}

        def blocked_reader(_):
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            yield from unistd.read(fd, 10)

        def compute(_):
            yield Charge(usec(3_000))
            got["computed"] = True

        def main():
            lib = yield from _lib()
            yield from threads.thread_create(blocked_reader, None)
            yield from threads.thread_yield()  # reader takes the LWP
            # We only get here once some LWP runs us again...
            yield from threads.thread_create(compute, None)
            yield from unistd.sleep_usec(100_000)
            got["pool"] = len(lib.pool_lwps)
            got["grown"] = lib.lwps_grown_by_sigwaiting

        from repro.api import Simulator
        sim = Simulator(ncpus=2)
        sim.spawn(main)
        sim.type_input(b"x", at_usec=200_000)  # eventually release reader
        sim.run(check_deadlock=False)
        assert got.get("computed")
        assert got["grown"] >= 1

    def test_no_growth_when_no_runnable_threads(self):
        """SIGWAITING with an empty run queue must not create LWPs."""
        got = {}

        def main():
            lib = yield from _lib()
            fd = yield from unistd.open("/dev/tty", O_RDONLY)
            yield from unistd.read(fd, 1)
            got["pool"] = len(lib.pool_lwps)
            got["grown"] = lib.lwps_grown_by_sigwaiting

        from repro.api import Simulator
        sim = Simulator()
        sim.spawn(main)
        sim.type_input(b"x", at_usec=100_000)  # well past the throttle
        sim.run()
        assert got["pool"] == 1
        assert got["grown"] == 0

    def test_deadlock_without_growth_mitigated(self):
        """The full ABL3 story in miniature: without SIGWAITING (liblwp
        model) the compute thread starves until input arrives; with it,
        compute finishes long before."""
        from repro.models import liblwp

        def build(record):
            def blocked_reader(_):
                fd = yield from unistd.open("/dev/tty", O_RDONLY)
                yield from unistd.read(fd, 10)

            def compute(_):
                yield Charge(usec(1_000))
                t = yield from unistd.gettimeofday()
                record["compute_done_usec"] = t / 1000

            def main():
                yield from threads.thread_create(blocked_reader, None)
                tid = yield from threads.thread_create(
                    compute, None, flags=threads.THREAD_WAIT)
                # Block at user level (thread_wait), so the only LWP is
                # free to run the reader, which then blocks it in the
                # kernel indefinitely — the exact SIGWAITING condition.
                yield from threads.thread_wait(tid)
            return main

        from repro.api import Simulator

        mn = {}
        sim = Simulator(ncpus=2)
        sim.spawn(build(mn))
        sim.type_input(b"x", at_usec=400_000)
        sim.run(check_deadlock=False)

        ll = {}
        sim = Simulator(ncpus=2)
        sim.kernel.runtime_factory = liblwp.bootstrap_process
        sim.spawn(build(ll))
        sim.type_input(b"x", at_usec=400_000)
        sim.run(check_deadlock=False)

        assert mn["compute_done_usec"] < 100_000   # freed by SIGWAITING
        assert ll["compute_done_usec"] >= 400_000  # starved until input
