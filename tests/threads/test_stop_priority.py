"""Tests for thread_stop / thread_continue / thread_priority."""

import pytest

from repro.errors import ThreadError
from repro.hw.isa import Charge
from repro.runtime import unistd
from repro import threads
from repro.threads.thread import ThreadState
from repro.sim.clock import usec
from tests.conftest import run_program


class TestStopContinue:
    def test_stop_runnable_thread(self):
        ran = []

        def worker(_):
            ran.append(1)
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            # Worker is runnable but has not run (we hold the only LWP).
            yield from threads.thread_stop(tid)
            yield from threads.thread_yield()
            assert ran == []
            yield from threads.thread_continue(tid)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert ran == [1]

    def test_stop_self_until_continued(self):
        order = []

        def sleeper(_):
            order.append("stopping")
            yield from threads.thread_stop(None)
            order.append("resumed")

        def main():
            tid = yield from threads.thread_create(
                sleeper, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            yield from unistd.sleep_usec(1_000)
            order.append("continuing")
            yield from threads.thread_continue(tid)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert order == ["stopping", "continuing", "resumed"]

    def test_stop_running_thread_waits_for_switch_point(self):
        """thread_stop on a thread running on another LWP returns only
        once that thread reached a scheduling point and stopped."""
        phases = []

        def cooperative(_):
            for _ in range(50):
                yield Charge(usec(200))
                yield from threads.thread_yield()
            phases.append("finished")

        def main():
            tid = yield from threads.thread_create(
                cooperative, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from unistd.sleep_usec(2_000)  # it is mid-run
            yield from threads.thread_stop(tid)
            phases.append("stopped")
            yield from unistd.sleep_usec(10_000)
            assert phases == ["stopped"]  # made no progress while stopped
            yield from threads.thread_continue(tid)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert phases == ["stopped", "finished"]

    def test_stop_sleeping_thread_defers_wakeup(self):
        """A thread stopped while blocked on a sync variable parks in
        STOPPED when the wakeup arrives, and resumes with the wakeup's
        value after thread_continue."""
        from repro.sync import Semaphore
        got = []

        def waiter(sem):
            yield from sem.p()
            got.append("woke")

        def main():
            sem = Semaphore()
            tid = yield from threads.thread_create(
                waiter, sem, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()   # let it block on the sema
            yield from threads.thread_stop(tid)
            yield from sem.v()                  # wakeup while stopped
            yield from threads.thread_yield()
            assert got == []                    # still stopped
            yield from threads.thread_continue(tid)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == ["woke"]

    def test_stop_waiter_unparked_promptly(self):
        """Regression: waking a thread_stop() caller must not strand a
        parked pool LWP — the unpark happens at the stop, not at the
        eventual thread_continue."""
        got = {}

        def cooperative(_):
            for _ in range(200):
                yield Charge(usec(200))
                yield from threads.thread_yield()

        def stopper(tid):
            yield from threads.thread_stop(tid)
            t = yield from unistd.gettimeofday()
            got["stop_returned_at"] = t / 1000

        def main():
            from repro.hw.isa import GetContext
            ctx = yield GetContext()
            yield from threads.thread_setconcurrency(3)
            target = yield from threads.thread_create(
                cooperative, None, flags=threads.THREAD_WAIT)
            s = yield from threads.thread_create(
                stopper, target, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(s)
            # No pool LWP may be lost: parked + running LWPs must still
            # account for the whole pool.
            lib = ctx.process.threadlib
            from repro.kernel.lwp import LwpState
            stranded = [
                l for l in lib.pool_lwps.values()
                if l.state is LwpState.SLEEPING and l not in lib.parked
                and l.channel is l.park_channel]
            got["stranded"] = stranded
            yield from threads.thread_continue(target)
            yield from threads.thread_wait(target)

        run_program(main, ncpus=2)
        assert got["stranded"] == []
        assert "stop_returned_at" in got

    def test_continue_of_running_thread_is_noop(self):
        def main():
            me = yield from threads.thread_get_id()

            def other(_):
                yield from threads.thread_continue(me)

            tid = yield from threads.thread_create(
                other, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        sim, proc = run_program(main)
        assert proc.exit_status == 0


class TestPriority:
    def test_returns_old_priority(self):
        got = []

        def main():
            old = yield from threads.thread_priority(None, 50)
            got.append(old)
            old = yield from threads.thread_priority(None, 10)
            got.append(old)

        run_program(main)
        assert got == [30, 50]

    def test_negative_priority_rejected(self):
        def main():
            with pytest.raises(ThreadError):
                yield from threads.thread_priority(None, -1)

        run_program(main)

    def test_higher_priority_thread_scheduled_first(self):
        order = []

        def tagger(tag):
            order.append(tag)
            return
            yield

        def main():
            lo = yield from threads.thread_create(
                tagger, "low", flags=threads.THREAD_WAIT)
            hi = yield from threads.thread_create(
                tagger, "high", flags=threads.THREAD_WAIT)
            yield from threads.thread_priority(hi, 55)
            yield from threads.thread_priority(lo, 5)
            yield from threads.thread_yield()
            yield from threads.thread_wait(lo)
            yield from threads.thread_wait(hi)

        run_program(main)
        assert order == ["high", "low"]

    def test_priority_of_other_thread(self):
        got = []

        def idler(_):
            yield from unistd.sleep_usec(5_000)

        def main():
            yield from threads.thread_setconcurrency(2)
            tid = yield from threads.thread_create(
                idler, None, flags=threads.THREAD_WAIT)
            old = yield from threads.thread_priority(tid, 12)
            got.append(old)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == [30]


class TestYield:
    def test_yield_rotates_equal_priority(self):
        order = []

        def tagger(tag):
            order.append(tag)
            return
            yield

        def main():
            yield from threads.thread_create(tagger, "a")
            yield from threads.thread_create(tagger, "b")
            order.append("main")
            yield from threads.thread_yield()
            order.append("main-back")

        run_program(main)
        assert order[0] == "main"
        assert set(order[1:3]) == {"a", "b"}

    def test_yield_with_empty_runq_is_noop(self):
        def main():
            yield from threads.thread_yield()

        sim, proc = run_program(main)
        assert proc.exit_status == 0
