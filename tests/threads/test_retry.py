"""Tests for the overload retry machinery (repro.threads.retry).

Policies, budgets, and breakers are plain state machines (tested
directly); ``call_with_retry`` / ``recv_with_deadline`` run in-sim so
the deadline math and the seeded-jitter determinism are exercised in
virtual time.
"""

import random

import pytest

from repro.api import Simulator
from repro.errors import Errno, SyscallError
from repro.runtime import unistd
from repro.threads import retry
from tests.conftest import run_program


class TestRetryPolicy:
    def test_delay_sequence_caps(self):
        p = retry.RetryPolicy(base_usec=100.0, factor=2.0,
                              max_delay_usec=400.0, jitter=0.0)
        assert [p.delay_usec(n, None) for n in range(1, 6)] == \
            [100.0, 200.0, 400.0, 400.0, 400.0]

    def test_jitter_is_seed_deterministic(self):
        p = retry.RetryPolicy(base_usec=100.0, jitter=0.5)
        a = [p.delay_usec(n, random.Random(7)) for n in range(1, 5)]
        b = [p.delay_usec(n, random.Random(7)) for n in range(1, 5)]
        c = [p.delay_usec(n, random.Random(8)) for n in range(1, 5)]
        assert a == b
        assert a != c
        # Jitter only ever *adds*, bounded by the fraction.
        base = retry.RetryPolicy(base_usec=100.0, jitter=0.0)
        for n, d in enumerate(a, start=1):
            plain = base.delay_usec(n, None)
            assert plain <= d <= plain * 1.5


class TestRetryBudget:
    def test_spend_deny_refill(self):
        b = retry.RetryBudget(max_tokens=2, refill_per_success=0.5)
        assert b.try_spend() and b.try_spend()
        assert not b.try_spend()
        assert b.denied == 1
        b.on_success()      # 0.5 tokens: still not a whole one
        assert not b.try_spend()
        b.on_success()
        assert b.try_spend()

    def test_refill_caps_at_max(self):
        b = retry.RetryBudget(max_tokens=1, refill_per_success=5.0)
        b.on_success()
        assert b.tokens == 1.0


class TestCircuitBreaker:
    def test_trips_after_threshold_and_cools_down(self):
        cb = retry.CircuitBreaker(failure_threshold=3,
                                  cooldown_usec=10.0)
        for _ in range(3):
            assert cb.allow(0)
            cb.on_failure(0)
        assert cb.state == retry.CircuitBreaker.OPEN
        assert cb.trips == 1
        assert not cb.allow(5_000)          # still cooling (ns)
        assert cb.rejections == 1
        assert cb.allow(10_000)             # half-open probe
        assert cb.state == retry.CircuitBreaker.HALF_OPEN
        cb.on_success()
        assert cb.state == retry.CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        cb = retry.CircuitBreaker(failure_threshold=1,
                                  cooldown_usec=10.0)
        cb.on_failure(0)
        assert cb.allow(10_000)
        cb.on_failure(10_000)
        assert cb.state == retry.CircuitBreaker.OPEN
        assert cb.trips == 2

    def test_success_resets_the_streak(self):
        cb = retry.CircuitBreaker(failure_threshold=2)
        cb.on_failure(0)
        cb.on_success()
        cb.on_failure(0)
        assert cb.state == retry.CircuitBreaker.CLOSED


def _flaky(fails: int, errno=Errno.EAGAIN):
    state = {"calls": 0}

    def attempt():
        yield from unistd.getpid()
        state["calls"] += 1
        if state["calls"] <= fails:
            raise SyscallError(errno, "flaky")
        return state["calls"]

    attempt.state = state
    return attempt


def _run(main):
    sim = Simulator(ncpus=1, seed=0, metrics=True)
    sim.spawn(main)
    sim.run()
    return sim


class TestCallWithRetry:
    def test_recovers_and_counts(self):
        got = {}

        def main():
            got["v"] = yield from retry.call_with_retry(
                _flaky(2), retry.RetryPolicy(attempts=5, jitter=0.0))

        sim = _run(main)
        assert got["v"] == 3
        counters = sim.metrics.snapshot()["counters"]
        assert counters["retry.failures"] == 2
        assert counters["retry.retries"] == 2
        assert counters["retry.recoveries"] == 1

    def test_attempt_cap_propagates_last_error(self):
        def main():
            with pytest.raises(SyscallError) as exc:
                yield from retry.call_with_retry(
                    _flaky(99), retry.RetryPolicy(attempts=3, jitter=0.0))
            assert exc.value.errno == Errno.EAGAIN

        sim = _run(main)
        assert sim.metrics.snapshot()["counters"]["retry.giveups"] == 1

    def test_non_retryable_is_untouched(self):
        attempt = _flaky(99, errno=Errno.EINVAL)

        def main():
            with pytest.raises(SyscallError) as exc:
                yield from retry.call_with_retry(
                    attempt, retry.RetryPolicy(attempts=5))
            assert exc.value.errno == Errno.EINVAL

        _run(main)
        assert attempt.state["calls"] == 1

    def test_deadline_expires_as_etimedout(self):
        def main():
            with pytest.raises(SyscallError) as exc:
                yield from retry.call_with_retry(
                    _flaky(99),
                    retry.RetryPolicy(attempts=100, base_usec=300.0,
                                      jitter=0.0, deadline_usec=1_000.0))
            assert exc.value.errno == Errno.ETIMEDOUT

        sim = _run(main)
        # The loop never sleeps past the deadline, so expiry lands close
        # to it (attempt overhead only).
        assert 1_000.0 <= sim.now_usec < 2_000.0

    def test_budget_denial_fails_fast(self):
        budget = retry.RetryBudget(max_tokens=1)

        def main():
            with pytest.raises(SyscallError):
                yield from retry.call_with_retry(
                    _flaky(99), retry.RetryPolicy(attempts=10, jitter=0.0),
                    budget=budget)

        sim = _run(main)
        # One retry spent the only token; the second was denied.
        assert budget.denied == 1
        counters = sim.metrics.snapshot()["counters"]
        assert counters["retry.budget_denied"] == 1
        assert counters["retry.retries"] == 1

    def test_jittered_delays_replay_bit_for_bit(self):
        def campaign():
            def main():
                with pytest.raises(SyscallError):
                    yield from retry.call_with_retry(
                        _flaky(99),
                        retry.RetryPolicy(attempts=6, jitter=0.5),
                        name="probe")
            sim = _run(main)
            return sim.now_usec

        assert campaign() == campaign()


class TestWithBreaker:
    def test_open_breaker_fails_fast_without_calling(self):
        cb = retry.CircuitBreaker(failure_threshold=1)
        attempt = _flaky(99)

        def main():
            with pytest.raises(SyscallError):
                yield from retry.with_breaker(cb, attempt)
            with pytest.raises(SyscallError) as exc:
                yield from retry.with_breaker(cb, attempt)
            assert exc.value.errno == Errno.EAGAIN

        sim = _run(main)
        assert attempt.state["calls"] == 1          # second call never ran
        assert cb.rejections == 1
        counters = sim.metrics.snapshot()["counters"]
        assert counters["retry.breaker_tripped"] == 1
        assert counters["retry.breaker_rejected"] == 1


class TestRecvWithDeadline:
    PORT = 5600

    def test_times_out_in_virtual_time(self):
        def main():
            lfd = yield from unistd.socket()
            yield from unistd.bind(lfd, self.PORT)
            yield from unistd.listen(lfd, 4)
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, self.PORT)
            yield from unistd.accept(lfd)   # nobody ever sends
            start = yield from unistd.gettimeofday()
            with pytest.raises(SyscallError) as exc:
                yield from retry.recv_with_deadline(fd, 16, 2_000.0)
            assert exc.value.errno == Errno.ETIMEDOUT
            end = yield from unistd.gettimeofday()
            assert (end - start) / 1000.0 >= 2_000.0

        sim = _run(main)
        counters = sim.metrics.snapshot()["counters"]
        assert counters["retry.recv_timeouts"] == 1

    def test_returns_data_when_it_arrives(self):
        got = {}

        def main():
            lfd = yield from unistd.socket()
            yield from unistd.bind(lfd, self.PORT)
            yield from unistd.listen(lfd, 4)
            fd = yield from unistd.socket()
            yield from unistd.connect(fd, self.PORT)
            conn = yield from unistd.accept(lfd)
            yield from unistd.send(conn, b"late but present")
            got["data"] = yield from retry.recv_with_deadline(
                fd, 64, 2_000.0)

        run_program(main)
        assert got["data"] == b"late but present"
