"""Parametrized matrix over all thread_create flag combinations.

Every or-able combination of the paper's four flags must produce a thread
that (after any needed thread_continue) runs to completion, with the
right boundness, waitability, and start behaviour.
"""

import itertools

import pytest

from repro.errors import ThreadError
from repro.runtime import unistd
from repro import threads
from tests.conftest import run_program

FLAG_NAMES = {
    threads.THREAD_STOP: "STOP",
    threads.THREAD_NEW_LWP: "NEW_LWP",
    threads.THREAD_BIND_LWP: "BIND_LWP",
    threads.THREAD_WAIT: "WAIT",
}

ALL_COMBOS = [
    sum(combo)
    for r in range(5)
    for combo in itertools.combinations(FLAG_NAMES, r)
]


def combo_id(flags):
    names = [name for bit, name in FLAG_NAMES.items() if flags & bit]
    return "+".join(names) if names else "none"


@pytest.mark.parametrize("flags", ALL_COMBOS, ids=combo_id)
def test_flag_combination(flags):
    ran = []

    def worker(_):
        me = yield from threads.current_thread()
        ran.append({
            "bound": me.bound,
            "waitable": me.waitable,
        })

    def main():
        from repro.hw.isa import GetContext
        ctx = yield GetContext()
        lib = ctx.process.threadlib
        pool_before = len(lib.pool_lwps)

        tid = yield from threads.thread_create(worker, None, flags=flags)

        if flags & threads.THREAD_STOP:
            # Must not have run yet.
            yield from unistd.sleep_usec(3_000)
            assert ran == []
            yield from threads.thread_continue(tid)

        if flags & threads.THREAD_WAIT:
            got = yield from threads.thread_wait(tid)
            assert got == tid
        else:
            # Give it time to finish; non-waitable ids recycle silently.
            for _ in range(10):
                if ran:
                    break
                yield from threads.thread_yield()
                yield from unistd.sleep_usec(2_000)

        assert len(ran) == 1
        assert ran[0]["bound"] == bool(flags & threads.THREAD_BIND_LWP)
        assert ran[0]["waitable"] == bool(flags & threads.THREAD_WAIT)

        if flags & threads.THREAD_NEW_LWP:
            # The pool gained an LWP (it may be parked by now).
            assert len(lib.pool_lwps) == pool_before + 1

    run_program(main, ncpus=2, check_deadlock=False)
