"""LwpCrash against the blocking primitives: the reclaim edge cases.

Three deaths the crash-reclaim walk must get exactly right:

* a thread crashed while blocked in ``cv_wait`` holds *nothing* — it
  released the mutex before sleeping and had not yet re-acquired it, so
  the mutex must not go owner-dead and the corpse must leave the cv's
  sleep queue;
* a thread crashed while parked in ``accept`` is a kernel-side sleeper:
  the process survives, and the listening socket stays closeable;
* a crash of a process's *last* LWP is process death: exit status 134
  (as if SIGABRT), SIGCHLD to the parent before its ``waitpid`` returns.
"""

from repro import Errno, FaultPlan, LwpCrash, SyscallError, threads
from repro.hw.isa import GetContext
from repro.kernel.signals import Sig
from repro.runtime import libc, unistd
from repro.sim.clock import usec
from repro.sync import CondVar, Mutex
from repro.threads.reclaim import CRASHED_STATUS
from repro.threads.thread import ThreadState
from tests.conftest import run_program


class TestCrashInCvWait:
    def _run(self):
        observed = {}
        m = Mutex(name="monitor")
        cv = CondVar(name="monitor-cv")
        state = {"ready": False}

        def waiter(_):
            ctx = yield GetContext()
            observed["victim"] = ctx.thread
            yield from m.enter()
            while not state["ready"]:
                yield from cv.wait(m)      # crash lands in this sleep
            yield from m.exit()

        def main():
            ctx = yield GetContext()
            tid = yield from threads.thread_create(
                waiter, None, flags=threads.THREAD_BIND_LWP)
            yield from libc.compute(2_000.0)   # waiter is asleep on cv

            def kill():
                victim = observed["victim"]
                if victim.lwp is not None:
                    ctx.kernel.crash_lwp(victim.lwp)

            ctx.engine.call_after(usec(1_000.0), kill)
            yield from libc.compute(5_000.0)   # crash has happened
            # The mutex was NOT held by the sleeping waiter: it must be
            # freely acquirable with no owner-dead residue.
            acquired = yield from m.enter()
            observed["acquired"] = acquired
            observed["owner_dead"] = m.owner_dead
            observed["cv_waiters"] = list(cv.waiters)
            state["ready"] = True
            yield from cv.signal()             # wakes nobody; no corpse
            yield from m.exit()
            yield from unistd.exit(0)

        run_program(main, ncpus=2)
        return observed

    def test_mutex_is_not_half_reacquired(self):
        observed = self._run()
        assert observed["acquired"] is None        # plain acquire
        assert observed["owner_dead"] is False

    def test_corpse_leaves_the_cv_sleep_queue(self):
        observed = self._run()
        assert observed["cv_waiters"] == []
        victim = observed["victim"]
        assert victim.crashed and victim.state is ThreadState.ZOMBIE
        assert victim.wait_queue is None


class TestCrashInAccept:
    def test_process_survives_an_acceptor_crash(self):
        observed = {}

        def acceptor(_):
            ctx = yield GetContext()
            observed["victim"] = ctx.thread
            lfd = yield from unistd.socket()
            yield from unistd.bind(lfd, 9321)
            yield from unistd.listen(lfd, 2)
            observed["lfd"] = lfd
            conn = yield from unistd.accept(lfd)   # parks; crash lands here
            observed["accepted"] = conn            # never reached

        def main():
            ctx = yield GetContext()
            yield from threads.thread_create(
                acceptor, None, flags=threads.THREAD_BIND_LWP)
            yield from libc.compute(2_000.0)       # acceptor is parked

            def kill():
                victim = observed["victim"]
                if victim.lwp is not None:
                    ctx.kernel.crash_lwp(victim.lwp)

            ctx.engine.call_after(usec(1_000.0), kill)
            yield from libc.compute(5_000.0)
            # The process keeps running; the listener is still ours to
            # close, and closing it is an ordinary close.
            yield from unistd.close(observed["lfd"])
            observed["alive"] = True
            yield from unistd.exit(0)

        run_program(main, ncpus=2)
        assert observed["alive"] is True
        assert "accepted" not in observed
        victim = observed["victim"]
        assert victim.crashed and victim.exit_status == CRASHED_STATUS


class TestLastLwpCrashIsProcessDeath:
    def _run(self):
        observed = {"order": []}

        def child_main():
            while True:
                yield from libc.compute(500.0)

        def main():
            def on_sigchld(sig):
                observed["order"].append("sigchld")

            yield from unistd.sigaction(int(Sig.SIGCHLD), on_sigchld)
            pid = yield from unistd.fork1(child_main)
            observed["child_pid"] = pid
            # The handled SIGCHLD interrupts the blocking waitpid —
            # classic UNIX EINTR — so reap with the canonical retry loop.
            while True:
                try:
                    reaped = yield from unistd.waitpid(pid)
                except SyscallError as err:
                    if err.errno is Errno.EINTR:
                        continue
                    raise
                break
            observed["order"].append("reaped")
            observed["reaped"] = reaped

        plan = FaultPlan([LwpCrash(5_000.0, pid=2, lwp_id=1)])
        run_program(main, ncpus=2, faults=plan)
        return observed

    def test_waitpid_reports_crash_status(self):
        observed = self._run()
        pid, status = observed["reaped"]
        assert pid == observed["child_pid"]
        assert status == CRASHED_STATUS            # 128 + SIGABRT

    def test_sigchld_arrives_before_waitpid_returns(self):
        observed = self._run()
        assert observed["order"] == ["sigchld", "reaped"]
