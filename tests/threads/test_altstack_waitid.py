"""Tests for alternate signal stacks and the waitid thread interface."""

import pytest

from repro.errors import Errno, SyscallError, ThreadError
from repro.hw.isa import Syscall
from repro.runtime import unistd
from repro import threads
from tests.conftest import run_program


class TestAltStack:
    def test_bound_thread_may_install(self):
        got = {}

        def bound(_):
            old = yield from threads.thread_sigaltstack(
                {"base": 0x8000_0000, "size": 8192})
            got["old"] = old
            me = yield from threads.current_thread()
            got["enabled"] = me.lwp.altstack_enabled

        def main():
            tid = yield from threads.thread_create(
                bound, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got["old"] is None
        assert got["enabled"]

    def test_unbound_thread_rejected(self):
        """"Threads that are not bound to LWPs may not use alternate
        signal stacks."""
        def main():
            with pytest.raises(ThreadError, match="bound"):
                yield from threads.thread_sigaltstack({"size": 8192})

        run_program(main)

    def test_disable(self):
        def bound(_):
            yield from threads.thread_sigaltstack({"size": 8192})
            yield from threads.thread_sigaltstack(disable=True)
            me = yield from threads.current_thread()
            assert not me.lwp.altstack_enabled

        def main():
            tid = yield from threads.thread_create(
                bound, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)


class TestWaitid:
    def test_p_thread_waits_specific(self):
        got = []

        def worker(_):
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            result = yield from threads.thread_waitid(threads.P_THREAD,
                                                      tid)
            got.append(result == tid)

        run_program(main)
        assert got == [True]

    def test_p_thread_all_waits_any(self):
        got = []

        def worker(_):
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            result = yield from threads.thread_waitid(
                threads.P_THREAD_ALL)
            got.append(result == tid)

        run_program(main)
        assert got == [True]

    def test_bad_id_type_rejected(self):
        def main():
            with pytest.raises(ThreadError):
                yield from threads.thread_waitid(999, 1)

        run_program(main)

    def test_kernel_rejects_thread_id_types(self):
        """The kernel half: waitid(P_THREAD) is a library service, and
        the kernel says so."""
        caught = []

        def main():
            try:
                yield Syscall("waitid", 100, 1)
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.EINVAL]

    def test_kernel_waitid_p_pid_still_works(self):
        got = []

        def kid():
            yield from unistd.exit(7)

        def main():
            pid = yield from unistd.fork1(kid)
            result = yield Syscall("waitid", 0, pid)  # P_PID
            got.append(result)

        run_program(main)
        assert got[0][1] == 7
