"""Unit tests for the shared EAGAIN backoff loop (repro.threads.backoff).

The schedule is pure virtual time, so the tests can assert the *exact*
capped-exponential delay sequence by timestamping each attempt.
"""

import pytest

from repro.errors import Errno, LwpExhausted, SyscallError
from repro.runtime import unistd
from repro.threads import backoff
from tests.conftest import run_program


def _flaky(fails: int, stamps: list):
    """Attempt factory failing EAGAIN ``fails`` times, stamping each try."""
    state = {"calls": 0}

    def attempt():
        now = yield from unistd.gettimeofday()
        stamps.append(now)
        state["calls"] += 1
        if state["calls"] <= fails:
            raise SyscallError(Errno.EAGAIN, "flaky")
        return state["calls"]

    return attempt


class TestRetryOnEagain:
    def test_returns_value_after_transient_failures(self):
        got, stamps = {}, []

        def main():
            got["value"] = yield from backoff.retry_on_eagain(
                _flaky(3, stamps), attempts=6)

        run_program(main)
        assert got["value"] == 4
        assert len(stamps) == 4

    def test_delay_sequence_doubles_up_to_cap(self):
        stamps = []

        def main():
            yield from backoff.retry_on_eagain(
                _flaky(5, stamps), attempts=8, base_usec=100.0,
                factor=2.0, max_delay_usec=400.0)

        run_program(main)
        # Five retries: 100, 200, 400, 400, 400 us (capped).  Each gap
        # also carries a constant syscall-service overhead, so assert on
        # the *differences* between consecutive gaps, which cancel it.
        gaps = [(b - a) / 1000.0 for a, b in zip(stamps, stamps[1:])]
        assert gaps[0] >= 100.0
        deltas = [round(b - a) for a, b in zip(gaps, gaps[1:])]
        assert deltas == [100, 200, 0, 0]

    def test_budget_exhaustion_raises_the_last_eagain(self):
        stamps = []

        def main():
            with pytest.raises(SyscallError) as exc:
                yield from backoff.retry_on_eagain(
                    _flaky(99, stamps), attempts=3)
            assert exc.value.errno == Errno.EAGAIN

        run_program(main)
        assert len(stamps) == 3

    def test_non_eagain_propagates_immediately(self):
        stamps = []

        def attempt():
            now = yield from unistd.gettimeofday()
            stamps.append(now)
            raise SyscallError(Errno.EINVAL, "broken")

        def main():
            with pytest.raises(SyscallError) as exc:
                yield from backoff.retry_on_eagain(attempt, attempts=5)
            assert exc.value.errno == Errno.EINVAL

        run_program(main)
        assert len(stamps) == 1

    def test_on_retry_hook_sees_one_based_counts(self):
        seen = []

        def main():
            yield from backoff.retry_on_eagain(
                _flaky(3, []), attempts=6,
                on_retry=lambda n: seen.append(n))

        run_program(main)
        assert seen == [1, 2, 3]

    def test_unbounded_mode_retries_until_success(self):
        got = {}

        def main():
            got["value"] = yield from backoff.retry_on_eagain(
                _flaky(20, []), attempts=None, base_usec=10.0)

        run_program(main)
        assert got["value"] == 21


class TestLwpCreateBackoff:
    def test_exhaustion_is_typed(self):
        from repro import FaultPlan, SyscallFault

        def main():
            with pytest.raises(LwpExhausted):
                yield from backoff.lwp_create_backoff(
                    attempts=3, base_usec=10.0)

        plan = FaultPlan([SyscallFault("lwp_create", "EAGAIN",
                                       probability=1.0)])
        run_program(main, faults=plan)
