"""Tests for thread_wait and thread ID lifecycle rules."""

import pytest

from repro.errors import ThreadError
from repro.runtime import unistd
from repro import threads
from tests.conftest import run_program


class TestWaitSemantics:
    def test_wait_returns_target_id(self):
        got = []

        def worker(_):
            yield from unistd.sleep_usec(1_000)

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            got.append((yield from threads.thread_wait(tid)))

        run_program(main)
        assert got and got[0] == got[0]

    def test_wait_on_already_dead_thread(self):
        def worker(_):
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from unistd.sleep_usec(5_000)  # let it die first
            got = yield from threads.thread_wait(tid)
            assert got == tid

        run_program(main)

    def test_wait_without_flag_is_error(self):
        def worker(_):
            yield from unistd.sleep_usec(1_000)

        def main():
            tid = yield from threads.thread_create(worker, None)
            with pytest.raises(ThreadError):
                yield from threads.thread_wait(tid)
            yield from unistd.sleep_usec(5_000)

        run_program(main, check_deadlock=False)

    def test_wait_for_self_is_error(self):
        def main():
            me = yield from threads.thread_get_id()
            with pytest.raises(ThreadError):
                yield from threads.thread_wait(me)

        run_program(main)

    def test_double_wait_is_error(self):
        def worker(_):
            yield from unistd.sleep_usec(20_000)

        def waiter(tid):
            yield from threads.thread_wait(tid)

        def main():
            # Extra LWPs so the sleeping worker does not monopolize the
            # pool while the waiter claims its wait.
            yield from threads.thread_setconcurrency(3)
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            w1 = yield from threads.thread_create(
                waiter, tid, flags=threads.THREAD_WAIT)
            # Let the waiter run far enough to claim the wait.
            yield from threads.thread_yield()
            yield from unistd.sleep_usec(1_000)
            with pytest.raises(ThreadError):
                yield from threads.thread_wait(tid)
            yield from threads.thread_wait(w1)

        run_program(main)

    def test_wait_any(self):
        """thread_wait(None) returns when any THREAD_WAIT thread exits."""
        got = []

        def worker(delay):
            yield from unistd.sleep_usec(delay)

        def main():
            # Both sleepers need their own LWP to sleep concurrently
            # (bounded sleeps do not trigger SIGWAITING growth).
            yield from threads.thread_setconcurrency(3)
            slow = yield from threads.thread_create(
                worker, 50_000, flags=threads.THREAD_WAIT)
            fast = yield from threads.thread_create(
                worker, 1_000, flags=threads.THREAD_WAIT)
            first = yield from threads.thread_wait(None)
            got.append(("first", first == fast))
            second = yield from threads.thread_wait(None)
            got.append(("second", second == slow))

        run_program(main)
        assert got == [("first", True), ("second", True)]

    def test_wait_any_with_nothing_waitable_is_error(self):
        def main():
            with pytest.raises(ThreadError):
                yield from threads.thread_wait(None)

        run_program(main)


class TestIdReuse:
    def test_non_waitable_id_reused_after_exit(self):
        """"If the thread is not created with THREAD_WAIT, the thread ID
        may be reused at any time after the thread exits."""
        ids = []

        def worker(_):
            return
            yield

        def main():
            a = yield from threads.thread_create(worker, None)
            yield from threads.thread_yield()  # let it run and exit
            b = yield from threads.thread_create(worker, None)
            ids.extend([a, b])
            yield from threads.thread_yield()

        run_program(main, check_deadlock=False)
        assert ids[0] == ids[1]

    def test_waitable_id_not_reused_until_wait(self):
        """"the thread ID of a thread created with THREAD_WAIT will not
        be reused until the waiting thread returns"."""
        ids = []

        def worker(_):
            return
            yield

        def main():
            a = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from unistd.sleep_usec(5_000)  # a exits, unclaimed
            b = yield from threads.thread_create(worker, None)
            assert b != a  # still reserved
            got = yield from threads.thread_wait(a)
            assert got == a
            c = yield from threads.thread_create(worker, None)
            ids.append((a, c))
            yield from unistd.sleep_usec(5_000)

        run_program(main, check_deadlock=False)
        a, c = ids[0]
        assert c == a  # now reusable

    def test_id_unusable_after_successful_wait(self):
        """"the returned thread_id is unusable in any subsequent thread
        operation"."""
        def worker(_):
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            with pytest.raises(ThreadError):
                yield from threads.thread_kill(tid, 16)

        run_program(main)


class TestProcessExit:
    def test_last_thread_exit_ends_process(self):
        def main():
            return
            yield

        sim, proc = run_program(main)
        from repro.kernel.process import ProcState
        assert proc.state in (ProcState.ZOMBIE, ProcState.REAPED)
        assert proc.exit_status == 0

    def test_explicit_thread_exit_from_main(self):
        after = []

        def main():
            yield from threads.thread_exit()
            after.append("unreachable")

        sim, proc = run_program(main)
        assert after == []
        assert proc.exit_status == 0

    def test_main_may_exit_while_workers_run_on(self):
        """The process lives until the *last* thread exits, not until
        main does."""
        got = []

        def worker(_):
            yield from unistd.sleep_usec(10_000)
            got.append("worker finished")

        def main():
            yield from threads.thread_create(worker, None)
            yield from threads.thread_exit()

        run_program(main)
        assert got == ["worker finished"]
