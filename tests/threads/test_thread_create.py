"""Tests for thread_create and its flags."""

import pytest

from repro.errors import ThreadError
from repro.hw.isa import Charge, Syscall
from repro.runtime import unistd
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


class TestBasics:
    def test_body_receives_arg(self):
        got = []

        def worker(arg):
            got.append(arg)
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                worker, {"payload": 9}, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == [{"payload": 9}]

    def test_ids_unique_among_live(self):
        def worker(_):
            yield from unistd.sleep_usec(5_000)

        seen = []

        def main():
            for _ in range(5):
                tid = yield from threads.thread_create(worker, None)
                seen.append(tid)
            yield from unistd.sleep_usec(20_000)

        run_program(main, check_deadlock=False)
        assert len(set(seen)) == 5

    def test_main_thread_is_id_1(self):
        got = []

        def main():
            got.append((yield from threads.thread_get_id()))

        run_program(main)
        assert got == [1]

    def test_returning_body_exits_thread(self):
        """"If func returns, the thread exits (calls thread_exit())."""
        def worker(_):
            return "done"
            yield

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            got = yield from threads.thread_wait(tid)
            assert got == tid

        sim, proc = run_program(main)
        assert proc.exit_status == 0

    def test_priority_inherited_from_creator(self):
        got = []

        def worker(_):
            ctx = yield from threads.current_thread()
            got.append(ctx.priority)

        def main():
            yield from threads.thread_priority(None, 44)
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == [44]

    def test_sigmask_inherited_from_creator(self):
        from repro.kernel.signals import SIG_BLOCK, Sig, Sigset
        got = []

        def worker(_):
            me = yield from threads.current_thread()
            got.append(Sig.SIGUSR1 in me.sigmask)

        def main():
            yield from threads.thread_sigsetmask(
                SIG_BLOCK, Sigset([Sig.SIGUSR1]))
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == [True]


class TestCreationCosts:
    def test_unbound_creation_needs_no_kernel(self):
        """The headline property: thread creation without kernel entry."""
        def worker(_):
            return
            yield

        def main():
            for _ in range(10):
                yield from threads.thread_create(worker, None)
            yield from unistd.sleep_usec(2_000)

        sim, _ = run_program(main, check_deadlock=False)
        counts = sim.syscall_counts()
        assert "lwp_create" not in counts

    def test_bound_creation_calls_lwp_create(self):
        def worker(_):
            return
            yield

        def main():
            yield from threads.thread_create(
                worker, None, flags=threads.THREAD_BIND_LWP)
            yield from unistd.sleep_usec(5_000)

        sim, _ = run_program(main, ncpus=2, check_deadlock=False)
        assert sim.syscall_counts()["lwp_create"] == 1

    def test_creation_cost_ratio_matches_figure5(self):
        """Bound/unbound creation ratio ≈ 42x (paper's Figure 5)."""
        times = {}

        def worker(_):
            return
            yield

        def main():
            t0 = yield Syscall("gettimeofday")
            for _ in range(20):
                yield from threads.thread_create(worker, None)
            t1 = yield Syscall("gettimeofday")
            for _ in range(20):
                yield from threads.thread_create(
                    worker, None, flags=threads.THREAD_BIND_LWP)
            t2 = yield Syscall("gettimeofday")
            times["unbound"] = (t1 - t0) / 20
            times["bound"] = (t2 - t1) / 20

        run_program(main, ncpus=4, check_deadlock=False)
        ratio = times["bound"] / times["unbound"]
        assert 30 <= ratio <= 50


class TestFlags:
    def test_thread_stop_creates_suspended(self):
        got = []

        def worker(_):
            got.append("ran")
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                worker, None,
                flags=threads.THREAD_STOP | threads.THREAD_WAIT)
            yield from unistd.sleep_usec(5_000)
            assert got == []  # has not run
            yield from threads.thread_continue(tid)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == ["ran"]

    def test_thread_new_lwp_grows_pool(self):
        got = {}

        def worker(_):
            return
            yield

        def main():
            from repro.hw.isa import GetContext
            ctx = yield GetContext()
            before = len(ctx.process.threadlib.pool_lwps)
            yield from threads.thread_create(
                worker, None, flags=threads.THREAD_NEW_LWP)
            yield from unistd.sleep_usec(5_000)
            got["before"] = before
            got["after"] = len(ctx.process.threadlib.pool_lwps)

        run_program(main, ncpus=2, check_deadlock=False)
        assert got["after"] == got["before"] + 1

    def test_bound_stop_combo(self):
        got = []

        def worker(_):
            got.append("bound ran")
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                worker, None,
                flags=(threads.THREAD_STOP | threads.THREAD_BIND_LWP
                       | threads.THREAD_WAIT))
            yield from unistd.sleep_usec(5_000)
            assert got == []
            yield from threads.thread_continue(tid)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got == ["bound ran"]

    def test_bound_thread_rides_dedicated_lwp(self):
        got = {}

        def worker(_):
            me = yield from threads.current_thread()
            got["lwp"] = me.lwp
            got["bound_back"] = me.lwp.bound_thread is me

        def main():
            tid = yield from threads.thread_create(
                worker, None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert got["bound_back"]


class TestStacks:
    def test_caller_supplied_stack(self):
        got = {}

        def worker(_):
            me = yield from threads.current_thread()
            got["stack"] = me.stack

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT,
                stack_addr=0x9000_0000, stack_size=16 * 1024)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got["stack"].caller_supplied
        assert got["stack"].size == 16 * 1024
        # TLS placed on the caller's stack, per the paper.
        assert got["stack"].tls_reserved > 0

    def test_caller_stack_needs_size(self):
        def main():
            with pytest.raises(ValueError):
                yield from threads.thread_create(
                    lambda _: None, None, stack_addr=0x9000_0000)

        run_program(main)

    def test_default_stacks_recycled_through_cache(self):
        got = {}

        def worker(_):
            return
            yield

        def main():
            from repro.hw.isa import GetContext
            ctx = yield GetContext()
            alloc = ctx.process.threadlib.stack_alloc
            for _ in range(3):
                tid = yield from threads.thread_create(
                    worker, None, flags=threads.THREAD_WAIT)
                yield from threads.thread_wait(tid)
            got["hits"] = alloc.cache_hits
            got["misses"] = alloc.cache_misses

        run_program(main)
        assert got["hits"] >= 2  # second and third creations hit the cache
