"""White-box tests for the ThreadsLibrary scheduler internals."""

import pytest

from repro.hw.isa import GetContext
from repro.runtime import unistd
from repro.threads.scheduler import (KEEP_VALUE, NO_SLEEP,
                                     _ThreadRunQueue)
from repro.threads.thread import Thread, ThreadState
from repro import threads
from tests.conftest import run_program


class FakeThread:
    def __init__(self, prio):
        self.priority = prio


class TestThreadRunQueue:
    def test_priority_order(self):
        q = _ThreadRunQueue()
        lo, hi = FakeThread(5), FakeThread(50)
        q.insert(lo)
        q.insert(hi)
        assert q.pop_best() is hi
        assert q.pop_best() is lo
        assert q.pop_best() is None

    def test_fifo_within_priority(self):
        q = _ThreadRunQueue()
        a, b = FakeThread(10), FakeThread(10)
        q.insert(a)
        q.insert(b)
        assert q.pop_best() is a

    def test_front_insert(self):
        q = _ThreadRunQueue()
        a, b = FakeThread(10), FakeThread(10)
        q.insert(a)
        q.insert(b, front=True)
        assert q.pop_best() is b

    def test_remove(self):
        q = _ThreadRunQueue()
        a = FakeThread(10)
        q.insert(a)
        assert a in q
        assert q.remove(a)
        assert not q.remove(a)
        assert len(q) == 0


class TestLibraryBookkeeping:
    def _lib(self):
        holder = {}

        def main():
            ctx = yield GetContext()
            holder["lib"] = ctx.process.threadlib
            holder["ctx"] = ctx

        run_program(main)
        return holder["lib"]

    def test_id_recycling_freelist(self):
        lib = self._lib()
        a = lib.new_thread_id()
        b = lib.new_thread_id()
        assert a != b

        class T:
            thread_id = a
        lib.threads[a] = T()
        lib.retire_id(T())
        assert lib.new_thread_id() == a  # recycled

    def test_retire_unknown_id_harmless(self):
        lib = self._lib()

        class T:
            thread_id = 999
        lib.retire_id(T())  # no KeyError, no freelist pollution
        assert 999 not in lib._free_ids

    def test_snapshot_shape(self):
        lib = self._lib()
        snap = lib.snapshot()
        for key in ("threads", "live", "runq", "pool_lwps", "parked",
                    "user_switches", "stack_cache"):
            assert key in snap


class TestWakeSemantics:
    def test_wake_from_queue_respects_count(self):
        woken = []

        def sleeper(args):
            q, tag = args
            from repro.hw.isa import GetContext as GC
            ctx = yield GC()
            lib = ctx.process.threadlib
            yield from lib.block_current_on(q)
            woken.append(tag)

        def main():
            ctx = yield GetContext()
            lib = ctx.process.threadlib
            q = []
            tids = []
            for tag in range(3):
                tid = yield from threads.thread_create(
                    sleeper, (q, tag), flags=threads.THREAD_WAIT)
                tids.append(tid)
                yield from threads.thread_yield()
            n = yield from lib.wake_from_queue(q, n=2)
            assert n == 2
            yield from threads.thread_yield()
            assert len(woken) == 2
            yield from lib.wake_from_queue(q, n=5)
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main)
        assert sorted(woken) == [0, 1, 2]

    def test_guard_veto_returns_no_sleep(self):
        outcomes = []

        def main():
            ctx = yield GetContext()
            lib = ctx.process.threadlib
            q = []
            result = yield from lib.block_current_on(
                q, guard=lambda: False)
            outcomes.append(result is NO_SLEEP)
            assert q == []  # never enqueued

        run_program(main)
        assert outcomes == [True]

    def test_keep_value_preserves_stored_resume(self):
        """thread_continue's KEEP sentinel must not clobber a wake value
        stored while the thread was stopped."""
        got = []

        def sleeper(q):
            from repro.hw.isa import GetContext as GC
            ctx = yield GC()
            lib = ctx.process.threadlib
            value = yield from lib.block_current_on(q)
            got.append(value)

        def main():
            ctx = yield GetContext()
            lib = ctx.process.threadlib
            q = []
            tid = yield from threads.thread_create(
                sleeper, q, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()
            yield from threads.thread_stop(tid)
            # Wake with a payload while stopped: value must survive.
            n = yield from lib.wake_from_queue(q, n=1, value="payload")
            assert n == 1
            yield from threads.thread_yield()
            assert got == []  # still stopped
            yield from threads.thread_continue(tid)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == ["payload"]


class TestPoolAccounting:
    def test_parked_list_tracks_idle_lwps(self):
        got = {}

        def main():
            ctx = yield GetContext()
            lib = ctx.process.threadlib
            yield from threads.thread_setconcurrency(3)
            yield from unistd.sleep_usec(2_000)  # extras park
            got["parked"] = len(lib.parked)
            got["pool"] = len(lib.pool_lwps)

        run_program(main, ncpus=2, check_deadlock=False)
        assert got["pool"] == 3
        assert got["parked"] == 2  # all but the one running main

    def test_user_switch_counter(self):
        def worker(_):
            yield from threads.thread_yield()

        def main():
            ctx = yield GetContext()
            lib = ctx.process.threadlib
            before = lib.user_switches
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            assert lib.user_switches > before

        run_program(main)
