"""Supervision layer: restarts, budgets, policies, watchdog.

The Supervisor is passive when healthy (no monitor thread, no events);
everything here therefore drives it through real crashes —
``kernel.crash_lwp`` scheduled from engine timers, exactly what a
``CrashStorm`` fault rule does — and asserts on the ``sup-*`` event
stream plus the specs' own counters.
"""

from repro.api import Simulator
from repro.errors import Errno
from repro.hw.isa import GetContext
from repro.runtime import libc, unistd
from repro.sim.clock import usec
from repro.sync import CondVar, Mutex
from repro import threads
from repro.threads import Supervisor


class _SupEvents:
    """Listener capturing the supervision event stream."""

    def __init__(self):
        self.events = []

    def on_sync(self, ctx, op, sv, detail):
        if op.startswith("sup-") or op == "thread-crash":
            self.events.append((op, detail.get("child")
                                or getattr(ctx.thread, "name", None)))


def _run(main, ncpus=2, max_events=2_000_000):
    sim = Simulator(ncpus=ncpus)
    listener = _SupEvents()
    sim.engine.sync_listeners.append(listener)
    proc = sim.spawn(main)
    sim.run(max_events=max_events)
    return sim, proc, listener.events


class TestOneForOneRestart:
    def _run(self):
        state = {"incarnations": 0, "spec": None}
        sup = Supervisor(backoff_base_usec=100.0)

        def child(arg):
            state["incarnations"] += 1
            for _ in range(40):
                yield from libc.compute(100.0)

        def main():
            ctx = yield GetContext()
            spec = yield from sup.spawn(child, "payload", name="kid",
                                        flags=threads.THREAD_NEW_LWP)
            state["spec"] = spec

            def kill():
                t = spec.thread
                if t is not None and t.lwp is not None:
                    ctx.kernel.crash_lwp(t.lwp)

            ctx.engine.call_after(usec(1_000.0), kill)
            while not (spec.done or spec.gave_up):
                yield from libc.compute(200.0)
            sup.drain()

        sim, proc, events = _run(main)
        return state, events

    def test_child_is_restarted_and_completes(self):
        state, events = self._run()
        spec = state["spec"]
        assert state["incarnations"] == 2       # original + one respawn
        assert spec.restarts == 1
        assert spec.done and not spec.gave_up
        assert ("thread-crash", "kid") in events
        assert ("sup-restart", "kid") in events

    def test_restart_is_announced_after_the_crash(self):
        _, events = self._run()
        crash = events.index(("thread-crash", "kid"))
        restart = events.index(("sup-restart", "kid"))
        assert crash < restart


class TestGiveUp:
    def _run(self):
        state = {"give_up": None}
        sup = Supervisor(max_restarts=1, backoff_base_usec=100.0,
                         on_give_up=lambda spec, dead, kernel:
                         state.__setitem__("give_up", spec.name))

        def child(_):
            while True:
                yield from libc.compute(100.0)

        def main():
            ctx = yield GetContext()
            spec = yield from sup.spawn(child, None, name="doomed",
                                        flags=threads.THREAD_NEW_LWP)
            state["spec"] = spec

            def kill():
                t = spec.thread
                if t is not None and t.lwp is not None:
                    ctx.kernel.crash_lwp(t.lwp)
                if not spec.gave_up:
                    ctx.engine.call_after(usec(500.0), kill)

            ctx.engine.call_after(usec(500.0), kill)
            while not spec.gave_up:
                yield from libc.compute(200.0)
            sup.drain()
            yield from unistd.exit(0)

        sim, proc, events = _run(main)
        return state, events

    def test_budget_exhaustion_escalates(self):
        state, events = self._run()
        spec = state["spec"]
        assert spec.gave_up
        assert spec.restarts == 1               # budget was 1
        assert state["give_up"] == "doomed"
        assert ("sup-give-up", "doomed") in events
        # No restart after the give-up.
        give_up = events.index(("sup-give-up", "doomed"))
        assert ("sup-restart", "doomed") not in events[give_up:]


class TestOneForAll:
    def test_sibling_dies_and_restarts_with_the_victim(self):
        state = {"starts": []}
        sup = Supervisor(policy="one-for-all", backoff_base_usec=100.0)

        def child(tag):
            state["starts"].append(tag)
            for _ in range(60):
                yield from libc.compute(100.0)

        def main():
            ctx = yield GetContext()
            a = yield from sup.spawn(child, "a", name="child-a",
                                     flags=threads.THREAD_NEW_LWP)
            b = yield from sup.spawn(child, "b", name="child-b",
                                     flags=threads.THREAD_NEW_LWP)
            state["a"], state["b"] = a, b

            def kill():
                # Let both originals run first — one-for-all would
                # legitimately also reap a never-dispatched sibling, but
                # this test wants the full kill-and-respawn round trip.
                if "b" not in state["starts"] or "a" not in state["starts"]:
                    ctx.engine.call_after(usec(500.0), kill)
                    return
                t = a.thread
                if t is not None and t.lwp is not None:
                    ctx.kernel.crash_lwp(t.lwp)

            ctx.engine.call_after(usec(1_000.0), kill)
            while not all(s.done or s.gave_up for s in (a, b)):
                yield from libc.compute(200.0)
            sup.drain()

        sim, proc, events = _run(main, ncpus=3)
        # One crash, but BOTH children were torn down and restarted.
        assert state["a"].restarts == 1
        assert state["b"].restarts == 1
        assert state["starts"].count("a") == 2
        assert state["starts"].count("b") == 2
        assert ("sup-restart", "child-a") in events
        assert ("sup-restart", "child-b") in events


class TestRestartArgHandover:
    def test_respawn_receives_the_chosen_argument(self):
        state = {"args": []}
        sup = Supervisor(backoff_base_usec=100.0,
                         restart_arg=lambda spec, dead: "handover")

        def child(arg):
            state["args"].append(arg)
            for _ in range(40):
                yield from libc.compute(100.0)

        def main():
            ctx = yield GetContext()
            spec = yield from sup.spawn(child, "original", name="kid",
                                        flags=threads.THREAD_NEW_LWP)

            def kill():
                t = spec.thread
                if t is not None and t.lwp is not None:
                    ctx.kernel.crash_lwp(t.lwp)

            ctx.engine.call_after(usec(1_000.0), kill)
            while not (spec.done or spec.gave_up):
                yield from libc.compute(200.0)
            sup.drain()

        _run(main)
        assert state["args"] == ["original", "handover"]


class TestWatchdog:
    def _run(self):
        state = {}
        m = Mutex(name="wedge-lock")
        cv = CondVar(name="never-signaled")
        sup = Supervisor(max_restarts=0, heartbeat_timeout_usec=2_000.0)

        def child(_):
            # Heartbeat once, then wedge forever on a cv nobody signals.
            sup.heartbeat(state["spec"])
            yield from m.enter()
            while True:
                yield from cv.wait(m)

        def main():
            spec = yield from sup.spawn(child, None, name="hung",
                                        flags=threads.THREAD_NEW_LWP)
            state["spec"] = spec
            while not spec.gave_up:
                yield from libc.compute(500.0)
            sup.drain()
            yield from unistd.exit(0)

        sim, proc, events = _run(main)
        return state, events

    def test_silent_child_is_killed_and_reported(self):
        state, events = self._run()
        assert ("sup-watchdog-kill", "hung") in events
        # Budget 0: the watchdog kill escalates straight to give-up.
        assert state["spec"].gave_up
        assert ("sup-give-up", "hung") in events

    def test_watchdog_kill_names_the_blocking_resource(self):
        sim_events = []

        class L:
            def on_sync(self, ctx, op, sv, detail):
                if op == "sup-watchdog-kill":
                    sim_events.append(detail.get("waiting_on"))

        state = {}
        m = Mutex(name="wedge-lock")
        cv = CondVar(name="never-signaled")
        sup = Supervisor(max_restarts=0, heartbeat_timeout_usec=2_000.0)

        def child(_):
            sup.heartbeat(state["spec"])
            yield from m.enter()
            while True:
                yield from cv.wait(m)

        def main():
            spec = yield from sup.spawn(child, None, name="hung",
                                        flags=threads.THREAD_NEW_LWP)
            state["spec"] = spec
            while not spec.gave_up:
                yield from libc.compute(500.0)
            sup.drain()
            yield from unistd.exit(0)

        sim = Simulator(ncpus=2)
        sim.engine.sync_listeners.append(L())
        sim.spawn(main)
        sim.run()
        assert sim_events and "never-signaled" in sim_events[0]


class TestPassiveWhenHealthy:
    def test_healthy_run_emits_no_supervision_events(self):
        sup = Supervisor(backoff_base_usec=100.0)

        def child(arg):
            for _ in range(10):
                yield from libc.compute(100.0)

        def main():
            spec = yield from sup.spawn(
                child, None, name="calm",
                flags=threads.THREAD_WAIT | threads.THREAD_NEW_LWP)
            while not spec.done:
                yield from libc.compute(200.0)
            sup.drain()

        sim, proc, events = _run(main)
        assert events == []
        assert sup.children[0].restarts == 0


class TestSpawnRacesChildLifetime:
    """Regression: a non-waitable child can live its ENTIRE life inside
    the creator's ``thread_create`` tail (other CPUs run it while the
    creator pays the THREAD_NEW_LWP growth charges), retiring its own
    thread id before ``spawn`` resumes — and with a storm running, the
    id may even be gone because the child crashed before adoption.
    ``spawn`` must survive both, not KeyError on the retired id."""

    def test_spawn_survives_children_faster_than_creation(self):
        from repro import CrashStorm, FaultPlan
        from repro.api import Simulator
        from repro.errors import Errno

        done = []
        sup = Supervisor(backoff_base_usec=200.0)
        m = Mutex(name="estate")

        def worker(tag):
            res = yield from m.enter()
            if res is Errno.EOWNERDEAD:
                m.consistent()
            yield from libc.compute(1_500.0)
            yield from m.exit()
            done.append(tag)

        def main():
            specs = []
            for i in range(3):
                spec = yield from sup.spawn(
                    worker, f"job-{i}", name=f"worker-{i}",
                    flags=threads.THREAD_NEW_LWP)
                specs.append(spec)
            while not all(s.done or s.gave_up for s in specs):
                yield from libc.compute(300.0)
            sup.drain()
            yield from unistd.exit(0)

        # seed 11 + these exact rates made the pre-fix spawn KeyError
        # on a retired thread id (child crashed mid-create).
        storm = CrashStorm(start_usec=500.0, interval_usec=800.0,
                           count=2, target="worker-*")
        sim = Simulator(ncpus=2, seed=11, faults=FaultPlan([storm]))
        sim.spawn(main)
        sim.run(max_events=2_000_000)
        assert sorted(done) == ["job-0", "job-1", "job-2"]
        assert storm.killed >= 1
        assert sum(s.restarts for s in sup.children) >= 1
