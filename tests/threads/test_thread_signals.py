"""Tests for thread-level signal semantics: thread_kill as a trap,
per-thread masks, interrupt distribution, sigsend extensions."""

import pytest

from repro.errors import ThreadError
from repro.hw.isa import Charge, Syscall
from repro.kernel.signals import SIG_BLOCK, SIG_UNBLOCK, Sig, Sigset
from repro.kernel.syscalls.signal_calls import P_THREAD, P_THREAD_ALL
from repro.runtime import unistd
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


class TestThreadKill:
    def test_only_target_thread_handles(self):
        """"the signal behaves like a trap and can be handled only by the
        specified thread"."""
        handled_by = []

        def handler(sig):
            me = yield from threads.thread_get_id()
            handled_by.append(me)

        def victim(_):
            for _ in range(20):
                yield from threads.thread_yield()

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            tid = yield from threads.thread_create(
                victim, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_kill(tid, int(Sig.SIGUSR1))
            yield from threads.thread_wait(tid)

        run_program(main)
        assert handled_by and all(h != 1 for h in handled_by)

    def test_kill_self_delivers_inline(self):
        order = []

        def handler(sig):
            order.append("handler")
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            me = yield from threads.thread_get_id()
            order.append("before")
            yield from threads.thread_kill(me, int(Sig.SIGUSR1))
            order.append("after")

        run_program(main)
        assert order == ["before", "handler", "after"]

    def test_kill_blocked_in_kernel_thread(self):
        """A thread blocked in a system call is temporarily bound to its
        LWP; thread_kill reaches it there (EINTR path)."""
        got = []

        def handler(sig):
            got.append("handled")
            yield Charge(usec(1))

        def sleeper(_):
            from repro.errors import SyscallError, Errno
            try:
                yield from unistd.nanosleep(usec(1_000_000))
            except SyscallError as err:
                got.append(err.errno == Errno.EINTR)

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            yield from threads.thread_setconcurrency(2)
            tid = yield from threads.thread_create(
                sleeper, None, flags=threads.THREAD_WAIT)
            yield from unistd.sleep_usec(2_000)
            yield from threads.thread_kill(tid, int(Sig.SIGUSR1))
            yield from threads.thread_wait(tid)

        run_program(main, ncpus=2)
        assert "handled" in got and True in got

    def test_kill_masked_thread_pends_on_thread(self):
        order = []

        def handler(sig):
            order.append("handled")
            yield Charge(usec(1))

        def victim(_):
            yield from threads.thread_sigsetmask(
                SIG_BLOCK, Sigset([Sig.SIGUSR1]))
            yield from threads.thread_yield()
            order.append("unmasking")
            yield from threads.thread_sigsetmask(
                SIG_UNBLOCK, Sigset([Sig.SIGUSR1]))
            order.append("after-unmask")

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            tid = yield from threads.thread_create(
                victim, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_yield()  # victim masks and yields
            yield from threads.thread_kill(tid, int(Sig.SIGUSR1))
            yield from threads.thread_wait(tid)

        run_program(main)
        assert order == ["unmasking", "handled", "after-unmask"]

    def test_kill_dead_thread_rejected(self):
        def worker(_):
            return
            yield

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            with pytest.raises(ThreadError):
                yield from threads.thread_kill(tid, int(Sig.SIGUSR1))

        run_program(main)


class TestSigsendExtensions:
    def test_p_thread_all_reaches_every_thread(self):
        handled_by = set()

        def handler(sig):
            me = yield from threads.thread_get_id()
            handled_by.add(me)

        def worker(_):
            for _ in range(10):
                yield from threads.thread_yield()

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR2), handler)
            tids = []
            for _ in range(2):
                tid = yield from threads.thread_create(
                    worker, None, flags=threads.THREAD_WAIT)
                tids.append(tid)
            yield Syscall("sigsend", P_THREAD_ALL, None, int(Sig.SIGUSR2))
            for tid in tids:
                yield from threads.thread_wait(tid)

        run_program(main)
        assert {2, 3}.issubset(handled_by) or len(handled_by) >= 2

    def test_p_thread_single_target(self):
        handled_by = []

        def handler(sig):
            me = yield from threads.thread_get_id()
            handled_by.append(me)

        def worker(_):
            for _ in range(10):
                yield from threads.thread_yield()

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR2), handler)
            t1 = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            t2 = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield Syscall("sigsend", P_THREAD, t2, int(Sig.SIGUSR2))
            yield from threads.thread_wait(t1)
            yield from threads.thread_wait(t2)

        run_program(main)
        assert handled_by == [3]


class TestInterruptDistribution:
    def test_interrupt_taken_by_unmasked_thread(self):
        """"An interrupt may be handled by any thread that has it enabled
        in its signal mask" — here exactly one thread leaves it open."""
        handled_by = []

        def handler(sig):
            me = yield from threads.thread_get_id()
            handled_by.append(me)

        def open_thread(_):
            # Masks are inherited from the creator (which blocked
            # SIGUSR1), so enable it explicitly before sleeping.
            yield from threads.thread_sigsetmask(
                SIG_UNBLOCK, Sigset([Sig.SIGUSR1]))
            from repro.errors import SyscallError
            try:
                yield from unistd.sleep_usec(50_000)
            except SyscallError:
                pass

        def masked_thread(_):
            yield from threads.thread_sigsetmask(
                SIG_BLOCK, Sigset([Sig.SIGUSR1]))
            from repro.errors import SyscallError
            try:
                yield from unistd.sleep_usec(50_000)
            except SyscallError:
                pass

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            yield from threads.thread_setconcurrency(3)
            # Main also masks it, so only open_thread is eligible.
            yield from threads.thread_sigsetmask(
                SIG_BLOCK, Sigset([Sig.SIGUSR1]))
            t1 = yield from threads.thread_create(
                masked_thread, None, flags=threads.THREAD_WAIT)
            t2 = yield from threads.thread_create(
                open_thread, None, flags=threads.THREAD_WAIT)
            yield from unistd.sleep_usec(5_000)
            me = yield from unistd.getpid()
            yield from unistd.kill(me, int(Sig.SIGUSR1))
            yield from threads.thread_wait(t1)
            yield from threads.thread_wait(t2)

        run_program(main, ncpus=2)
        assert handled_by == [3]  # the open thread's id

    def test_all_masked_signal_pends_on_process(self):
        """"If all threads mask a signal, it will pend on the process
        until a thread unmasks that signal."""
        order = []

        def handler(sig):
            order.append("handled")
            yield Charge(usec(1))

        def main():
            yield from unistd.sigaction(int(Sig.SIGUSR1), handler)
            yield from threads.thread_sigsetmask(
                SIG_BLOCK, Sigset([Sig.SIGUSR1]))
            me = yield from unistd.getpid()
            yield from unistd.kill(me, int(Sig.SIGUSR1))
            yield from unistd.sleep_usec(1_000)
            order.append("still-masked")
            yield from threads.thread_sigsetmask(
                SIG_UNBLOCK, Sigset([Sig.SIGUSR1]))
            yield from unistd.sleep_usec(100)

        run_program(main)
        assert order == ["still-masked", "handled"]

    def test_mask_change_returns_old_mask(self):
        got = []

        def main():
            old = yield from threads.thread_sigsetmask(
                SIG_BLOCK, Sigset([Sig.SIGUSR1]))
            got.append(Sig.SIGUSR1 in old)
            old = yield from threads.thread_sigsetmask(SIG_BLOCK, None)
            got.append(Sig.SIGUSR1 in old)

        run_program(main)
        assert got == [False, True]


class TestTrapsFollowThreads:
    def test_mask_travels_with_thread_across_switches(self):
        """The LWP's kernel-visible mask must always reflect the riding
        thread's mask."""
        observations = []

        def masked(_):
            yield from threads.thread_sigsetmask(
                SIG_BLOCK, Sigset([Sig.SIGUSR1]))
            for _ in range(3):
                me = yield from threads.current_thread()
                observations.append(
                    ("masked", Sig.SIGUSR1 in me.lwp.sigmask))
                yield from threads.thread_yield()

        def unmasked(_):
            for _ in range(3):
                me = yield from threads.current_thread()
                observations.append(
                    ("unmasked", Sig.SIGUSR1 in me.lwp.sigmask))
                yield from threads.thread_yield()

        def main():
            a = yield from threads.thread_create(
                masked, None, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                unmasked, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        run_program(main)
        for tag, lwp_masked in observations:
            assert lwp_masked == (tag == "masked")
