"""Tests for library-level preemptive time slicing (SIGVTALRM-driven)."""

import pytest

from repro.hw.isa import Charge
from repro.runtime import unistd
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


def _burner(progress, tag, chunks=15, chunk_usec=1_000):
    def body(_):
        for _ in range(chunks):
            yield Charge(usec(chunk_usec))  # never yields voluntarily
            t = yield from unistd.gettimeofday()
            progress.append((tag, t))
    return body


class TestTimeSlicing:
    def test_compute_threads_interleave_on_one_lwp(self):
        progress = []

        def main():
            yield from threads.thread_set_time_slicing(2_000)
            a = yield from threads.thread_create(
                _burner(progress, "a"), None, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                _burner(progress, "b"), None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        sim, proc = run_program(main, ncpus=1)
        tags = [tag for tag, _ in progress]
        # Interleaved: the tag sequence switches many times (not aaa..bbb).
        switches = sum(1 for x, y in zip(tags, tags[1:]) if x != y)
        assert switches >= 5
        assert proc.threadlib.preemptive_slices >= 5

    def test_without_slicing_threads_run_to_completion(self):
        progress = []

        def main():
            a = yield from threads.thread_create(
                _burner(progress, "a"), None, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                _burner(progress, "b"), None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        run_program(main, ncpus=1)
        tags = [tag for tag, _ in progress]
        switches = sum(1 for x, y in zip(tags, tags[1:]) if x != y)
        assert switches == 1  # a finishes entirely, then b

    def test_disable_restores_cooperative(self):
        progress = []

        def main():
            yield from threads.thread_set_time_slicing(2_000)
            yield from threads.thread_set_time_slicing(0)
            a = yield from threads.thread_create(
                _burner(progress, "a"), None, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                _burner(progress, "b"), None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        sim, proc = run_program(main, ncpus=1)
        tags = [tag for tag, _ in progress]
        switches = sum(1 for x, y in zip(tags, tags[1:]) if x != y)
        assert switches == 1
        assert proc.threadlib.preemptive_slices == 0

    def test_sliced_syscalls_do_not_see_eintr(self):
        """The handler is SA_RESTART: a sliced thread's sleep completes."""
        got = {}

        def sleeper(_):
            t0 = yield from unistd.gettimeofday()
            yield from unistd.nanosleep(usec(30_000))
            t1 = yield from unistd.gettimeofday()
            got["slept"] = (t1 - t0) / 1000

        def spinner(_):
            for _ in range(40):
                yield Charge(usec(1_000))

        def main():
            yield from threads.thread_set_time_slicing(1_000)
            yield from threads.thread_setconcurrency(2)
            a = yield from threads.thread_create(
                sleeper, None, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                spinner, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        run_program(main, ncpus=1)
        assert got["slept"] >= 30_000

    def test_bound_threads_not_sliced(self):
        """Bound threads own their LWP; the library does not preempt
        them (the kernel's dispatcher handles LWP-level sharing)."""
        progress = []

        def main():
            yield from threads.thread_set_time_slicing(2_000)
            a = yield from threads.thread_create(
                _burner(progress, "a"), None,
                flags=threads.THREAD_WAIT | threads.THREAD_BIND_LWP)
            yield from threads.thread_wait(a)

        sim, proc = run_program(main, ncpus=2)
        assert proc.threadlib.preemptive_slices == 0

    def test_negative_quantum_rejected(self):
        from repro.errors import ThreadError

        def main():
            with pytest.raises(ThreadError):
                yield from threads.thread_set_time_slicing(-1)

        run_program(main)
