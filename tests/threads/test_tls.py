"""Tests for thread-local storage and thread-specific data."""

import pytest

from repro.errors import ThreadError
from repro.threads.tls import TlsBlock, TlsLayout, TsdKeys
from repro import threads
from tests.conftest import run_program


class TestTlsLayoutUnit:
    def test_declare_assigns_slots(self):
        layout = TlsLayout()
        assert layout.declare("errno") == 0
        assert layout.declare("h_errno") == 1

    def test_duplicate_declare_same_slot(self):
        layout = TlsLayout()
        a = layout.declare("errno")
        assert layout.declare("errno") == a

    def test_freeze_fixes_size(self):
        """"Once the size is computed it is not changed" — no TLS growth
        after start (the dynamic-linking restriction)."""
        layout = TlsLayout()
        layout.declare("errno")
        size = layout.freeze()
        assert size == layout.size_bytes
        with pytest.raises(ThreadError):
            layout.declare("late_variable")

    def test_block_zero_initialized(self):
        """"The contents of thread-local storage are zeroed, initially."""
        layout = TlsLayout()
        layout.declare("errno")
        block = TlsBlock(layout)
        assert block.get("errno") == 0

    def test_blocks_are_private_copies(self):
        layout = TlsLayout()
        layout.declare("errno")
        a, b = TlsBlock(layout), TlsBlock(layout)
        a.set("errno", 13)
        assert b.get("errno") == 0

    def test_unknown_variable_rejected(self):
        layout = TlsLayout()
        block = TlsBlock(layout)
        with pytest.raises(ThreadError):
            block.get("ghost")


class TestTlsInPrograms:
    def test_errno_is_per_thread(self):
        """The canonical example: each thread references errno directly
        without fear of corrupting it in other threads."""
        got = {}

        def worker(tag):
            yield from threads.tls_set("errno", tag)
            yield from threads.thread_yield()
            got[tag] = yield from threads.tls_get("errno")

        def main():
            a = yield from threads.thread_create(
                worker, 111, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                worker, 222, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        run_program(main)
        assert got == {111: 111, 222: 222}

    def test_declare_before_first_thread(self):
        got = []

        def worker(_):
            got.append((yield from threads.tls_get("my_state")))

        def main():
            yield from threads.tls_declare("my_state")
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert got == [0]  # zeroed

    def test_declare_after_first_thread_rejected(self):
        def worker(_):
            return
            yield

        def main():
            yield from threads.thread_create(worker, None)
            with pytest.raises(ThreadError):
                yield from threads.tls_declare("too_late")
            yield from threads.thread_yield()

        run_program(main, check_deadlock=False)


class TestTsd:
    def test_tsd_roundtrip(self):
        got = {}

        def worker(tag):
            key = keybox["key"]
            yield from threads.tsd_set(key, f"value-{tag}")
            yield from threads.thread_yield()
            got[tag] = yield from threads.tsd_get(key)

        keybox = {}

        def main():
            keybox["key"] = yield from threads.tsd_key_create()
            a = yield from threads.thread_create(
                worker, "a", flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                worker, "b", flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        run_program(main)
        assert got == {"a": "value-a", "b": "value-b"}

    def test_destructor_runs_at_thread_exit(self):
        destroyed = []

        def worker(_):
            key = keybox["key"]
            yield from threads.tsd_set(key, "resource")

        keybox = {}

        def main():
            keybox["key"] = yield from threads.tsd_key_create(
                destructor=destroyed.append)
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)

        run_program(main)
        assert destroyed == ["resource"]

    def test_unset_key_reads_none(self):
        got = []

        def main():
            key = yield from threads.tsd_key_create()
            got.append((yield from threads.tsd_get(key)))

        run_program(main)
        assert got == [None]

    def test_set_on_deleted_key_rejected(self):
        keys = TsdKeys(TlsLayout())
        layout = TlsLayout()
        keys2 = TsdKeys(layout)
        key = keys2.key_create()
        keys2.key_delete(key)
        block = TlsBlock(layout)
        with pytest.raises(ThreadError):
            keys2.set_specific(block, key, 1)
