"""Tests for frames, activities, and generator normalization."""

from repro.hw.context import Activity, Frame, Mode, as_generator


class TestAsGenerator:
    def test_plain_function_deferred(self):
        calls = []

        def plain():
            calls.append(1)
            return 42

        gen = as_generator(plain)
        assert calls == []  # not called at wrap time
        try:
            gen.send(None)
        except StopIteration as stop:
            assert stop.value == 42
        assert calls == [1]

    def test_generator_function_passthrough(self):
        def genfn(x):
            yield x
            return x + 1

        gen = as_generator(genfn, 1)
        assert gen.send(None) == 1
        try:
            gen.send(None)
        except StopIteration as stop:
            assert stop.value == 2

    def test_kwargs_forwarded(self):
        def fn(a, b=0):
            return a + b

        gen = as_generator(fn, 1, b=2)
        try:
            gen.send(None)
        except StopIteration as stop:
            assert stop.value == 3


class TestActivity:
    def _gen(self):
        yield "one"
        yield "two"

    def test_initial_state(self):
        act = Activity(self._gen(), name="t")
        assert act.mode is Mode.USER
        assert not act.finished
        assert not act.in_kernel
        assert len(act.frames) == 1

    def test_push_pop_changes_mode(self):
        act = Activity(self._gen())

        def kframe():
            yield

        act.push(kframe(), Mode.KERNEL, label="sys_read")
        assert act.in_kernel
        assert act.top.label == "sys_read"
        act.pop()
        assert not act.in_kernel

    def test_resume_value_plumbing(self):
        act = Activity(self._gen())
        act.set_resume(7)
        assert act.resume_value == 7
        assert act.resume_exc is None

    def test_resume_exc_clears_value(self):
        act = Activity(self._gen())
        act.set_resume(7)
        exc = RuntimeError("x")
        act.set_resume_exc(exc)
        assert act.resume_exc is exc

    def test_frame_saved_resume_slot(self):
        frame = Frame(self._gen(), Mode.USER)
        assert frame.saved_resume is None
        frame.saved_resume = ("value", 3)
        assert frame.saved_resume == ("value", 3)
