"""Tests for the atomic memory primitives."""

from repro.hw.atomic import atomic_add, atomic_clear, compare_and_swap
from repro.hw.atomic import test_and_set as tas  # avoid pytest collection
from repro.hw.memory import MemoryObject


def fresh():
    return MemoryObject(4096)


class TestTestAndSet:
    def test_first_wins(self):
        obj = fresh()
        assert tas(obj, 0) == 0  # won the lock
        assert obj.load_cell(0) == 1

    def test_second_loses(self):
        obj = fresh()
        tas(obj, 0)
        assert tas(obj, 0) == 1  # already held

    def test_clear_releases(self):
        obj = fresh()
        tas(obj, 0)
        atomic_clear(obj, 0)
        assert tas(obj, 0) == 0


class TestAtomicAdd:
    def test_add_returns_new_value(self):
        obj = fresh()
        assert atomic_add(obj, 8, 3) == 3
        assert atomic_add(obj, 8, -1) == 2

    def test_independent_offsets(self):
        obj = fresh()
        atomic_add(obj, 0, 5)
        atomic_add(obj, 8, 7)
        assert obj.load_cell(0) == 5
        assert obj.load_cell(8) == 7


class TestCompareAndSwap:
    def test_succeeds_on_expected(self):
        obj = fresh()
        assert compare_and_swap(obj, 0, 0, "mine")
        assert obj.load_cell(0) == "mine"

    def test_fails_on_mismatch(self):
        obj = fresh()
        obj.store_cell(0, "theirs")
        assert not compare_and_swap(obj, 0, 0, "mine")
        assert obj.load_cell(0) == "theirs"
