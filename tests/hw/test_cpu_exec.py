"""Tests for the CPU executor: effect interpretation, time charging,
kernel boundary costs, preemption mechanics.

These run real (tiny) programs through a full Simulator and assert on
timing and accounting, since the CPU cannot meaningfully run without a
kernel behind it.
"""

import pytest

from repro.api import Simulator
from repro.errors import SimulationError
from repro.hw.isa import Block, Charge, GetContext, Setjmp, Longjmp, Syscall
from repro.sim.clock import usec
from tests.conftest import run_program


class TestCharging:
    def test_charge_advances_time(self):
        def main():
            yield Charge(usec(100))

        sim, _ = run_program(main)
        # Boot dispatch + 100us compute.
        assert sim.now_usec >= 100

    def test_charge_accounted_to_lwp_and_cpu(self):
        def main():
            yield Charge(usec(250))

        sim, proc = run_program(main)
        cpu = sim.machine.cpus[0]
        assert cpu.user_ns >= usec(250)
        assert proc.rusage()["user_ns"] >= usec(250)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Charge(-5)

    def test_zero_charge_is_free(self):
        def main():
            before = yield Syscall("gettimeofday")
            yield Charge(0)
            after = yield Syscall("gettimeofday")
            deltas.append(after - before)

        deltas = []
        run_program(main)
        # Only the two gettimeofday syscalls cost anything.
        assert deltas[0] == usec(15 + 5 + 15)


class TestGetContext:
    def test_context_fields(self):
        seen = {}

        def main():
            ctx = yield GetContext()
            seen["pid"] = ctx.process.pid
            seen["thread"] = ctx.thread
            seen["lwp"] = ctx.lwp
            seen["kernel"] = ctx.kernel

        sim, proc = run_program(main)
        assert seen["pid"] == proc.pid
        assert seen["lwp"].process is proc
        assert seen["thread"].thread_id == 1
        assert seen["kernel"] is sim.kernel


class TestSetjmpLongjmp:
    def test_pair_costs_59us(self):
        def main():
            t0 = yield Syscall("gettimeofday")
            token = yield Setjmp()
            yield Longjmp(token)
            t1 = yield Syscall("gettimeofday")
            times.append((t1 - t0) / 1000)

        times = []
        run_program(main)
        timer_overhead = 15 + 5 + 15
        assert times[0] == pytest.approx(59 + timer_overhead)


class TestSyscallBoundary:
    def test_entry_exit_charged_as_kernel_time(self):
        def main():
            yield Syscall("getpid")

        sim, _ = run_program(main)
        assert sim.machine.cpus[0].kernel_ns >= usec(35)

    def test_unknown_syscall_is_enosys(self):
        from repro.errors import Errno, SyscallError

        caught = []

        def main():
            try:
                yield Syscall("frobnicate")
            except SyscallError as err:
                caught.append(err.errno)

        run_program(main)
        assert caught == [Errno.ENOSYS]

    def test_syscall_counted(self):
        def main():
            yield Syscall("getpid")
            yield Syscall("getpid")

        sim, _ = run_program(main)
        assert sim.syscall_counts()["getpid"] == 2


class TestBlockEffectRules:
    def test_user_mode_block_is_rejected(self):
        from repro.hw.isa import WaitChannel

        def main():
            yield Block(WaitChannel("nope"))

        with pytest.raises(SimulationError, match="user mode"):
            run_program(main)


class TestMultiCpu:
    def test_two_processes_run_in_parallel(self):
        """On 2 CPUs, two compute-bound processes overlap, halving
        wall-clock versus serial execution."""
        def burner():
            yield Charge(usec(10_000))

        sim = Simulator(ncpus=2)
        sim.spawn(burner)
        sim.spawn(burner)
        sim.run()
        assert sim.now_usec < 10_000 * 1.5  # clearly overlapped

    def test_uniprocessor_serializes(self):
        def burner():
            yield Charge(usec(10_000))

        sim = Simulator(ncpus=1)
        sim.spawn(burner)
        sim.spawn(burner)
        sim.run()
        assert sim.now_usec >= 20_000

    def test_utilization_report(self):
        def burner():
            yield Charge(usec(1_000))

        sim = Simulator(ncpus=2)
        sim.spawn(burner)
        sim.run()
        util = sim.utilization()
        assert util["busy_ns"] > 0
        assert 0 < util["utilization"] <= 1
