"""Tests for machine construction and the timer."""

import pytest

from repro.hw.machine import Machine
from repro.hw.timer import PeriodicTick
from repro.sim.costs import CostModel


class TestMachine:
    def test_default_configuration(self):
        m = Machine()
        assert m.ncpus == 1
        assert m.memory.free_bytes > 0

    def test_multiprocessor(self):
        m = Machine(ncpus=4)
        assert [c.index for c in m.cpus] == [0, 1, 2, 3]

    def test_zero_cpus_rejected(self):
        with pytest.raises(ValueError):
            Machine(ncpus=0)

    def test_custom_cost_model(self):
        costs = CostModel(setjmp=1)
        m = Machine(costs=costs)
        assert m.cpus[0].costs.setjmp == 1

    def test_idle_cpu_lowest_index_first(self):
        m = Machine(ncpus=3)
        assert m.idle_cpu() is m.cpus[0]


class TestHardwareTimer:
    def test_one_shot_alarm(self):
        m = Machine()
        fired = []
        m.timer.arm(5_000, lambda: fired.append(m.engine.now_ns))
        m.engine.run()
        assert fired == [5_000]

    def test_cancel(self):
        m = Machine()
        fired = []
        handle = m.timer.arm(5_000, lambda: fired.append(1))
        m.timer.cancel(handle)
        m.engine.run()
        assert fired == []

    def test_cancel_none_is_safe(self):
        Machine().timer.cancel(None)

    def test_read_usec_tracks_clock(self):
        m = Machine()
        m.timer.arm(2_000, lambda: None)
        m.engine.run()
        assert m.timer.read_usec() == 2.0


class TestPeriodicTick:
    def test_fires_repeatedly(self):
        m = Machine()
        hits = []
        tick = PeriodicTick(m.engine, 1_000, lambda: hits.append(1))
        tick.start()
        m.engine.call_after(5_500, tick.stop)
        m.engine.run()
        assert len(hits) == 5

    def test_stop_before_start_is_safe(self):
        m = Machine()
        PeriodicTick(m.engine, 1_000, lambda: None).stop()

    def test_double_start_single_stream(self):
        m = Machine()
        hits = []
        tick = PeriodicTick(m.engine, 1_000, lambda: hits.append(1))
        tick.start()
        tick.start()
        m.engine.call_after(3_500, tick.stop)
        m.engine.run()
        assert len(hits) == 3
