"""Wait-channel naming: the uniform ``name`` protocol for Block traces.

Single channels, select-style groups, and the legacy raw-list form must
all render through :func:`repro.hw.isa.channel_name` without isinstance
dispatch at trace sites.
"""

from repro.hw.isa import Block, ChannelSet, WaitChannel, channel_name


class TestChannelName:
    def test_single_channel(self):
        assert channel_name(WaitChannel("mutex-1")) == "mutex-1"

    def test_channel_set_joins_members(self):
        cs = ChannelSet([WaitChannel("a"), WaitChannel("b")])
        assert cs.name == "a,b"
        assert channel_name(cs) == "a,b"

    def test_raw_list_fallback(self):
        chans = [WaitChannel("x"), WaitChannel("y")]
        assert channel_name(chans) == "x,y"
        assert channel_name(tuple(chans)) == "x,y"

    def test_empty_set(self):
        assert channel_name(ChannelSet([])) == ""


class TestChannelSet:
    def test_iterates_members_in_order(self):
        a, b = WaitChannel("a"), WaitChannel("b")
        cs = ChannelSet([a, b])
        assert list(cs) == [a, b]
        assert len(cs) == 2

    def test_repr_uses_name(self):
        assert "a,b" in repr(ChannelSet([WaitChannel("a"),
                                         WaitChannel("b")]))


class TestBlockNormalization:
    def test_list_becomes_channel_set(self):
        blk = Block([WaitChannel("p"), WaitChannel("q")])
        assert isinstance(blk.channel, ChannelSet)
        assert blk.channel.name == "p,q"

    def test_single_channel_stays_bare(self):
        ch = WaitChannel("solo")
        assert Block(ch).channel is ch
