"""Tests for memory objects and the physical memory pool."""

import pytest

from repro.hw.memory import (PAGE_SIZE, MemoryObject, PhysicalMemory,
                             page_count, page_of)


class TestPages:
    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(PAGE_SIZE - 1) == 0
        assert page_of(PAGE_SIZE) == 1

    def test_page_count(self):
        assert page_count(0) == 0
        assert page_count(1) == 1
        assert page_count(PAGE_SIZE) == 1
        assert page_count(PAGE_SIZE + 1) == 2


class TestCells:
    def test_unwritten_cell_reads_zero(self):
        """Zero-initialized sync variables must be usable immediately."""
        obj = MemoryObject(4096)
        assert obj.load_cell(0) == 0
        assert obj.load_cell(128) == 0

    def test_store_load_roundtrip(self):
        obj = MemoryObject(4096)
        obj.store_cell(8, {"count": 3})
        assert obj.load_cell(8) == {"count": 3}

    def test_cells_are_per_offset(self):
        obj = MemoryObject(4096)
        obj.store_cell(0, 1)
        obj.store_cell(8, 2)
        assert obj.load_cell(0) == 1
        assert obj.load_cell(8) == 2

    def test_out_of_bounds_raises(self):
        obj = MemoryObject(16)
        with pytest.raises(IndexError):
            obj.load_cell(16)
        with pytest.raises(IndexError):
            obj.store_cell(-1, 0)

    def test_same_object_aliases_same_cells(self):
        """Two handles on the same object see the same state — the basis
        of cross-process synchronization."""
        obj = MemoryObject(4096)
        alias = obj
        obj.store_cell(64, "locked")
        assert alias.load_cell(64) == "locked"


class TestBytes:
    def test_write_then_read(self):
        obj = MemoryObject(16)
        obj.write_bytes(0, b"hello")
        assert obj.read_bytes(0, 5) == b"hello"

    def test_write_grows_object(self):
        obj = MemoryObject(4)
        obj.write_bytes(2, b"abcdef")
        assert obj.nbytes == 8
        assert obj.read_bytes(2, 6) == b"abcdef"

    def test_grow_zero_fills(self):
        obj = MemoryObject(2)
        obj.grow(10)
        assert obj.read_bytes(2, 8) == b"\x00" * 8

    def test_grow_never_shrinks(self):
        obj = MemoryObject(100)
        obj.grow(10)
        assert obj.nbytes == 100


class TestResidency:
    def test_initially_nonresident(self):
        obj = MemoryObject(PAGE_SIZE * 2)
        assert not obj.is_resident(0)

    def test_resident_flag(self):
        obj = MemoryObject(PAGE_SIZE * 2, resident=True)
        assert obj.is_resident(0) and obj.is_resident(1)

    def test_make_resident_and_evict(self):
        obj = MemoryObject(PAGE_SIZE)
        obj.make_resident(0)
        assert obj.is_resident(0)
        obj.evict(0)
        assert not obj.is_resident(0)


class TestPhysicalMemory:
    def test_allocation_accounting(self):
        mem = PhysicalMemory(total_bytes=1_000_000)
        obj = mem.allocate(4096)
        assert mem.allocated_bytes == 4096
        assert mem.free_bytes == 1_000_000 - 4096
        mem.release(obj)
        assert mem.allocated_bytes == 0

    def test_release_unknown_is_noop(self):
        mem = PhysicalMemory()
        stray = MemoryObject(128)
        mem.release(stray)
        assert mem.allocated_bytes == 0

    def test_names_unique_by_default(self):
        mem = PhysicalMemory()
        a = mem.allocate(1)
        b = mem.allocate(1)
        assert a.name != b.name
