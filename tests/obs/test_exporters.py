"""Report rendering, the repro.obs CLI, and the procfs exporters."""

import io
import json
from contextlib import redirect_stdout

from repro.api import Simulator
from repro.kernel.fs.file import O_RDONLY
from repro.obs import contention_report
from repro.obs.__main__ import main as obs_main
from repro.runtime import unistd
from repro.workloads import window_system
from repro import threads


def _run(seed=4):
    main, _ = window_system.build(n_widgets=8, n_events=40, seed=seed)
    sim = Simulator(ncpus=2, seed=seed, metrics=True)
    sim.spawn(main)
    sim.run()
    return sim


class TestContentionReport:
    def test_all_sections_present(self):
        report = contention_report(_run().metrics)
        for header in ("-- syscalls", "-- scheduler",
                       "-- threads library", "-- sync objects"):
            assert header in report

    def test_reports_real_activity(self):
        report = contention_report(_run().metrics)
        assert "gettimeofday" in report
        assert "dispatches[TS]" in report
        assert "created.unbound" in report
        assert "mutex" in report

    def test_report_deterministic(self):
        assert (contention_report(_run().metrics)
                == contention_report(_run().metrics))


class TestObsCli:
    def _cli(self, argv):
        buf = io.StringIO()
        with redirect_stdout(buf):
            obs_main(argv)
        return buf.getvalue()

    def test_prints_header_and_report(self):
        out = self._cli(["--workload", "window_system"])
        assert "workload=window_system" in out
        assert "virtual_time=" in out
        assert "-- sync objects" in out

    def test_writes_json_and_trace(self, tmp_path):
        jpath = tmp_path / "m.json"
        tpath = tmp_path / "t.json"
        self._cli(["--workload", "array_compute",
                   "--json", str(jpath), "--trace", str(tpath)])
        snap = json.loads(jpath.read_text())
        assert snap["counters"]
        trace = json.loads(tpath.read_text())
        assert trace["traceEvents"]

    def test_cli_deterministic(self, tmp_path):
        a = self._cli(["--workload", "database", "--seed", "9"])
        b = self._cli(["--workload", "database", "--seed", "9"])
        assert a == b


class TestProcfs:
    def _read_proc(self, metrics):
        out = {}

        def worker(_):
            yield from unistd.sleep_usec(10)

        def main():
            tid = yield from threads.thread_create(
                worker, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            fd = yield from unistd.open("/proc/metrics", O_RDONLY)
            out["metrics"] = (yield from unistd.read(fd, 1 << 20))
            yield from unistd.close(fd)
            fd = yield from unistd.open("/proc/1/stat", O_RDONLY)
            out["stat"] = (yield from unistd.read(fd, 4096))
            yield from unistd.close(fd)

        sim = Simulator(ncpus=2, metrics=metrics)
        sim.spawn(main)
        sim.run()
        return out

    def test_proc_metrics_renders_registry(self):
        text = self._read_proc(True)["metrics"].decode()
        assert "counter syscall.count.open 1" in text
        assert "counter threads.created.unbound 1" in text
        assert "histogram sched.dispatch_latency_ns" in text

    def test_proc_metrics_disabled_notice(self):
        text = self._read_proc(False)["metrics"].decode()
        assert text == "# metrics disabled (no registry attached)\n"

    def test_proc_pid_stat_fields(self):
        fields = self._read_proc(True)["stat"].decode().split()
        assert fields[0] == "1"
        assert fields[1] == "(main)"
        # pid name state nlwp utime stime created switches grown
        assert len(fields) == 9
        assert fields[6] == "2"  # main thread + the worker
