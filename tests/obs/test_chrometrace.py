"""Chrome trace_event export: schema and determinism."""

import json

from repro.api import Simulator
from repro.obs import ChromeTraceSink
from repro.workloads import window_system

VALID_PHASES = {"B", "E", "i", "s", "M"}


def _traced_run(seed: int = 2):
    main, _ = window_system.build(n_widgets=6, n_events=30, seed=seed)
    sink = ChromeTraceSink()
    sim = Simulator(ncpus=2, seed=seed, trace=True, trace_sink=sink,
                    trace_store=False)
    sim.spawn(main)
    sim.run()
    return sink


class TestSchema:
    def test_top_level_shape(self):
        doc = _traced_run().to_dict()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list)
        assert doc["traceEvents"], "a run must produce events"

    def test_every_event_well_formed(self):
        for ev in _traced_run().to_dict()["traceEvents"]:
            assert ev["ph"] in VALID_PHASES
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] == "M":
                assert ev["name"] == "thread_name"
                assert ev["args"]["name"]
            else:
                assert isinstance(ev["ts"], float)
                assert ev["ts"] >= 0.0

    def test_slices_balanced_per_tid(self):
        # Ends never outnumber begins on a tid (stack order, what
        # chrome://tracing requires); the only slices legitimately left
        # open at end-of-run are exit calls, which never return.
        stacks = {}
        for ev in _traced_run().to_dict()["traceEvents"]:
            if ev["ph"] == "B":
                stacks.setdefault(ev["tid"], []).append(ev["name"])
            elif ev["ph"] == "E":
                assert stacks.get(ev["tid"]), "E without a matching B"
                stacks[ev["tid"]].pop()
        leftovers = [n for s in stacks.values() for n in s]
        assert all(n == "sys_exit" for n in leftovers)

    def test_syscall_slices_named(self):
        names = {ev["name"]
                 for ev in _traced_run().to_dict()["traceEvents"]
                 if ev["ph"] == "B"}
        assert any(n.startswith("sys_") for n in names)

    def test_thread_names_assigned_once(self):
        meta = [ev for ev in _traced_run().to_dict()["traceEvents"]
                if ev["ph"] == "M"]
        tids = [ev["tid"] for ev in meta]
        assert len(tids) == len(set(tids))

    def test_timestamps_monotonic_nondecreasing(self):
        ts = [ev["ts"] for ev in _traced_run().to_dict()["traceEvents"]
              if ev["ph"] != "M"]
        assert ts == sorted(ts)


class TestDeterminism:
    def test_json_byte_identical_across_runs(self):
        assert _traced_run().to_json() == _traced_run().to_json()

    def test_dump_writes_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        n = _traced_run().dump(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n > 0
