"""The observability determinism contract.

Three guarantees, each pinned here:

1. **Reproducible**: the same seeded run produces byte-identical metrics
   JSON every time, serial or across a ``--jobs N`` process pool.
2. **Passive**: enabling metrics does not change the virtual-time event
   stream — trace digests are identical with metrics on and off.
3. **Zero-cost when disabled**: a default Simulator carries no registry,
   and the golden digests (recorded before metrics existed) still match.
"""

import json
import os

from repro.api import Simulator
from repro.explore.explorer import Explorer, default_plan_dicts, run_one
from repro.explore.registry import resolve
from repro.workloads import window_system

GOLDEN = os.path.join(os.path.dirname(__file__), os.pardir, "explore",
                      "golden_digests.json")


def _window_run(seed: int = 3):
    main, _ = window_system.build(n_widgets=10, n_events=60, seed=seed)
    sim = Simulator(ncpus=2, seed=seed, metrics=True)
    sim.spawn(main)
    sim.run()
    return sim


class TestReproducible:
    def test_repeated_runs_byte_identical_json(self):
        a = _window_run().metrics.to_json()
        b = _window_run().metrics.to_json()
        assert a == b
        assert len(a) > 1000  # a real snapshot, not an empty registry

    def test_repeated_runs_identical_text(self):
        assert (_window_run().metrics.render_text()
                == _window_run().metrics.render_text())

    def test_serial_vs_jobs_parity(self):
        ref = "workload:wl_window_system"
        factory = resolve(ref)
        serial = Explorer(factory, program="w", runs=3,
                          metrics=True).explore()
        par = Explorer(factory, program="w", runs=3, metrics=True,
                       jobs=2, factory_ref=ref).explore()
        for s, p in zip(serial.results, par.results):
            assert s.metrics_json == p.metrics_json
            assert s.digest == p.digest
            assert json.loads(s.metrics_json)["counters"]


class TestPassive:
    def test_metrics_do_not_change_trace_digest(self):
        plan = default_plan_dicts(2)[1]  # a perturbed schedule
        factory = resolve("workload:wl_network_server")
        off = run_one(factory, seed=5, schedule_dict=plan)
        on = run_one(factory, seed=5, schedule_dict=plan,
                     with_metrics=True)
        assert off.digest == on.digest
        assert on.metrics_json is not None and off.metrics_json is None

    def test_metrics_do_not_change_golden_digest(self):
        # Spot-check one pre-metrics golden entry with metrics ENABLED:
        # instrumentation must not perturb the recorded event stream.
        with open(GOLDEN) as fh:
            digests = json.load(fh)
        from repro.explore.corpus import CLEAN
        name = sorted(CLEAN)[0]
        plan = default_plan_dicts(1)[0]
        result = run_one(CLEAN[name], program=name, seed=0,
                         schedule_dict=plan, with_metrics=True)
        assert result.digest == digests[f"{name}/run0"]


class TestDisabled:
    def test_default_simulator_has_no_registry(self):
        sim = Simulator(ncpus=2)
        assert sim.metrics is None
        assert sim.engine.metrics is None

    def test_virtual_time_identical_with_and_without(self):
        main, _ = window_system.build(n_widgets=8, n_events=40, seed=1)
        off = Simulator(ncpus=2, seed=1)
        off.spawn(main)
        off.run()
        main2, _ = window_system.build(n_widgets=8, n_events=40, seed=1)
        on = Simulator(ncpus=2, seed=1, metrics=True)
        on.spawn(main2)
        on.run()
        assert off.engine.now_ns == on.engine.now_ns
