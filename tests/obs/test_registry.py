"""Unit tests for the metrics registry primitives."""

from repro.api import Simulator
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_tracks_high_water_mark(self):
        g = Gauge()
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.max == 7


class TestHistogramBuckets:
    def test_zero_lands_in_bucket_zero(self):
        h = Histogram()
        h.observe(0)
        assert h.buckets == {0: 1}

    def test_bucket_b_covers_half_open_power_range(self):
        # bucket b (>= 1) covers [2**(b-1), 2**b): check both edges.
        h = Histogram()
        for v in (1, 2, 3, 4, 7, 8, 1023, 1024):
            h.observe(v)
        assert h.buckets == {1: 1, 2: 2, 3: 2, 4: 1, 10: 1, 11: 1}

    def test_exact_stats_ride_alongside(self):
        h = Histogram()
        for v in (10, 20, 90):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (3, 120, 10, 90)
        assert h.mean == 40.0

    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.percentile(50) == 0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["min"] == 0


class TestHistogramPercentiles:
    def test_percentile_clamped_into_observed_range(self):
        # A single observation of 20000 sits in bucket 15 (upper bound
        # 32767); the summary must still never exceed the true max.
        h = Histogram()
        h.observe(20_000)
        assert h.percentile(50) == 20_000
        assert h.percentile(99) == 20_000

    def test_percentile_clamped_to_min(self):
        h = Histogram()
        h.observe(5)
        h.observe(5)
        assert h.percentile(0) == 5

    def test_percentile_orders_buckets(self):
        h = Histogram()
        for _ in range(99):
            h.observe(1)          # bucket 1, upper bound 1
        h.observe(1_000_000)      # bucket 20
        assert h.percentile(50) == 1
        assert h.percentile(100) == 1_000_000


class TestRegistry:
    def test_hot_helpers_create_on_first_use(self):
        reg = MetricsRegistry()
        reg.count("a.b")
        reg.count("a.b", 2)
        reg.observe("h", 5)
        reg.sample("g", 9)
        assert reg.counters["a.b"].value == 3
        assert reg.histograms["h"].count == 1
        assert reg.gauges["g"].max == 9

    def test_snapshot_is_sorted_and_json_stable(self):
        reg = MetricsRegistry()
        reg.count("z.last")
        reg.count("a.first")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        assert reg.to_json() == reg.to_json()

    def test_render_text_fixed_format(self):
        reg = MetricsRegistry()
        reg.count("c", 2)
        reg.observe("h", 4)
        text = reg.render_text()
        assert "counter c 2" in text
        assert ("histogram h count=1 total=4 min=4 mean=4.0 "
                "p50=4 p99=4 max=4") in text

    def test_attach_installs_on_engine(self):
        sim = Simulator(ncpus=1)
        assert sim.engine.metrics is None
        reg = MetricsRegistry().attach(sim.engine)
        assert sim.engine.metrics is reg

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.observe("h", 1)
        reg.reset()
        assert not reg.counters and not reg.histograms


class TestSimulatorIntegration:
    def test_metrics_true_builds_registry(self):
        sim = Simulator(ncpus=1, metrics=True)
        assert sim.metrics is sim.engine.metrics
        assert isinstance(sim.metrics, MetricsRegistry)

    def test_explicit_registry_accepted(self):
        reg = MetricsRegistry()
        sim = Simulator(ncpus=1, metrics=reg)
        assert sim.metrics is reg

    def test_default_is_disabled(self):
        sim = Simulator(ncpus=1)
        assert sim.metrics is None
        assert sim.engine.metrics is None
