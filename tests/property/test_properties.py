"""Property-based tests (hypothesis) on core invariants.

These exercise the data structures and the full scheduler under random
inputs/schedules, asserting invariants the architecture promises:
mutual exclusion, semaphore conservation, event ordering, sigset algebra,
run-queue priority discipline, and deterministic replay.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel.signals import (SIG_BLOCK, SIG_SETMASK, SIG_UNBLOCK,
                                  UNBLOCKABLE, Sig, Sigset)
from repro.sim.events import EventQueue

SIGS = st.sampled_from([s for s in Sig])
SIGSETS = st.lists(SIGS, max_size=8).map(Sigset)

# Simulator-heavy property tests reuse one machine shape; silence the
# too-slow health check, these are discrete-event runs, not flaky IO.
SIM_SETTINGS = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


class TestSigsetAlgebra:
    @given(SIGSETS, SIGSETS)
    def test_union_is_superset(self, a, b):
        u = a.union(b)
        for s in Sig:
            assert (s in u) == ((s in a) or (s in b))

    @given(SIGSETS, SIGSETS)
    def test_difference_removes_exactly(self, a, b):
        d = a.difference(b)
        for s in Sig:
            assert (s in d) == ((s in a) and (s not in b))

    @given(SIGSETS, SIGSETS)
    def test_block_then_unblock_restores(self, base, delta):
        masked = base.apply(SIG_BLOCK, delta)
        restored = masked.apply(SIG_UNBLOCK, delta)
        for s in Sig:
            if s in UNBLOCKABLE:
                continue
            if s in base and s not in delta:
                assert s in restored
            if s not in base:
                assert s not in restored

    @given(SIGSETS)
    def test_setmask_never_blocks_kill_stop(self, new):
        result = Sigset().apply(SIG_SETMASK, new)
        assert Sig.SIGKILL not in result
        assert Sig.SIGSTOP not in result

    @given(SIGSETS)
    def test_copy_equal_but_independent(self, a):
        b = a.copy()
        assert a == b
        had = Sig.SIGHUP in a
        b.add(Sig.SIGHUP)
        assert (Sig.SIGHUP in a) == had  # mutating the copy left a alone


class TestEventQueueOrdering:
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=200))
    def test_pops_sorted_stable(self, times):
        q = EventQueue()
        for i, t in enumerate(times):
            q.push(t, lambda: None, tag=str(i))
        popped = []
        while (ev := q.pop()) is not None:
            popped.append((ev.time_ns, int(ev.tag)))
        assert popped == sorted(popped)

    @given(st.lists(st.tuples(st.integers(0, 1000), st.booleans()),
                    min_size=1, max_size=100))
    def test_cancelled_never_pop(self, entries):
        q = EventQueue()
        events = []
        for t, cancel in entries:
            ev = q.push(t, lambda: None)
            if cancel:
                ev.cancel()
            events.append((ev, cancel))
        popped = set()
        while (ev := q.pop()) is not None:
            popped.add(id(ev))
        for ev, cancelled in events:
            assert (id(ev) in popped) == (not cancelled)


class TestRunQueueDiscipline:
    @given(st.lists(st.integers(min_value=0, max_value=59),
                    min_size=1, max_size=60))
    def test_always_pops_max_priority(self, prios):
        from repro.kernel.sched.runqueue import RunQueue

        class L:
            def __init__(self, p):
                self.effective_priority = p
                self.bound_cpu = None

        q = RunQueue()
        for p in prios:
            q.insert(L(p))
        out = []
        while True:
            lwp = q.pick(lambda l: True)
            if lwp is None:
                break
            out.append(lwp.effective_priority)
        assert out == sorted(prios, reverse=True)


class TestMutexExclusionProperty:
    @SIM_SETTINGS
    @given(n_threads=st.integers(2, 6), iters=st.integers(1, 4),
           seed=st.integers(0, 10_000), ncpus=st.integers(1, 4))
    def test_never_two_inside(self, n_threads, iters, seed, ncpus):
        from repro.api import Simulator
        from repro.sync import Mutex
        from repro import threads
        from repro.hw.isa import Charge
        from repro.sim.clock import usec

        state = {"inside": 0, "violation": False, "done": 0}

        def worker(m):
            import random
            rng = random.Random(seed)
            for _ in range(iters):
                yield from m.enter()
                state["inside"] += 1
                if state["inside"] > 1:
                    state["violation"] = True
                yield Charge(usec(rng.randint(1, 100)))
                yield from threads.thread_yield()
                state["inside"] -= 1
                yield from m.exit()
            state["done"] += 1

        def main():
            yield from threads.thread_setconcurrency(min(ncpus, 3))
            m = Mutex()
            tids = []
            for _ in range(n_threads):
                tid = yield from threads.thread_create(
                    worker, m, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        sim = Simulator(ncpus=ncpus, seed=seed)
        sim.spawn(main)
        sim.run()
        assert not state["violation"]
        assert state["done"] == n_threads


class TestSemaphoreConservation:
    @SIM_SETTINGS
    @given(producers=st.integers(1, 3), consumers=st.integers(1, 3),
           items=st.integers(1, 8), ncpus=st.integers(1, 2))
    def test_tokens_conserved(self, producers, consumers, items, ncpus):
        from repro.api import Simulator
        from repro.sync import Semaphore
        from repro import threads

        total = producers * items
        state = {"consumed": 0}

        def producer(s):
            for _ in range(items):
                yield from s.v()
                yield from threads.thread_yield()

        def consumer(args):
            s, quota = args
            for _ in range(quota):
                yield from s.p()
                state["consumed"] += 1

        def main():
            s = Semaphore()
            quotas = [total // consumers] * consumers
            quotas[0] += total - sum(quotas)
            tids = []
            for q in quotas:
                tid = yield from threads.thread_create(
                    consumer, (s, q), flags=threads.THREAD_WAIT)
                tids.append(tid)
            for _ in range(producers):
                tid = yield from threads.thread_create(
                    producer, s, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)
            assert s.value == 0

        sim = Simulator(ncpus=ncpus)
        sim.spawn(main)
        sim.run()
        assert state["consumed"] == total


class TestRwlockProperty:
    @SIM_SETTINGS
    @given(readers=st.integers(1, 4), writers=st.integers(1, 3),
           ncpus=st.integers(1, 2), seed=st.integers(0, 1000))
    def test_no_reader_writer_overlap(self, readers, writers, ncpus,
                                      seed):
        from repro.api import Simulator
        from repro.sync import RW_READER, RW_WRITER, RwLock
        from repro import threads

        state = {"r": 0, "w": 0, "bad": False}

        def check():
            if state["w"] > 1 or (state["w"] and state["r"]):
                state["bad"] = True

        def reader(rw):
            for _ in range(3):
                yield from rw.enter(RW_READER)
                state["r"] += 1
                check()
                yield from threads.thread_yield()
                state["r"] -= 1
                yield from rw.exit()

        def writer(rw):
            for _ in range(2):
                yield from rw.enter(RW_WRITER)
                state["w"] += 1
                check()
                yield from threads.thread_yield()
                state["w"] -= 1
                yield from rw.exit()

        def main():
            rw = RwLock()
            tids = []
            for _ in range(readers):
                tid = yield from threads.thread_create(
                    reader, rw, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for _ in range(writers):
                tid = yield from threads.thread_create(
                    writer, rw, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        sim = Simulator(ncpus=ncpus, seed=seed)
        sim.spawn(main)
        sim.run()
        assert not state["bad"]


class TestDeterministicReplay:
    @SIM_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_same_seed_same_final_time(self, seed):
        from repro.api import Simulator
        from repro.workloads import database

        def once():
            main, res = database.build(n_records=4, n_processes=2,
                                       n_threads=2, txns_per_thread=3,
                                       seed=seed)
            sim = Simulator(ncpus=2, seed=seed)
            sim.spawn(main)
            sim.run()
            return res["elapsed_usec"], res["committed"]

        assert once() == once()


class TestMemoryCells:
    @given(st.lists(st.tuples(st.integers(0, 500),
                              st.integers(-5, 5)), max_size=50))
    def test_cells_independent(self, writes):
        """Writing one cell never disturbs another."""
        from repro.hw.memory import MemoryObject
        obj = MemoryObject(4096)
        mirror = {}
        for offset, value in writes:
            obj.store_cell(offset, value)
            mirror[offset] = value
        for offset, value in mirror.items():
            assert obj.load_cell(offset) == value
