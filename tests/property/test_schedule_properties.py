"""Property tests over randomized schedules: condition variables,
bounded queues, barriers, and thread lifecycles never lose events."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

SIM_SETTINGS = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


class TestCondvarNoLostWakeups:
    @SIM_SETTINGS
    @given(producers=st.integers(1, 3), items=st.integers(1, 10),
           ncpus=st.integers(1, 3), seed=st.integers(0, 999))
    def test_every_item_consumed(self, producers, items, ncpus, seed):
        from repro.api import Simulator
        from repro.sync import CondVar, Mutex
        from repro import threads

        total = producers * items
        consumed = []

        def producer(shared):
            import random
            rng = random.Random(seed)
            for i in range(items):
                yield from shared["m"].enter()
                shared["q"].append(i)
                yield from shared["cv"].signal()
                yield from shared["m"].exit()
                if rng.random() < 0.5:
                    yield from threads.thread_yield()

        def consumer(shared):
            while len(consumed) < total:
                yield from shared["m"].enter()
                while not shared["q"] and len(consumed) < total:
                    yield from shared["cv"].wait(shared["m"])
                if shared["q"]:
                    consumed.append(shared["q"].pop(0))
                    if len(consumed) == total:
                        yield from shared["cv"].broadcast()
                yield from shared["m"].exit()

        def main():
            shared = {"m": Mutex(), "cv": CondVar(), "q": []}
            tids = []
            for _ in range(2):
                tid = yield from threads.thread_create(
                    consumer, shared, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for _ in range(producers):
                tid = yield from threads.thread_create(
                    producer, shared, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        sim = Simulator(ncpus=ncpus, seed=seed)
        sim.spawn(main)
        sim.run()
        assert len(consumed) == total


class TestBoundedQueueConservation:
    @SIM_SETTINGS
    @given(capacity=st.integers(1, 4), items=st.integers(1, 12),
           consumers=st.integers(1, 3), ncpus=st.integers(1, 2))
    def test_items_conserved(self, capacity, items, consumers, ncpus):
        from repro.api import Simulator
        from repro.sync import BoundedQueue
        from repro import threads

        out = []

        def consumer(q):
            while True:
                item = yield from q.get()
                if item is None:
                    return
                out.append(item)

        def main():
            q = BoundedQueue(capacity)
            tids = []
            for _ in range(consumers):
                tid = yield from threads.thread_create(
                    consumer, q, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for i in range(items):
                yield from q.put(i)
            yield from q.close()
            for tid in tids:
                yield from threads.thread_wait(tid)

        sim = Simulator(ncpus=ncpus)
        sim.spawn(main)
        sim.run()
        assert sorted(out) == list(range(items))


class TestBarrierRounds:
    @SIM_SETTINGS
    @given(parties=st.integers(2, 5), rounds=st.integers(1, 4),
           ncpus=st.integers(1, 3))
    def test_rounds_complete_in_lockstep(self, parties, rounds, ncpus):
        from repro.api import Simulator
        from repro.sync import Barrier
        from repro import threads

        progress = {i: 0 for i in range(parties)}
        violations = []

        def worker(args):
            barrier, me = args
            for r in range(rounds):
                progress[me] = r
                spread = max(progress.values()) - min(progress.values())
                if spread > 1:
                    violations.append((me, r, dict(progress)))
                yield from barrier.wait()

        def main():
            barrier = Barrier(parties)
            tids = []
            for i in range(parties):
                tid = yield from threads.thread_create(
                    worker, (barrier, i), flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        sim = Simulator(ncpus=ncpus)
        sim.spawn(main)
        sim.run()
        assert not violations
        assert all(p == rounds - 1 for p in progress.values())


class TestThreadLifecycleProperty:
    @SIM_SETTINGS
    @given(n=st.integers(1, 12), ncpus=st.integers(1, 4),
           lwps=st.integers(1, 4))
    def test_all_created_threads_joinable(self, n, ncpus, lwps):
        from repro.api import Simulator
        from repro.hw.isa import Charge
        from repro.sim.clock import usec
        from repro import threads

        done = []

        def worker(i):
            yield Charge(usec(50 * (i % 3 + 1)))
            done.append(i)

        def main():
            yield from threads.thread_setconcurrency(lwps)
            tids = []
            for i in range(n):
                tid = yield from threads.thread_create(
                    worker, i, flags=threads.THREAD_WAIT)
                tids.append(tid)
            for tid in tids:
                got = yield from threads.thread_wait(tid)
                assert got == tid

        sim = Simulator(ncpus=ncpus)
        sim.spawn(main)
        sim.run()
        assert sorted(done) == list(range(n))

    @SIM_SETTINGS
    @given(n=st.integers(1, 8), seed=st.integers(0, 99))
    def test_mixed_bound_unbound_all_complete(self, n, seed):
        from repro.api import Simulator
        from repro.hw.isa import Charge
        from repro.sim.clock import usec
        from repro import threads

        done = []

        def worker(i):
            yield Charge(usec(100))
            done.append(i)

        def main():
            import random
            rng = random.Random(seed)
            tids = []
            for i in range(n):
                flags = threads.THREAD_WAIT
                if rng.random() < 0.4:
                    flags |= threads.THREAD_BIND_LWP
                tid = yield from threads.thread_create(worker, i,
                                                       flags=flags)
                tids.append(tid)
            for tid in tids:
                yield from threads.thread_wait(tid)

        sim = Simulator(ncpus=2, seed=seed)
        sim.spawn(main)
        sim.run()
        assert sorted(done) == list(range(n))
