"""Tests for virtual time conversion and the clock."""

import pytest

from repro.sim.clock import (NS_PER_US, VirtualClock, msec, sec, to_usec,
                             usec)


class TestConversions:
    def test_usec_is_exact_integer_ns(self):
        assert usec(1) == 1_000
        assert usec(56) == 56_000

    def test_usec_fractional(self):
        assert usec(0.5) == 500
        assert usec(58.5) == 58_500

    def test_msec_and_sec(self):
        assert msec(1) == 1_000_000
        assert sec(1) == 1_000_000_000

    def test_roundtrip(self):
        assert to_usec(usec(348)) == 348.0

    def test_ns_per_us_constant(self):
        assert NS_PER_US == 1_000


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(5_000)
        assert clock.now_ns == 5_000
        assert clock.now_usec == 5.0

    def test_advance_to_same_time_allowed(self):
        clock = VirtualClock()
        clock.advance_to(100)
        clock.advance_to(100)
        assert clock.now_ns == 100

    def test_time_never_goes_backward(self):
        clock = VirtualClock()
        clock.advance_to(10)
        with pytest.raises(ValueError):
            clock.advance_to(9)
