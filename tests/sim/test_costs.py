"""Tests for the calibrated cost model."""

import dataclasses

from repro.sim.clock import usec
from repro.sim.costs import SPARCSTATION_1PLUS, CostModel, default_cost_model


class TestCalibration:
    """The constants must keep producing the paper's primitive numbers;
    these tests pin the calibration targets (the figure-level checks live
    in the benchmarks and integration tests)."""

    def test_unbound_create_is_56us(self):
        assert SPARCSTATION_1PLUS.thread_create_user == usec(56)

    def test_bound_create_path_sums_to_2327us(self):
        c = SPARCSTATION_1PLUS
        total = (c.thread_create_user + c.syscall_entry
                 + c.lwp_create_service + c.syscall_exit)
        assert total == usec(2327)

    def test_setjmp_longjmp_pair_is_59us(self):
        assert SPARCSTATION_1PLUS.setjmp_longjmp_pair == usec(59)

    def test_thread_switch_equals_setjmp_longjmp(self):
        c = SPARCSTATION_1PLUS
        assert c.thread_switch_user == c.setjmp + c.longjmp

    def test_creation_ratio_near_42(self):
        c = SPARCSTATION_1PLUS
        bound = (c.thread_create_user + c.syscall_entry
                 + c.lwp_create_service + c.syscall_exit)
        ratio = bound / c.thread_create_user
        assert 40 <= ratio <= 43


class TestModelMechanics:
    def test_frozen(self):
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            SPARCSTATION_1PLUS.setjmp = 1

    def test_replace_derives_variant(self):
        faster = dataclasses.replace(SPARCSTATION_1PLUS,
                                     lwp_create_service=usec(100))
        assert faster.lwp_create_service == usec(100)
        assert faster.setjmp == SPARCSTATION_1PLUS.setjmp

    def test_scaled_multiplies_everything(self):
        half = SPARCSTATION_1PLUS.scaled(0.5)
        assert half.setjmp == SPARCSTATION_1PLUS.setjmp // 2
        assert half.timeslice == SPARCSTATION_1PLUS.timeslice // 2

    def test_default_model_is_sparcstation(self):
        assert default_cost_model() is SPARCSTATION_1PLUS

    def test_all_costs_nonnegative(self):
        for f in dataclasses.fields(CostModel):
            assert getattr(SPARCSTATION_1PLUS, f.name) >= 0, f.name

    def test_kernel_ops_cost_more_than_user_ops(self):
        """The paper's core premise: kernel-supported parallelism is
        relatively expensive compared to user threads."""
        c = SPARCSTATION_1PLUS
        assert c.lwp_create_service > 10 * c.thread_create_user
        assert (c.syscall_entry + c.lwp_park_service + c.syscall_exit
                > c.thread_switch_user)
