"""Tests for the event queue: ordering, cancellation, FIFO ties."""

from repro.sim.events import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(30, lambda: fired.append("c"))
        q.push(10, lambda: fired.append("a"))
        q.push(20, lambda: fired.append("b"))
        while True:
            ev = q.pop()
            if ev is None:
                break
            ev.fn()
        assert fired == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        q = EventQueue()
        order = []
        for i in range(10):
            q.push(100, lambda i=i: order.append(i))
        while (ev := q.pop()) is not None:
            ev.fn()
        assert order == list(range(10))

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(5, lambda: None)
        assert q.peek_time() == 5
        assert q.peek_time() == 5
        assert q.pop() is not None
        assert q.pop() is None


class TestCancellation:
    def test_cancelled_event_never_pops(self):
        q = EventQueue()
        ev = q.push(1, lambda: None)
        ev.cancel()
        assert q.pop() is None

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.push(1, lambda: None)
        ev.cancel()
        ev.cancel()
        assert q.pop() is None

    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        first = q.push(1, lambda: None)
        q.push(2, lambda: None)
        first.cancel()
        assert q.peek_time() == 2

    def test_cancel_middle_preserves_others(self):
        q = EventQueue()
        keep1 = q.push(1, lambda: None)
        victim = q.push(2, lambda: None)
        keep2 = q.push(3, lambda: None)
        victim.cancel()
        assert q.pop() is keep1
        assert q.pop() is keep2
        assert q.pop() is None


class TestPopNext:
    """The fused pop used by the engine run loop."""

    def test_pops_in_order(self):
        q = EventQueue()
        a = q.push(10, lambda: None)
        b = q.push(20, lambda: None)
        assert q.pop_next() == (10, a)
        assert q.pop_next() == (20, b)
        assert q.pop_next() == (None, None)

    def test_empty_queue(self):
        assert EventQueue().pop_next() == (None, None)
        assert EventQueue().pop_next(until_ns=100) == (None, None)

    def test_skips_cancelled_head(self):
        q = EventQueue()
        first = q.push(1, lambda: None)
        second = q.push(2, lambda: None)
        first.cancel()
        assert q.pop_next() == (2, second)
        assert q.pop_next() == (None, None)

    def test_all_cancelled_drains_to_empty(self):
        q = EventQueue()
        for t in (1, 2, 3):
            q.push(t, lambda: None).cancel()
        assert q.pop_next() == (None, None)
        assert len(q._heap) == 0  # cancelled entries were purged

    def test_until_boundary_is_inclusive(self):
        q = EventQueue()
        ev = q.push(100, lambda: None)
        assert q.pop_next(until_ns=100) == (100, ev)

    def test_beyond_until_reports_time_without_popping(self):
        q = EventQueue()
        ev = q.push(100, lambda: None)
        assert q.pop_next(until_ns=99) == (100, None)
        # The event is still in the queue and pops later.
        assert q.pop_next() == (100, ev)

    def test_beyond_until_skips_cancelled_first(self):
        # A cancelled event *before* the horizon must not mask a live
        # event beyond it.
        q = EventQueue()
        early = q.push(50, lambda: None)
        q.push(200, lambda: None)
        early.cancel()
        assert q.pop_next(until_ns=100) == (200, None)

    def test_live_count_tracks_pop_next(self):
        q = EventQueue()
        q.push(1, lambda: None)
        q.push(2, lambda: None)
        q.pop_next()
        assert len(q) == 1
        q.pop_next()
        assert len(q) == 0


class TestLen:
    def test_len_counts_live(self):
        q = EventQueue()
        q.push(1, lambda: None)
        q.push(2, lambda: None)
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        ev = q.push(1, lambda: None)
        assert q
        ev.cancel()
        assert not q
