"""Tests for the structured tracer and its sinks."""

import io
import json

from repro.sim.trace import (DigestSink, JsonlSink, ListSink, NullSink,
                             RingBufferSink, TraceRecord, Tracer,
                             trace_digest)


class TestEmission:
    def test_disabled_by_default(self):
        t = Tracer()
        t.emit(0, "sched", "dispatch", "lwp-1")
        assert len(t) == 0

    def test_enabled_collects(self):
        t = Tracer(enabled=True)
        t.emit(10, "sched", "dispatch", "lwp-1", cpu="cpu-0")
        assert len(t) == 1
        rec = t.records[0]
        assert rec.time_ns == 10
        assert rec.detail["cpu"] == "cpu-0"

    def test_category_filter(self):
        t = Tracer(enabled=True, categories=["syscall"])
        t.emit(0, "sched", "dispatch", "x")
        t.emit(0, "syscall", "enter", "x")
        assert len(t) == 1
        assert t.records[0].category == "syscall"

    def test_sink_callback(self):
        seen = []
        t = Tracer(enabled=True, sink=seen.append)
        t.emit(0, "a", "b", "c")
        assert len(seen) == 1


def _emit_sample(t: Tracer) -> None:
    t.emit(0, "sched", "dispatch", "lwp-1", cpu="cpu-0")
    t.emit(5, "sync", "acquire", "thread-2", mode="mutex")
    t.emit(9, "syscall", "enter", "lwp-1")


class TestSinks:
    def test_ring_buffer_keeps_last_n(self):
        sink = RingBufferSink(capacity=3)
        t = Tracer(enabled=True, sink=sink, store=False)
        for i in range(5):
            t.emit(i, "sched", "tick", "x")
        assert [r.time_ns for r in sink.records] == [2, 3, 4]
        assert sink.dropped == 2

    def test_jsonl_streams_records(self):
        buf = io.StringIO()
        t = Tracer(enabled=True, sink=JsonlSink(buf), store=False)
        _emit_sample(t)
        lines = [json.loads(line) for line in
                 buf.getvalue().splitlines()]
        assert len(lines) == 3
        assert lines[0]["event"] == "dispatch"
        assert lines[0]["detail"] == {"cpu": "cpu-0"}

    def test_digest_sink_matches_trace_digest(self):
        # The incremental digest must equal the after-the-fact digest
        # over a stored record list for the same emissions.
        stored = Tracer(enabled=True)
        _emit_sample(stored)
        sink = DigestSink()
        incremental = Tracer(enabled=True, sink=sink, store=False)
        _emit_sample(incremental)
        assert sink.hexdigest() == trace_digest(stored)
        assert trace_digest(sink) == trace_digest(stored.records)
        assert sink.count == 3

    def test_digest_only_fast_path_is_byte_identical(self):
        # With a lone DigestSink, emit() skips TraceRecord construction
        # entirely; adding a second sink must restore record delivery
        # without perturbing the digest stream.
        lone = Tracer(enabled=True, sink=DigestSink(), store=False)
        assert lone._digest_only is not None  # fast path armed
        both_sink = DigestSink()
        both = Tracer(enabled=True, sink=both_sink, store=False)
        extra = ListSink()
        both.add_sink(extra)
        assert both._digest_only is None  # fast path disarmed
        _emit_sample(lone)
        _emit_sample(both)
        assert lone._sinks[0].hexdigest() == both_sink.hexdigest()
        assert len(extra.records) == 3

    def test_store_false_keeps_no_records(self):
        t = Tracer(enabled=True, store=False)
        _emit_sample(t)
        assert t.records == [] and len(t) == 0

    def test_null_sink_discards(self):
        t = Tracer(enabled=True, sink=NullSink(), store=False)
        _emit_sample(t)
        assert len(t) == 0

    def test_remove_sink(self):
        sink = ListSink()
        t = Tracer(enabled=True, sink=sink)
        t.emit(0, "a", "b", "c")
        t.remove_sink(sink)
        t.emit(1, "a", "b", "c")
        assert len(sink.records) == 1
        assert len(t) == 2  # default store still collects

    def test_category_gate_flags_track_state(self):
        t = Tracer(enabled=True, categories=["sched"])
        assert t.want_sched and not t.want_syscall
        t.categories = None
        assert t.want_syscall
        t.enabled = False
        assert not t.want_sched


class TestQueries:
    def _tracer(self):
        t = Tracer(enabled=True)
        t.emit(0, "sched", "dispatch", "lwp-1")
        t.emit(5, "sched", "block", "lwp-1")
        t.emit(9, "syscall", "enter", "lwp-2")
        return t

    def test_find_by_category(self):
        assert len(self._tracer().find(category="sched")) == 2

    def test_find_by_event_and_subject(self):
        t = self._tracer()
        assert len(t.find(event="block", subject="lwp-1")) == 1
        assert t.count(event="block") == 1

    def test_between(self):
        t = self._tracer()
        assert [r.event for r in t.between(1, 9)] == ["block"]

    def test_clear(self):
        t = self._tracer()
        t.clear()
        assert len(t) == 0

    def test_str_rendering(self):
        rec = TraceRecord(1_500, "sched", "dispatch", "lwp-1",
                          {"cpu": "cpu-0"})
        text = str(rec)
        assert "sched/dispatch" in text and "cpu=cpu-0" in text
