"""Tests for the structured tracer."""

from repro.sim.trace import TraceRecord, Tracer


class TestEmission:
    def test_disabled_by_default(self):
        t = Tracer()
        t.emit(0, "sched", "dispatch", "lwp-1")
        assert len(t) == 0

    def test_enabled_collects(self):
        t = Tracer(enabled=True)
        t.emit(10, "sched", "dispatch", "lwp-1", cpu="cpu-0")
        assert len(t) == 1
        rec = t.records[0]
        assert rec.time_ns == 10
        assert rec.detail["cpu"] == "cpu-0"

    def test_category_filter(self):
        t = Tracer(enabled=True, categories=["syscall"])
        t.emit(0, "sched", "dispatch", "x")
        t.emit(0, "syscall", "enter", "x")
        assert len(t) == 1
        assert t.records[0].category == "syscall"

    def test_sink_callback(self):
        seen = []
        t = Tracer(enabled=True, sink=seen.append)
        t.emit(0, "a", "b", "c")
        assert len(seen) == 1


class TestQueries:
    def _tracer(self):
        t = Tracer(enabled=True)
        t.emit(0, "sched", "dispatch", "lwp-1")
        t.emit(5, "sched", "block", "lwp-1")
        t.emit(9, "syscall", "enter", "lwp-2")
        return t

    def test_find_by_category(self):
        assert len(self._tracer().find(category="sched")) == 2

    def test_find_by_event_and_subject(self):
        t = self._tracer()
        assert len(t.find(event="block", subject="lwp-1")) == 1
        assert t.count(event="block") == 1

    def test_between(self):
        t = self._tracer()
        assert [r.event for r in t.between(1, 9)] == ["block"]

    def test_clear(self):
        t = self._tracer()
        t.clear()
        assert len(t) == 0

    def test_str_rendering(self):
        rec = TraceRecord(1_500, "sched", "dispatch", "lwp-1",
                          {"cpu": "cpu-0"})
        text = str(rec)
        assert "sched/dispatch" in text and "cpu=cpu-0" in text
