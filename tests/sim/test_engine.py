"""Tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_call_after_advances_clock(self):
        eng = Engine()
        seen = []
        eng.call_after(1_000, lambda: seen.append(eng.now_ns))
        eng.run()
        assert seen == [1_000]

    def test_call_at_absolute(self):
        eng = Engine()
        seen = []
        eng.call_at(500, lambda: seen.append(True))
        eng.run()
        assert seen and eng.now_ns == 500

    def test_cannot_schedule_in_past(self):
        eng = Engine()
        eng.call_after(100, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at(50, lambda: None)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.call_after(-1, lambda: None)

    def test_events_fired_counter(self):
        eng = Engine()
        for i in range(5):
            eng.call_after(i, lambda: None)
        assert eng.run() == 5
        assert eng.events_fired == 5

    def test_cascading_events(self):
        eng = Engine()
        seen = []

        def first():
            seen.append("first")
            eng.call_after(10, lambda: seen.append("second"))

        eng.call_after(5, first)
        eng.run()
        assert seen == ["first", "second"]
        assert eng.now_ns == 15


class TestRunLimits:
    def test_until_stops_before_later_events(self):
        eng = Engine()
        seen = []
        eng.call_after(10, lambda: seen.append("early"))
        eng.call_after(1_000, lambda: seen.append("late"))
        eng.run(until_ns=100)
        assert seen == ["early"]
        assert eng.now_ns == 100
        eng.run()
        assert seen == ["early", "late"]

    def test_run_for_relative_window(self):
        eng = Engine()
        seen = []
        eng.call_after(50, lambda: seen.append(1))
        eng.run_for(60)
        assert seen == [1]

    def test_max_events_guard(self):
        eng = Engine()

        def rearm():
            eng.call_after(1, rearm)

        eng.call_after(1, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            eng.run(max_events=100)

    def test_engine_not_reentrant(self):
        eng = Engine()

        def nested():
            with pytest.raises(SimulationError):
                eng.run()

        eng.call_after(1, nested)
        eng.run()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        seen = []
        ev = eng.call_after(10, lambda: seen.append(1))
        eng.cancel(ev)
        eng.run()
        assert seen == []

    def test_double_cancel_safe(self):
        eng = Engine()
        ev = eng.call_after(10, lambda: None)
        eng.cancel(ev)
        eng.cancel(ev)
        eng.run()

    def test_cancel_from_within_running_event(self):
        eng = Engine()
        seen = []
        victim = eng.call_after(20, lambda: seen.append("victim"))
        eng.call_after(10, lambda: eng.cancel(victim))
        assert eng.run() == 1
        assert seen == []

    def test_cancel_all_pending_drains_clean(self):
        # A queue holding only cancelled events must fire nothing and
        # must not advance the clock: it drains exactly like an empty
        # queue (until_ns moves the clock only when a live event lies
        # beyond it).
        eng = Engine()
        for t in (10, 20):
            eng.cancel(eng.call_after(t, lambda: None))
        eng.idle_check = lambda: None
        assert eng.run(until_ns=50) == 0
        assert eng.now_ns == 0

    def test_until_exact_event_time_fires(self):
        eng = Engine()
        seen = []
        eng.call_after(100, lambda: seen.append(1))
        eng.run(until_ns=100)
        assert seen == [1]

    def test_zero_delay_event_fires_now(self):
        eng = Engine()
        eng.call_after(5, lambda: None)
        eng.run()
        seen = []
        eng.call_after(0, lambda: seen.append(eng.now_ns))
        eng.run()
        assert seen == [5]


class TestDeadlockProbe:
    def test_idle_check_raises_on_complaint(self):
        eng = Engine()
        eng.idle_check = lambda: "stuck entities"
        with pytest.raises(DeadlockError, match="stuck"):
            eng.run()

    def test_idle_check_quiet_when_none(self):
        eng = Engine()
        eng.idle_check = lambda: None
        eng.run()  # no raise

    def test_check_deadlock_false_skips_probe(self):
        eng = Engine()
        eng.idle_check = lambda: "stuck"
        eng.run(check_deadlock=False)  # no raise


class TestDeterminism:
    def test_same_seed_same_order(self):
        def trace_run():
            eng = Engine(seed=7)
            seen = []
            for i in range(20):
                eng.call_after(eng.rng.randint("t", 0, 5),
                               lambda i=i: seen.append(i))
            eng.run()
            return seen

        assert trace_run() == trace_run()

    def test_rng_streams_independent(self):
        eng = Engine(seed=1)
        a1 = [eng.rng.stream("a").random() for _ in range(3)]
        eng2 = Engine(seed=1)
        # Drawing from "b" first must not perturb "a".
        eng2.rng.stream("b").random()
        a2 = [eng2.rng.stream("a").random() for _ in range(3)]
        assert a1 == a2
