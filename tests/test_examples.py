"""Smoke tests for every example script: they must run to completion and
print their headline results."""

import importlib
import io
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = "examples"
sys.path.insert(0, EXAMPLES_DIR)


def run_example(module_name: str) -> str:
    module = importlib.import_module(module_name)
    buf = io.StringIO()
    with redirect_stdout(buf):
        module.main()
    return buf.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart")
        assert "processed" in out
        assert "exit status: 0" in out

    def test_window_system(self):
        out = run_example("window_system")
        assert "kernel memory ratio" in out
        assert "M:N" in out

    def test_database_locking(self):
        out = run_example("database_locking")
        assert "PASS" in out

    def test_network_server(self):
        out = run_example("network_server")
        assert "requests served" in out

    def test_reproduce_figures(self):
        out = run_example("reproduce_figures")
        assert "PASS" in out
        assert "Figure 5" in out and "Figure 6" in out

    def test_posix_pthreads(self):
        out = run_example("posix_pthreads")
        assert "one-time init ran: ['initialized']" in out

    def test_dining_philosophers(self):
        out = run_example("dining_philosophers")
        assert "deadlocked" in out
        assert "completed" in out

    def test_microtasking(self):
        out = run_example("microtasking")
        assert "sum=2016" in out

    def test_debugger_view(self):
        out = run_example("debugger_view")
        assert "kernel view" in out
        assert "threads visible to the debugger" in out

    def test_trace_timeline(self):
        out = run_example("trace_timeline")
        assert "Gantt" in out
        assert "syscall latencies" in out

    def test_fault_injection(self):
        out = run_example("fault_injection")
        assert "events processed  : 64" in out
        assert "replay identical  : True" in out
        assert "deadlock cycle detected:" in out

    def test_million_clients(self):
        # The bare script runs the full 10^4-client demo; the smoke
        # test keeps the same assertions at a fraction of the trace.
        module = importlib.import_module("million_clients")
        buf = io.StringIO()
        with redirect_stdout(buf):
            module.main(clients=1500)
        out = buf.getvalue()
        assert "architecture bakeoff: 1500 open-loop clients" in out
        assert "poisson (steady" in out and "burst (same mean rate" in out
        assert "thread-per-conn" in out and "event-loop" in out

    def test_metrics_dashboard(self, tmp_path):
        module = importlib.import_module("metrics_dashboard")
        trace_path = tmp_path / "trace.json"
        buf = io.StringIO()
        with redirect_stdout(buf):
            module.main(trace_path=str(trace_path))
        out = buf.getvalue()
        assert "events processed: 200" in out
        assert "-- sync objects" in out
        assert "Chrome trace events" in out
        assert trace_path.exists()
