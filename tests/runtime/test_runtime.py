"""Tests for the user-level runtime: libc helpers, mapped regions,
errno plumbing, setjmp/longjmp rules."""

import pytest

from repro.errors import Errno, SyscallError, ThreadError
from repro.runtime import libc, mapped, unistd
from repro import threads
from repro.sim.clock import usec
from tests.conftest import run_program


class TestLibc:
    def test_compute_burns_time(self):
        def main():
            t0 = yield from unistd.gettimeofday()
            yield from libc.compute(123)
            t1 = yield from unistd.gettimeofday()
            assert t1 - t0 >= usec(123)

        run_program(main)

    def test_setjmp_longjmp_within_thread(self):
        def main():
            buf = yield from libc.setjmp()
            yield from libc.longjmp(buf)

        sim, proc = run_program(main)
        assert proc.exit_status == 0

    def test_longjmp_into_another_thread_rejected(self):
        """"it is an error for a thread to longjmp() into another
        thread"."""
        bufbox = {}

        def saver(_):
            bufbox["buf"] = yield from libc.setjmp()

        def main():
            tid = yield from threads.thread_create(
                saver, None, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(tid)
            with pytest.raises(ThreadError):
                yield from libc.longjmp(bufbox["buf"])

        run_program(main)

    def test_errno_get_set(self):
        got = []

        def main():
            yield from libc.set_errno(42)
            got.append((yield from libc.errno()))

        run_program(main)
        assert got == [42]

    def test_errno_is_thread_local(self):
        got = {}

        def worker(tag):
            yield from libc.set_errno(tag)
            yield from threads.thread_yield()
            got[tag] = yield from libc.errno()

        def main():
            a = yield from threads.thread_create(
                worker, 7, flags=threads.THREAD_WAIT)
            b = yield from threads.thread_create(
                worker, 9, flags=threads.THREAD_WAIT)
            yield from threads.thread_wait(a)
            yield from threads.thread_wait(b)

        run_program(main)
        assert got == {7: 7, 9: 9}


class TestMappedRegions:
    def test_map_shared_file_sizes_the_file(self):
        got = []

        def main():
            yield from mapped.map_shared_file("/tmp/region", 8192)
            st = yield from unistd.stat("/tmp/region")
            got.append(st["size"])

        run_program(main)
        assert got[0] >= 8192

    def test_cells_at_offsets(self):
        def main():
            region = yield from mapped.map_shared_file("/tmp/r", 4096)
            c = region.cell(64)
            c.store("hello")
            assert region.cell(64).load() == "hello"

        run_program(main)

    def test_cell_out_of_range(self):
        def main():
            region = yield from mapped.map_shared_file("/tmp/r", 4096)
            with pytest.raises(ValueError):
                region.cell(9999)

        run_program(main)

    def test_read_write_bytes(self):
        got = []

        def main():
            region = yield from mapped.map_shared_file("/tmp/r", 4096)
            yield from region.write(100, b"mapped data")
            got.append((yield from region.read(100, 11)))

        run_program(main)
        assert got == [b"mapped data"]

    def test_anon_shared_region(self):
        def main():
            region = yield from mapped.map_anon_shared(4096)
            region.cell(0).store(5)
            assert region.cell(0).load() == 5
            yield from region.unmap()

        sim, proc = run_program(main)
        assert proc.exit_status == 0

    def test_file_region_page_fault_costs_time(self):
        """First touch of a file-backed page takes a (modeled) major
        fault."""
        got = {}

        def main():
            region = yield from mapped.map_shared_file("/tmp/r", 8192)
            t0 = yield from unistd.gettimeofday()
            yield from region.read(0, 1)   # page fault
            t1 = yield from unistd.gettimeofday()
            yield from region.read(1, 1)   # now resident
            t2 = yield from unistd.gettimeofday()
            got["first"] = t1 - t0
            got["second"] = t2 - t1

        run_program(main)
        assert got["first"] > got["second"]
        assert got["first"] >= usec(450)


class TestSyscallWrapper:
    def test_wrapper_propagates_and_sets_errno(self):
        got = []

        def main():
            try:
                yield from unistd.open("/nope", 0)
            except SyscallError as err:
                got.append(err.errno)
            got.append((yield from libc.errno()))

        run_program(main)
        assert got == [Errno.ENOENT, int(Errno.ENOENT)]

    def test_creat_shorthand(self):
        def main():
            fd = yield from unistd.creat("/tmp/new")
            yield from unistd.write(fd, b"x")
            st = yield from unistd.stat("/tmp/new")
            assert st["size"] == 1

        run_program(main)
